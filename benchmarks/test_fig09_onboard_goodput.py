"""Figure 9: on-board goodput vs request size (no network bottleneck).

Paper result: driving the FPGA directly with an on-board traffic
generator, both read and write exceed 110 Gbps at large request sizes;
read throughput trails write at small sizes because of the board's
non-pipelined DMA IP.
"""

from bench_common import KB, MB, make_cluster, run_app

from repro.analysis.report import render_series
from repro.analysis.stats import rate_gbps
from repro.core.addr import AccessType

SIZES = [64, 256, 1 * KB, 4 * KB, 16 * KB]
INFLIGHT = 32
OPS = 400


def onboard_goodput(size: int, write: bool) -> float:
    cluster = make_cluster(mn_capacity=2 << 30)
    board = cluster.mn
    env = cluster.env
    holder = {}

    def setup():
        response = yield from board.slow_path.handle_alloc(pid=1,
                                                           size=64 * MB)
        assert response.ok
        va = response.va
        page = board.page_spec.page_size
        for offset in range(0, 64 * MB, page):
            yield from board.execute_local(1, AccessType.WRITE, va + offset,
                                           64, b"\0" * 64)
        holder["va"] = va

    run_app(cluster, setup())
    va = holder["va"]
    payload = b"t" * size
    started = env.now

    def producer(lane: int):
        # Each lane issues back-to-back requests; lanes overlap, so the
        # pipeline's one-flit-per-cycle intake is the limiter.
        for index in range(OPS // INFLIGHT):
            offset = ((lane * (OPS // INFLIGHT) + index) * size) % (32 * MB)
            if write:
                yield from board.execute_local(
                    1, AccessType.WRITE, va + offset, size, payload)
            else:
                yield from board.execute_local(
                    1, AccessType.READ, va + offset, size)

    procs = [env.process(producer(lane)) for lane in range(INFLIGHT)]
    cluster.run(until=env.all_of(procs))
    total = (OPS // INFLIGHT) * INFLIGHT * size
    return rate_gbps(total, env.now - started)


def run_experiment():
    return {
        "read": [onboard_goodput(size, write=False) for size in SIZES],
        "write": [onboard_goodput(size, write=True) for size in SIZES],
    }


def test_fig09_onboard_goodput(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "Figure 9: on-board goodput vs request size (Gbps)",
        "size_B", SIZES,
        {name: [round(v, 1) for v in series]
         for name, series in results.items()}))

    reads, writes = results["read"], results["write"]

    # Both directions exceed 100 Gbps at large request sizes.
    assert writes[-1] > 100.0
    assert reads[-1] > 100.0

    # Read trails write at small sizes (non-pipelined DMA IP).
    assert reads[0] < writes[0]
    assert reads[1] < writes[1]

    # Goodput grows with request size.
    assert writes == sorted(writes)
    assert reads == sorted(reads)

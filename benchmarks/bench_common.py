"""Shared experiment runners for the figure-regeneration benchmarks.

Each ``test_figNN_*`` file reproduces one figure/table of the paper's
evaluation: it runs the simulated experiment, prints the same rows or
series the paper reports, and asserts the qualitative *shape* (who wins,
by roughly what factor, where the knees fall).  Absolute numbers differ
from the paper's FPGA testbed; EXPERIMENTS.md records both side by side.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster import ClioCluster
from repro.core.addr import AccessType
from repro.core.pipeline import Status
from repro.net.packet import PacketType
from repro.params import BackendParams, ClioParams

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30
US = 1000


def backend_params(params: ClioParams | None = None,
                   **backend_kwargs) -> ClioParams:
    """Params with the per-backend setup knobs routed through
    :class:`repro.params.BackendParams` (the non-deprecated path)."""
    base = params or ClioParams.prototype()
    return replace(base, backend=BackendParams(**backend_kwargs))


def run_app(cluster: ClioCluster, generator):
    """Run one application process to completion."""
    return cluster.run(until=cluster.env.process(generator))


def make_cluster(num_cns: int = 1, mn_capacity: int = 1 * GB,
                 page_size=None, params=None, seed: int = 0) -> ClioCluster:
    return ClioCluster(params=params or ClioParams.prototype(), seed=seed,
                       num_cns=num_cns, mn_capacity=mn_capacity,
                       page_size=page_size)


def clio_primed_thread(cluster: ClioCluster, region_bytes: int = 4 * MB,
                       cn_index: int = 0):
    """A thread with an allocated, first-touched region; returns (thread, va)."""
    thread = cluster.cn(cn_index).process("mn0").thread()
    holder = {}

    def prime():
        va = yield from thread.ralloc(region_bytes)
        # Touch every page so later accesses are fault-free.
        page = cluster.mn.page_spec.page_size
        for offset in range(0, region_bytes, page):
            yield from thread.rwrite(va + offset, b"\0" * 64)
        holder["va"] = va

    run_app(cluster, prime())
    return thread, holder["va"]


def clio_measure_ops(cluster: ClioCluster, thread, va: int, size: int,
                     count: int, write: bool = False,
                     offsets=None) -> list[int]:
    """Latencies (ns) of ``count`` sequential sync ops at va (+offsets)."""
    latencies: list[int] = []
    payload = b"x" * size

    def workload():
        for index in range(count):
            offset = offsets[index % len(offsets)] if offsets else 0
            start = cluster.env.now
            if write:
                yield from thread.rwrite(va + offset, payload)
            else:
                yield from thread.rread(va + offset, size)
            latencies.append(cluster.env.now - start)

    run_app(cluster, workload())
    return latencies


# Summary statistics: one shared, interpolated implementation for every
# figure benchmark (re-exported so `from bench_common import median` keeps
# working).
from repro.analysis.stats import mean, median, p99  # noqa: E402,F401

"""Figure 4: latency vs number of client processes.

Paper result: Clio is connectionless, so latency stays flat as processes
grow; RDMA's per-connection QP state thrashes the RNIC cache, degrading
latency as QPs exceed the on-chip capacity (and the problem persists
across RNIC generations).
"""

from bench_common import MB, backend_params, make_cluster, mean, run_app

from repro.analysis.report import render_series
from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment

PROCESS_COUNTS = [1, 4, 16, 64, 256, 1024]
TOTAL_OPS = 1500
READ_SIZE = 16


def clio_latency_at(num_processes: int) -> float:
    """Mean 16B read latency (us) with N processes sharing one CBoard."""
    cluster = make_cluster(num_cns=4, mn_capacity=8 << 30)
    threads = []
    node_count = len(cluster.cns)

    def setup(thread, holder):
        va = yield from thread.ralloc(4 * MB)
        yield from thread.rwrite(va, b"\0" * 64)
        holder.append((thread, va))

    ready = []

    def setup_all():
        # Processes register and first-touch their memory one after
        # another (the measurement phase, not setup, is the experiment).
        for index in range(num_processes):
            thread = cluster.cn(index % node_count).process("mn0").thread()
            yield from setup(thread, ready)

    run_app(cluster, setup_all())

    latencies = []
    ops_per_proc = max(1, TOTAL_OPS // num_processes)

    def measure(thread, va):
        for _ in range(ops_per_proc):
            start = cluster.env.now
            yield from thread.rread(va, READ_SIZE)
            latencies.append(cluster.env.now - start)

    # Round-robin, one process active at a time: pure per-process latency,
    # not a bandwidth test.
    def driver():
        for thread, va in ready:
            yield from measure(thread, va)

    run_app(cluster, driver())
    return mean(latencies) / 1000


def rdma_latency_at(num_processes: int) -> float:
    """Mean 16B RDMA read latency (us): one QP per process."""
    env = Environment()
    node = RDMAMemoryNode(env, backend_params(dram_capacity=1 << 30))
    holder = {}

    def setup():
        holder["region"] = yield from node.register_mr(4 * MB, pinned=True)

    env.run(until=env.process(setup()))
    qps = [node.create_qp() for _ in range(num_processes)]
    latencies = []
    rounds = max(1, TOTAL_OPS // num_processes)

    def driver():
        for _ in range(rounds):
            for qp in qps:
                _, latency = yield from node.read(qp, holder["region"], 0,
                                                  READ_SIZE)
                latencies.append(latency)

    env.run(until=env.process(driver()))
    return mean(latencies) / 1000


def run_experiment():
    clio = [clio_latency_at(count) for count in PROCESS_COUNTS]
    rdma = [rdma_latency_at(count) for count in PROCESS_COUNTS]
    return {"clio_us": clio, "rdma_us": rdma}


def test_fig04_process_scalability(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    clio, rdma = results["clio_us"], results["rdma_us"]
    print()
    print(render_series("Figure 4: latency vs #client processes (16B read)",
                        "processes", PROCESS_COUNTS,
                        {"Clio (us)": clio, "RDMA (us)": rdma}))

    # Clio scales perfectly: latency flat within 20% across 1 -> 1024.
    assert max(clio) <= min(clio) * 1.2

    # RDMA flat while QPs fit the cache, then degrades past 256 QPs.
    idx256 = PROCESS_COUNTS.index(256)
    assert rdma[-1] > rdma[0] * 1.3
    assert rdma[idx256 - 1] <= rdma[0] * 1.15

    # At scale, Clio is faster than RDMA.
    assert clio[-1] < rdma[-1]

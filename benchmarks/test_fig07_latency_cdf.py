"""Figure 7: request latency CDF of continuous 16B reads/writes.

Paper result: Clio's deterministic pipeline yields 2.5 us median and
3.2 us 99th-percentile end-to-end latency — a nearly vertical CDF — while
RDMA shows a long tail reaching into the tens of microseconds and beyond
(up to milliseconds when the host stack hiccups).
"""

from bench_common import (
    MB,
    backend_params,
    clio_primed_thread,
    make_cluster,
    median,
    p99,
    run_app,
)

from repro.analysis.report import render_table
from repro.analysis.stats import percentile
from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment

OPS = 8000
SIZE = 16


def clio_samples(write: bool) -> list[int]:
    cluster = make_cluster(mn_capacity=1 << 30)
    thread, va = clio_primed_thread(cluster, region_bytes=4 * MB)
    latencies: list[int] = []
    payload = b"w" * SIZE

    def workload():
        for _ in range(OPS):
            start = cluster.env.now
            if write:
                yield from thread.rwrite(va, payload)
            else:
                yield from thread.rread(va, SIZE)
            latencies.append(cluster.env.now - start)

    run_app(cluster, workload())
    return latencies


def rdma_samples(write: bool) -> list[int]:
    env = Environment()
    node = RDMAMemoryNode(env, backend_params(dram_capacity=1 << 30))
    latencies: list[int] = []

    def workload():
        region = yield from node.register_mr(4 * MB, pinned=True)
        qp = node.create_qp()
        payload = b"w" * SIZE
        for _ in range(OPS):
            if write:
                latency = yield from node.write(qp, region, 0, payload)
            else:
                _, latency = yield from node.read(qp, region, 0, SIZE)
            latencies.append(latency)

    env.run(until=env.process(workload()))
    return latencies


def run_experiment():
    return {
        "clio_read": clio_samples(write=False),
        "clio_write": clio_samples(write=True),
        "rdma_read": rdma_samples(write=False),
        "rdma_write": rdma_samples(write=True),
    }


def test_fig07_latency_cdf(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, samples in results.items():
        rows.append([
            name,
            median(samples) / 1000,
            percentile(samples, 0.99) / 1000,
            percentile(samples, 0.999) / 1000,
            max(samples) / 1000,
        ])
    print()
    print(render_table("Figure 7: 16B latency distribution (us)",
                       ["series", "median", "p99", "p99.9", "max"], rows))

    clio_read = results["clio_read"]
    rdma_read = results["rdma_read"]

    # Clio: ~2.5us median, ~3.2us p99 — a tight distribution.
    med = median(clio_read) / 1000
    tail = p99(clio_read) / 1000
    assert 2.0 <= med <= 3.0
    assert tail <= 4.0
    assert tail / med < 1.6          # paper: 3.2/2.5 = 1.28

    # RDMA: similar median, far longer tail (orders of magnitude at p99.9).
    assert p99(rdma_read) / median(rdma_read) > 2.0
    assert percentile(rdma_read, 0.999) / median(rdma_read) > 10
    assert max(rdma_read) > max(clio_read) * 5

    # Writes show the same separation.
    assert p99(results["clio_write"]) / median(results["clio_write"]) < 1.6
    assert (p99(results["rdma_write"]) / median(results["rdma_write"])
            > p99(results["clio_write"]) / median(results["clio_write"]))

"""Figure 16: radix-tree search latency vs tree size.

Paper result: RDMA is worse than Clio because it needs multiple network
round trips to traverse the tree (one per node visited), while Clio does
each level's pointer chase at the MN (one RTT per level); RDMA also
scales worse as the tree grows.
"""

from bench_common import GB, backend_params, make_cluster, mean, run_app

from repro.analysis.report import render_series
from repro.apps.radix_tree import (
    ClioRadixTree,
    RDMARadixTree,
    register_chase_offload,
)
from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment

TREE_SIZES = [128, 512, 2048]
PROBES = 24


def tree_keys(count: int) -> list[bytes]:
    # Keys share structure so sibling lists grow with the tree (the case
    # where MN-side chasing matters most).
    return [b"%03x-key" % index for index in range(count)]


def clio_search_us(count: int) -> float:
    cluster = make_cluster(mn_capacity=1 * GB)
    register_chase_offload(cluster.mn.extend_path)
    thread = cluster.cn(0).process("mn0").thread()
    tree = ClioRadixTree(thread)
    keys = tree_keys(count)
    probes = keys[:: max(1, count // PROBES)][:PROBES]
    latencies = []

    def app():
        yield from tree.setup(capacity_nodes=1 << 16)
        for index, key in enumerate(keys):
            yield from tree.insert(key, index + 1)
        for probe in probes:
            start = cluster.env.now
            value = yield from tree.search(probe)
            assert value is not None
            latencies.append(cluster.env.now - start)

    run_app(cluster, app())
    return mean(latencies) / 1000


def rdma_search_us(count: int) -> float:
    env = Environment()
    node = RDMAMemoryNode(env, backend_params(dram_capacity=1 * GB))
    tree = RDMARadixTree(env, node, capacity_nodes=1 << 16)
    keys = tree_keys(count)
    probes = keys[:: max(1, count // PROBES)][:PROBES]
    latencies = []

    def app():
        yield from tree.setup()
        for index, key in enumerate(keys):
            yield from tree.insert(key, index + 1)
        for probe in probes:
            start = env.now
            value = yield from tree.search(probe)
            assert value is not None
            latencies.append(env.now - start)

    env.run(until=env.process(app()))
    return mean(latencies) / 1000


def run_experiment():
    return {
        "clio": [clio_search_us(count) for count in TREE_SIZES],
        "rdma": [rdma_search_us(count) for count in TREE_SIZES],
    }


def test_fig16_radix_tree(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series("Figure 16: radix tree search latency (us)",
                        "keys", TREE_SIZES,
                        {"Clio": [round(v, 1) for v in results["clio"]],
                         "RDMA": [round(v, 1) for v in results["rdma"]]}))

    clio, rdma = results["clio"], results["rdma"]

    # Clio beats RDMA at every size.
    for c, r in zip(clio, rdma):
        assert c < r

    # And the gap widens as the tree (and its sibling lists) grow.
    assert rdma[-1] / clio[-1] > rdma[0] / clio[0]
    assert rdma[-1] / clio[-1] > 2.0

"""Figure 15: image-compression runtime per client vs number of clients.

Paper result: Clio's per-client runtime stays (nearly) flat as clients
are added, because isolation costs nothing at the MN (a PID per process).
RDMA does not scale: every client must register its own MR for protected
access, and MR registration + MR-cache pressure grow with the client
count.
"""

from bench_common import GB, backend_params, make_cluster, mean, run_app

from dataclasses import replace

from repro.analysis.report import render_series
from repro.apps.image_compression import (
    ImageCompressionClient,
    RDMAImageCompressionClient,
)
from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment
from repro.sim.rng import RandomStream

CLIENTS = [1, 2, 4, 8]
OPERATIONS = 2
IMAGE_SIDE = 32


def clio_runtime_us(num_clients: int) -> float:
    cluster = make_cluster(num_cns=4, mn_capacity=2 * GB)
    rng = RandomStream(11, "fig15")
    runtimes = []
    procs = []
    for index in range(num_clients):
        thread = cluster.cn(index % 4).process("mn0").thread()
        client = ImageCompressionClient(thread, rng.fork(f"c{index}"),
                                        image_side=IMAGE_SIDE, slots=2)

        def workload(client=client):
            started = cluster.env.now
            yield from client.setup()    # allocation + upload
            yield from client.run_workload(OPERATIONS)
            runtimes.append(cluster.env.now - started)

        procs.append(cluster.env.process(workload()))
    cluster.run(until=cluster.env.all_of(procs))
    return mean(runtimes) / 1000


def rdma_runtime_us(num_clients: int) -> float:
    env = Environment()
    # A small MR cache pressured by per-client MRs (each client needs its
    # own MR for protection; with many clients the cache thrashes).
    params = ClioParams.prototype()
    params = replace(params, rdma=replace(params.rdma, mr_cache_entries=4,
                                          pte_cache_entries=64))
    node = RDMAMemoryNode(env, backend_params(params, dram_capacity=2 * GB))
    rng = RandomStream(11, "fig15-rdma")
    runtimes = []
    procs = []
    for index in range(num_clients):
        client = RDMAImageCompressionClient(env, node, rng.fork(f"c{index}"),
                                            image_side=IMAGE_SIDE, slots=2)

        def workload(client=client):
            started = env.now
            yield from client.setup()       # includes MR registration
            yield from client.run_workload(OPERATIONS)
            runtimes.append(env.now - started)

        procs.append(env.process(workload()))
    env.run(until=env.all_of(procs))
    return mean(runtimes) / 1000


def run_experiment():
    return {
        "clio": [clio_runtime_us(n) for n in CLIENTS],
        "rdma": [rdma_runtime_us(n) for n in CLIENTS],
    }


def test_fig15_image_compression(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "Figure 15: image compression runtime per client (us)",
        "clients", CLIENTS,
        {"Clio": [round(v, 1) for v in results["clio"]],
         "RDMA": [round(v, 1) for v in results["rdma"]]}))

    clio, rdma = results["clio"], results["rdma"]

    # RDMA's runtime grows faster than Clio's with the client count.
    clio_growth = clio[-1] / clio[0]
    rdma_growth = rdma[-1] / rdma[0]
    assert rdma_growth > clio_growth * 1.15

    # At 8 clients RDMA is worse in absolute terms too.
    assert rdma[-1] > clio[-1]

"""Raw engine throughput: events/sec through the DES core's hot loop.

Three microbenchmarks exercise the scheduling paths every experiment
funnels through:

* ``timeout_chain``   — one process yielding timeouts back-to-back (the
  dominant pattern in every device model);
* ``process_storm``   — many concurrent processes interleaving timeouts
  (heap pressure + tie-breaking);
* ``store_pingpong``  — producer/consumer through a :class:`Store` (the
  resource-wait path links and queues use);
* ``callback_storm``  — the lightweight ``schedule_callback`` primitive,
  when the engine provides it (pure-delay paths without a generator).
"""

from __future__ import annotations

from perf_common import measure_ops, record

from repro.sim import Environment, Store

OPS = 30_000


def test_perf_timeout_chain():
    env = Environment()

    def chain():
        for _ in range(OPS):
            yield env.timeout(10)

    env.process(chain())
    metrics = measure_ops(env, env.run, OPS)
    record("engine", "timeout_chain", metrics)
    print(f"timeout_chain: {metrics}")
    assert metrics["events_per_sec"] > 20_000


def test_perf_process_storm():
    env = Environment()
    workers = 50
    per_worker = OPS // workers

    def worker(step: int):
        for _ in range(per_worker):
            yield env.timeout(step)

    for index in range(workers):
        env.process(worker(1 + index % 7))
    metrics = measure_ops(env, env.run, OPS)
    record("engine", "process_storm", metrics)
    print(f"process_storm: {metrics}")
    assert metrics["events_per_sec"] > 20_000


def test_perf_store_pingpong():
    env = Environment()
    store = Store(env, capacity=16)
    items = OPS // 2

    def producer():
        for index in range(items):
            yield store.put(index)

    def consumer():
        for _ in range(items):
            yield store.get()

    env.process(producer())
    env.process(consumer())
    metrics = measure_ops(env, env.run, items)
    record("engine", "store_pingpong", metrics)
    print(f"store_pingpong: {metrics}")
    assert metrics["events_per_sec"] > 20_000


def test_perf_callback_storm():
    env = Environment()
    if not hasattr(env, "schedule_callback"):
        import pytest
        pytest.skip("engine has no schedule_callback primitive")
    fired = [0]

    def bump():
        fired[0] += 1
        if fired[0] < OPS:
            env.schedule_callback(10, bump)

    env.schedule_callback(10, bump)
    metrics = measure_ops(env, env.run, OPS)
    record("engine", "callback_storm", metrics)
    print(f"callback_storm: {metrics}")
    assert fired[0] == OPS
    assert metrics["events_per_sec"] > 20_000

"""Rack-tier benchmark: zipfian YCSB over the sharded tier with a
mid-traffic drain, plus a no-event baseline.

Two things are on trial:

* **engine throughput** — how many simulator events and workload ops
  per wall second the multi-switch rack configuration sustains (the
  number that decides whether 64-board runs stay tractable);
* **rebalance quality** — the post-drain p99 must recover to within
  1.5x of the pre-event p99 (the ISSUE acceptance bar): rate-limited
  batched migrations are supposed to protect the foreground tail.

Every run rides the full verification stack (shadow oracle +
linearizability), so the recorded numbers are for *checked* runs —
there is no faster unchecked mode to accidentally regress.

Results land in ``BENCH_perf.json`` under the ``rack`` section
(schema-checked by ``perf_common.validate_rack_section``).  Set
``REPRO_BENCH_TINY=1`` (the CI bench-smoke job does) to shrink the
workload.
"""

from __future__ import annotations

import json
import os
import time

from perf_common import BENCH_FILE, record, validate_rack_section

from repro.verify import run_rack_ycsb

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))

BOARDS = 8
TORS = 2
CLIENTS = 64 if TINY else 256
OPS = 3 if TINY else 4


def _run_cell(scenario, partitioned=False, seed=0) -> dict:
    start = time.perf_counter()
    result = run_rack_ycsb(seed=seed, boards=BOARDS, tors=TORS,
                           clients=CLIENTS, ops_per_client=OPS,
                           scenario=scenario, partitioned=partitioned)
    wall_s = time.perf_counter() - start
    assert result.ok, result.problems()
    extras = result.extras
    cell = {
        "scenario": scenario,
        "boards": BOARDS,
        "tors": TORS,
        "clients": CLIENTS,
        "ops": extras["ops_attempted"],
        "migrations": extras["migrations"],
        "pre_p99_us": round(extras["pre_p99_ns"] / 1000, 3),
        "post_p99_us": round(extras["post_p99_ns"] / 1000, 3),
        "wall_s": round(wall_s, 4),
        "sim_ops_per_sec": round(extras["ops_ok"] / wall_s)
        if wall_s > 0 else 0,
        "events_per_sec": round(extras["events"] / wall_s)
        if wall_s > 0 else 0,
    }
    if scenario is not None and extras["pre_p99_ns"]:
        cell["recovery_ratio"] = round(
            extras["post_p99_ns"] / extras["pre_p99_ns"], 3)
    return cell


def test_rack_drain_tail_recovers_and_records():
    baseline = _run_cell(scenario=None)
    drain = _run_cell(scenario="drain")
    assert drain["migrations"] >= 1
    assert drain["pre_p99_us"] > 0 and drain["post_p99_us"] > 0
    # The acceptance bar: rate-limited migration protects the tail.
    assert drain["recovery_ratio"] <= 1.5, drain
    record("rack", "ycsb_baseline", baseline)
    record("rack", "ycsb_drain", drain)


def test_rack_partitioned_engine_records():
    cell = _run_cell(scenario="drain", partitioned=True)
    assert cell["recovery_ratio"] <= 1.5, cell
    record("rack", "ycsb_drain_pdes", cell)


def test_rack_section_schema():
    with open(BENCH_FILE) as handle:
        data = json.load(handle)
    assert validate_rack_section(data) == []

"""CXL-vs-Clio benchmark: the trade-off the load/store backend exists
to make measurable, plus the multi-tenant isolation bars.

Three cells land in ``BENCH_perf.json`` under the ``cxl`` section
(schema-checked by ``perf_common.validate_cxl_section``):

* **subline_read** — a 64B hot read through the MemoryBackend protocol.
  CXL issues one cache-line load (decode + hop + device read, no RPC
  framing) and must beat Clio's full request/response round trip;
* **pooled_churn** — two clients hammer 1KB writes at the same shared
  buffer.  The CXL hosts ping-pong dirty lines, paying a back-
  invalidation recall per touched line; Clio's RPC writes have no
  coherence protocol to pay, so CXL must *lose* this one.  Winning both
  cells would mean the coherence model is broken;
* **noisy_neighbor** — the verify-harness QoS scenario, shaped and
  unshaped: per-tenant egress shaping holds the victim's p99 inflation
  to <= 1.5x while the unshaped run documents the >= 2x blow-up the
  shaper exists to prevent.

All latencies are *simulated* nanoseconds (deterministic), so the
asserted bars are safe on shared CI runners; ``wall_s``/``events`` carry
the engine-throughput trajectory.  Set ``REPRO_BENCH_TINY=1`` (the CI
qos-smoke job does) to shrink the workload.
"""

from __future__ import annotations

import json
import os
import time

from perf_common import BENCH_FILE, record, validate_cxl_section

from repro.analysis.stats import median, p99
from repro.baselines.api import create_backend
from repro.baselines.cxl import CXLPool
from repro.cluster import ClioCluster
from repro.params import ClioParams
from repro.sim import Environment
from repro.verify import run_qos_noisy_neighbor

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))

KB = 1 << 10
MB = 1 << 20

READ_OPS = 80 if TINY else 400
CHURN_OPS = 40 if TINY else 200
SEED = 7


def _subline_read_cell(backend_name: str) -> dict:
    """64B reads at one hot offset, per-op latency from the protocol."""
    backend = create_backend(backend_name, seed=SEED)
    latencies: list[int] = []

    def app():
        yield from backend.setup()
        handle = yield from backend.alloc(1 * MB)
        yield from backend.write(handle, 0, b"\x5c" * 64)
        for _ in range(READ_OPS):
            _, latency = yield from backend.read(handle, 0, 64)
            latencies.append(latency)
        yield from backend.free(handle)

    start = time.perf_counter()
    backend.run_process(app())
    wall_s = time.perf_counter() - start
    return {
        "backend": backend_name,
        "ops": READ_OPS,
        "read_p50_ns": round(median(latencies)),
        "read_p99_ns": round(p99(latencies)),
        "wall_s": round(wall_s, 4),
        "events": backend.env._seq,
    }


def _cxl_churn_cell() -> dict:
    """Two hosts ping-pong 1KB stores on one shared region."""
    env = Environment()
    pool = CXLPool(env, ClioParams.prototype(), capacity=64 * MB)
    hosts = [pool.host("h0"), pool.host("h1")]
    latencies: list[int] = []
    shared = {}

    def owner():
        shared["region"] = yield from hosts[0].alloc(64 * KB)

    env.run(until=env.process(owner()))

    def client(host, stride):
        payload = bytes([stride]) * 1024
        for index in range(CHURN_OPS):
            offset = ((index % 8) * 1024)
            latency = yield from host.store(shared["region"], offset,
                                            payload)
            latencies.append(latency)

    start = time.perf_counter()
    procs = [env.process(client(host, index))
             for index, host in enumerate(hosts)]
    env.run(until=env.all_of(procs))
    wall_s = time.perf_counter() - start
    return {
        "backend": "cxl",
        "clients": len(hosts),
        "ops": len(latencies),
        "write_p50_ns": round(median(latencies)),
        "write_p99_ns": round(p99(latencies)),
        "wall_s": round(wall_s, 4),
        "events": env._seq,
    }


def _clio_churn_cell() -> dict:
    """Two CN threads issue 1KB RPC writes to regions on one MN."""
    cluster = ClioCluster(params=ClioParams.prototype(), seed=SEED,
                          num_cns=2, mn_capacity=256 * MB)
    env = cluster.env
    latencies: list[int] = []

    def client(cn_index):
        thread = cluster.cn(cn_index).process("mn0").thread()
        va = yield from thread.ralloc(64 * KB)
        yield from thread.rwrite(va, b"\0" * 64)        # fault the page in
        payload = bytes([cn_index + 1]) * 1024
        for index in range(CHURN_OPS):
            offset = ((index % 8) * 1024)
            begin = env.now
            yield from thread.rwrite(va + offset, payload)
            latencies.append(env.now - begin)

    start = time.perf_counter()
    procs = [env.process(client(index)) for index in range(2)]
    cluster.run(until=env.all_of(procs))
    wall_s = time.perf_counter() - start
    return {
        "backend": "clio",
        "clients": 2,
        "ops": len(latencies),
        "write_p50_ns": round(median(latencies)),
        "write_p99_ns": round(p99(latencies)),
        "wall_s": round(wall_s, 4),
        "events": env._seq,
    }


def _noisy_cell(shaping: bool) -> dict:
    # Deliberately NOT shrunk under TINY: a shorter victim window
    # samples the pre-convergence burst and inflates the shaped p99
    # past the bar.  ~8s wall total is fine for the smoke job.
    start = time.perf_counter()
    result = run_qos_noisy_neighbor(seed=SEED, shaping=shaping)
    wall_s = time.perf_counter() - start
    assert result.ok, result.problems()
    extras = result.extras
    return {
        "shaping": shaping,
        "victim_base_p99_ns": extras["victim_base_p99_ns"],
        "victim_noisy_p99_ns": extras["victim_noisy_p99_ns"],
        "inflation": extras["victim_p99_inflation"],
        "aggressor_ops": extras["aggressor_ops"],
        "wall_s": round(wall_s, 4),
        "events": extras["events"],
    }


def test_cxl_subline_read_beats_clio():
    cells = {name: _subline_read_cell(name) for name in ("cxl", "clio")}
    assert cells["cxl"]["read_p50_ns"] < cells["clio"]["read_p50_ns"], cells
    for name, cell in cells.items():
        record("cxl", f"subline_read.{name}", cell)


def test_cxl_pooled_churn_loses_to_clio():
    cells = {"cxl": _cxl_churn_cell(), "clio": _clio_churn_cell()}
    assert cells["cxl"]["write_p99_ns"] > cells["clio"]["write_p99_ns"], cells
    for name, cell in cells.items():
        record("cxl", f"pooled_churn.{name}", cell)


def test_noisy_neighbor_isolation_bars():
    shaped = _noisy_cell(shaping=True)
    unshaped = _noisy_cell(shaping=False)
    assert shaped["inflation"] <= 1.5, shaped
    assert unshaped["inflation"] >= 2.0, unshaped
    record("cxl", "noisy_neighbor.shaped", shaped)
    record("cxl", "noisy_neighbor.unshaped", unshaped)


def test_cxl_section_schema_validates():
    with open(BENCH_FILE) as handle:
        data = json.load(handle)
    problems = validate_cxl_section(data)
    assert not problems, problems

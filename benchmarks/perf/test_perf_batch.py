"""The repro.batch sweep: simulated throughput, batching on vs off.

Sweeps batch size (1 -> 64) x op size (16 B -> 4 KB) and reports
*simulated* ops/sec — operations per simulated nanosecond, a
deterministic number — with the adaptive batcher on versus off.  Both
sides pipeline the same number of outstanding async ops, so the delta
isolates what frames buy: one Clio header and one congestion-window
slot per *frame* instead of per op.

Writes carry the acceptance bar (>= 1.5x simulated ops/sec at 64 B with
the largest swept batch): small lone writes are congestion-window-bound
(cwnd slots x RTT), and a frame packs up to ``max_ops`` of them into one
slot.  Reads are swept too but are *expected* to stay near 1x at small
sizes — the board's read path serializes on the DMA engine's fixed
setup (the paper's Figure 9 bottleneck, ``FastPath._read_dma_free_at``),
a per-sub-op cost batching cannot amortize.  At 4 KB an op no longer
fits a frame and falls back to the classic path, so every ratio
collapses to ~1x: the sweep shows the crossover, not a free lunch.

Results land in ``BENCH_perf.json`` under the ``batch`` section.  Set
``REPRO_BENCH_TINY=1`` (the CI bench-smoke job does) to shrink the grid
and op counts.
"""

from __future__ import annotations

import os

from perf_common import record

from repro.cluster import ClioCluster
from repro.params import ClioParams

MB = 1 << 20
TINY = bool(os.environ.get("REPRO_BENCH_TINY"))

BATCH_SIZES = (1, 16) if TINY else (1, 4, 16, 64)
WRITE_SIZES = (64,) if TINY else (16, 64, 1024, 4096)
READ_SIZES = () if TINY else (64, 1024)
OPS = 96 if TINY else 512
PIPELINE_WINDOW = 32 if TINY else 256   # outstanding ops, both sides


def _measure(batch: int, op_size: int, kind: str, batching: bool) -> float:
    """Simulated ops/sec for one sweep cell (deterministic)."""
    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          mn_capacity=256 * MB)
    thread = (cluster.cn(0).process("mn0")
              .thread(ordering_granularity="byte"))
    holder = {}

    def prime():
        va = yield from thread.ralloc(8 * MB)
        page = cluster.mn.page_spec.page_size
        for offset in range(0, 8 * MB, page):
            yield from thread.rwrite(va + offset, b"\0" * 64)
        holder["va"] = va

    cluster.run(until=cluster.env.process(prime()))
    va = holder["va"]
    if batching:
        thread.enable_batching(max_ops=batch, window_ns=400)
    payload = b"b" * op_size
    start_ns = cluster.env.now

    def workload():
        handles = []
        for index in range(OPS):
            offset = (index * op_size) % (4 * MB)
            if kind == "write":
                handle = yield from thread.rwrite_async(va + offset, payload)
            else:
                handle = yield from thread.rread_async(va + offset, op_size)
            handles.append(handle)
            if len(handles) >= PIPELINE_WINDOW:
                for completion in (yield from thread.rpoll(handles)):
                    completion.result
                handles = []
        thread._flush_batches()
        for completion in (yield from thread.rpoll(handles)):
            completion.result

    cluster.run(until=cluster.env.process(workload()))
    elapsed_ns = cluster.env.now - start_ns
    return OPS * 1e9 / elapsed_ns


def _sweep(kind: str, op_sizes) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for op_size in op_sizes:
        series = {}
        for batch in BATCH_SIZES:
            off = _measure(batch, op_size, kind, batching=False)
            on = _measure(batch, op_size, kind, batching=True)
            series[str(batch)] = {
                "sim_ops_per_sec_off": round(off),
                "sim_ops_per_sec_on": round(on),
                "speedup": round(on / off, 3),
            }
        out[f"{kind}_{op_size}B"] = {"kind": kind, "op_size": op_size,
                                     "ops": OPS, "series": series}
        print(f"{kind:>5} {op_size:>5}B: " + "  ".join(
            f"b{batch}={cell['speedup']:.2f}x"
            for batch, cell in series.items()))
    return out


def test_batch_sweep_speedup():
    sweep = _sweep("write", WRITE_SIZES)
    if READ_SIZES:
        sweep.update(_sweep("read", READ_SIZES))
    for name, cell in sweep.items():
        record("batch", f"sweep_{name}", cell)

    # Acceptance: >= 1.5x at 64 B writes with the largest swept batch.
    largest = str(BATCH_SIZES[-1])
    assert sweep["write_64B"]["series"][largest]["speedup"] >= 1.5
    # Batching never materially hurts, whatever the shape.
    for cell in sweep.values():
        for point in cell["series"].values():
            assert point["speedup"] >= 0.85

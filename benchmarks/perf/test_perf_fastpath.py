"""End-to-end simulator throughput: the packet-echo microbenchmark.

This is the headline number the tentpole optimization targets: how many
CN->switch->MN->switch->CN request/response round trips the simulator
executes per wall second.  Every figure benchmark is built out of exactly
this path (CLib request, two link hops, switch forwarding, the CBoard
fast path, and the response train), so speeding it up speeds everything.

A second benchmark drives the board directly (``execute_local``) to
isolate the device model from the network stack.
"""

from __future__ import annotations

from perf_common import best_of, measure_ops, record

from repro.cluster import ClioCluster
from repro.core.addr import AccessType
from repro.params import ClioParams

MB = 1 << 20
ECHO_OPS = 2_000
LOCAL_OPS = 4_000


def _primed_cluster():
    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          num_cns=1, mn_capacity=1 * MB * 256)
    thread = cluster.cn(0).process("mn0").thread()
    holder = {}

    def prime():
        va = yield from thread.ralloc(4 * MB)
        page = cluster.mn.page_spec.page_size
        for offset in range(0, 4 * MB, page):
            yield from thread.rwrite(va + offset, b"\0" * 64)
        holder["va"] = va

    cluster.run(until=cluster.env.process(prime()))
    return cluster, thread, holder["va"]


def test_perf_packet_echo():
    def one_run():
        cluster, thread, va = _primed_cluster()
        final_now = {}

        def echo():
            for _ in range(ECHO_OPS):
                yield from thread.rread(va, 64)
            final_now["t"] = cluster.env.now

        proc = cluster.env.process(echo())
        metrics = measure_ops(cluster.env, lambda: cluster.run(until=proc),
                              ECHO_OPS)
        # Simulated end time is recorded so any future engine change can
        # confirm determinism was preserved (identical simulated
        # timestamps) — best_of also checks it agrees across runs.
        metrics["simulated_end_ns"] = final_now["t"]
        return metrics

    metrics = best_of(3, one_run)
    record("fastpath", "packet_echo_read64", metrics)
    print(f"packet_echo_read64: {metrics}")
    assert metrics["ops_per_sec"] > 100


def test_perf_onboard_ops():
    def one_run():
        cluster, thread, va = _primed_cluster()
        board = cluster.mn
        env = cluster.env
        pid = thread.process.pid

        def workload():
            for _ in range(LOCAL_OPS):
                yield from board.execute_local(pid, AccessType.READ, va, 64)

        proc = env.process(workload())
        return measure_ops(env, lambda: cluster.run(until=proc), LOCAL_OPS)

    metrics = best_of(3, one_run)
    record("fastpath", "onboard_read64", metrics)
    print(f"onboard_read64: {metrics}")
    assert metrics["ops_per_sec"] > 200

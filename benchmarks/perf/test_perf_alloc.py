"""Allocation-strategy benchmark: the churn scenario suite across PA
strategies and VA policies.

What is on trial:

* **slow-path crossings** — per-process arenas must cut ARM global-pool
  touches by at least 2x on the small-object churn mix vs the default
  free list (the ISSUE acceptance bar; in practice batching wins ~50x);
* **fragmentation** — the buddy allocator must report a meaningful
  external-fragmentation ratio on the mixed-size scenario;
* **retry storms** — on the near-full page table the retry-aware
  ``jump`` VA policy must not pay more retries than first-fit;
* **determinism** — the default-strategy cell records a fingerprint so
  cross-PR drift in the allocation history is visible in the committed
  numbers.

All comparisons are over *simulated* time and deterministic counters,
so the asserted bars are safe on shared CI runners.  Results land in
``BENCH_perf.json`` under the ``alloc`` section (schema-checked by
``perf_common.validate_alloc_section``).  Set ``REPRO_BENCH_TINY=1``
(the CI alloc-smoke job does) to shrink the workload.
"""

from __future__ import annotations

import os
import time

from perf_common import record, validate_alloc_section

from repro.workloads.churn import run_churn

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))

OPS = 80 if TINY else 240
STORM_OPS = 40 if TINY else 120
SEED = 7

STRATEGIES = ("freelist", "slab", "buddy", "arena")


def _cell(scenario: str, strategy: str, va_policy: str = "first-fit",
          ops: int = OPS) -> dict:
    start = time.perf_counter()
    report = run_churn(scenario, pa_strategy=strategy, va_policy=va_policy,
                       seed=SEED, ops=ops)
    wall_s = time.perf_counter() - start
    assert not report.violations, [v.describe() for v in report.violations]
    assert report.ops_failed == 0, report.summary()
    cell = report.summary()
    cell["wall_s"] = round(wall_s, 4)
    cell["events"] = report.events
    cell["sim_now_us"] = round(report.now_ns / 1000, 1)
    return cell


def test_alloc_churn_records_and_clears_bars():
    cells = {}
    for scenario in ("small-churn", "small-large-mix"):
        for strategy in STRATEGIES:
            cells[f"{scenario}.{strategy}"] = _cell(scenario, strategy)

    # Acceptance bar: arenas amortize global-pool crossings >= 2x on the
    # small-object churn mix (deterministic counter, not wall time).
    freelist = cells["small-churn.freelist"]
    arena = cells["small-churn.arena"]
    assert arena["slow_crossings"] * 2 <= freelist["slow_crossings"], (
        freelist["slow_crossings"], arena["slow_crossings"])

    # Buddy must report external fragmentation on the mixed-size mix;
    # the single-page mix keeps it in [0, 1] too.
    for name, cell in cells.items():
        assert 0.0 <= cell["fragmentation"] <= 1.0, (name, cell)
    assert cells["small-large-mix.buddy"]["fragmentation"] > 0.0

    # Identical-latency sanity: strategy choice is pure bookkeeping, so
    # the non-arena strategies see the same simulated allocation tail.
    assert (cells["small-churn.freelist"]["alloc_p99_us"]
            == cells["small-churn.slab"]["alloc_p99_us"]
            == cells["small-churn.buddy"]["alloc_p99_us"])

    for name, cell in cells.items():
        record("alloc", name, cell)


def test_alloc_retry_storm_policies_record():
    cells = {}
    for policy in ("first-fit", "jump"):
        cells[policy] = _cell("retry-storm", "freelist", va_policy=policy,
                              ops=STORM_OPS)
    # The memoizing jumper may never pay MORE retries than the paper's
    # linear search on the same storm.
    assert cells["jump"]["retries"] <= cells["first-fit"]["retries"], cells
    assert cells["first-fit"]["retries"] > 0, (
        "retry-storm failed to force hash-overflow retries")
    for policy, cell in cells.items():
        record("alloc", f"retry-storm.va.{policy}", cell)


def test_alloc_section_schema_validates():
    import json

    from perf_common import BENCH_FILE

    with open(BENCH_FILE) as handle:
        data = json.load(handle)
    problems = validate_alloc_section(data)
    assert not problems, problems

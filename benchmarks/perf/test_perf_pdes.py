"""Partitioned-engine throughput: the 8-board packet-echo rack.

One model, four engine modes, identical event streams:

* ``rack_echo_flat``        — the global-heap :class:`Environment`;
* ``rack_echo_partitioned`` — the single-process partitioned scheduler
  (must dispatch exactly the same events — it is bit-identical by
  construction);
* ``rack_echo_parallel``    — the conservative-window executor.  The
  committed number is the *critical-path projection* (``workers=0``):
  the same windowed schedule runs in-process, each partition's window is
  timed separately, and the projected wall is the sum of per-window
  maxima — the standard PDES bound, independent of how many cores the
  measuring machine happens to have.  A measured forked run is recorded
  alongside (``rack_echo_forked``) and only asserted on when the machine
  actually has cores to parallelize over.

The model: 8 nodes, each a client+board pair in its own partition.
Client ``i`` keeps ``INFLIGHT`` echo slots against board ``(i+3) % 8``;
every hop crosses a channel with the link propagation delay as its
lookahead, and the board charges a service delay per request.  Three
events per round trip (request delivery, service completion, reply
delivery) — all pure callbacks, so the same structure runs unchanged in
forked workers.
"""

from __future__ import annotations

import json
import os

from perf_common import (
    BENCH_FILE,
    best_of,
    record,
    run_timed,
    validate_engine_section,
)

from repro.sim import Environment, ParallelExecutor, PartitionedEnvironment

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))

NODES = 8
INFLIGHT = 8 if TINY else 48
ROUNDS = 10 if TINY else 40
HOP_NS = 1_000          # link propagation == channel lookahead
SERVICE_NS = 500
ROUND_NS = 2 * HOP_NS + SERVICE_NS
DEADLINE_NS = (ROUNDS + 2) * ROUND_NS
EXPECTED_EVENTS = NODES * INFLIGHT * ROUNDS * 3


def _peer(i: int) -> int:
    return (i + 3) % NODES


def _run_and_count(env, done) -> dict:
    """Time a deadline run, counting *all* dispatched events.

    The kickoff sends are scheduled at build time, before the timed
    region, but dispatched inside it — and every event this model
    schedules fires before the deadline, so the final sequence counter
    is the dispatch count (matching ``ParallelExecutor.events``).
    """
    metrics = run_timed(env, lambda: env.run(until=DEADLINE_NS))
    assert sum(done) == NODES * INFLIGHT
    metrics["events"] = env._seq
    if metrics["wall_s"] > 0:
        metrics["events_per_sec"] = round(env._seq / metrics["wall_s"])
    return metrics


def build_flat():
    """The same echo rack on the flat global-heap engine."""
    env = Environment()
    done = [0] * NODES

    def handle(i, msg):
        if msg[0] == "req":
            _, src, slot, remaining = msg
            env.schedule_callback(
                SERVICE_NS,
                lambda: env.schedule_callback(
                    HOP_NS, lambda: handle(src, ("rep", slot, remaining))))
        else:
            _, slot, remaining = msg
            if remaining > 1:
                env.schedule_callback(
                    HOP_NS,
                    lambda: handle(_peer(i), ("req", i, slot, remaining - 1)))
            else:
                done[i] += 1

    for i in range(NODES):
        for slot in range(INFLIGHT):
            env.schedule_callback(
                HOP_NS,
                lambda i=i, slot=slot: handle(_peer(i),
                                              ("req", i, slot, ROUNDS)))
    return env, done


def build_partitioned():
    """The echo rack as 8 logical processes joined by channels."""
    env = PartitionedEnvironment()
    parts = [env.partition(f"node{i}") for i in range(NODES)]
    done = [0] * NODES
    chans = {}

    def make_handler(i):
        part = parts[i]

        def handle(msg):
            if msg[0] == "req":
                _, src, slot, remaining = msg
                part.schedule_callback(
                    SERVICE_NS,
                    lambda: chans[(i, src)].send(("rep", slot, remaining)))
            else:
                _, slot, remaining = msg
                if remaining > 1:
                    chans[(i, _peer(i))].send(
                        ("req", i, slot, remaining - 1))
                else:
                    done[i] += 1

        return handle

    handlers = [make_handler(i) for i in range(NODES)]
    for i in range(NODES):
        for j in (_peer(i), (i - 3) % NODES):
            if (i, j) not in chans:
                chans[(i, j)] = env.open_channel(parts[i], parts[j],
                                                 handlers[j], HOP_NS)
    for i in range(NODES):
        for slot in range(INFLIGHT):
            chans[(i, _peer(i))].send(("req", i, slot, ROUNDS))
    return env, done


def test_perf_rack_echo_flat():
    def measure():
        env, done = build_flat()
        return _run_and_count(env, done)

    metrics = best_of(3, measure)
    record("engine", "rack_echo_flat", metrics)
    print(f"rack_echo_flat: {metrics}")
    assert metrics["events"] == EXPECTED_EVENTS
    assert metrics["events_per_sec"] > 20_000


def test_perf_rack_echo_partitioned():
    def measure():
        env, done = build_partitioned()
        metrics = _run_and_count(env, done)
        stats = env.partition_stats()
        metrics["drain_runs"] = stats["drain_runs"]
        metrics["channel_messages"] = stats["channel_messages"]
        return metrics

    metrics = best_of(3, measure)
    record("engine", "rack_echo_partitioned", metrics)
    print(f"rack_echo_partitioned: {metrics}")
    assert metrics["events"] == EXPECTED_EVENTS
    assert metrics["events_per_sec"] > 20_000


def test_perf_rack_echo_parallel():
    cores = os.cpu_count() or 1

    # Serial reference: the flat engine on this machine, right now.
    env, done = build_flat()
    serial = _run_and_count(env, done)

    # Critical-path projection (workers=0): deterministic windowed
    # schedule, projected wall = sum over windows of the slowest
    # partition's dispatch time.
    env, done = build_partitioned()
    executor = ParallelExecutor(env, workers=0)
    stats = executor.run(DEADLINE_NS)
    assert sum(done) == NODES * INFLIGHT
    assert stats["events"] == serial["events"] == EXPECTED_EVENTS

    projected = stats["events"] / stats["projected_wall_s"]
    speedup = (projected / serial["events_per_sec"]
               if serial["events_per_sec"] else 0.0)
    metrics = {
        "wall_s": stats["wall_s"],
        "projected_wall_s": stats["projected_wall_s"],
        "events": stats["events"],
        "events_per_sec": round(projected),
        "serial_events_per_sec": serial["events_per_sec"],
        "projected_speedup": round(speedup, 2),
        "windows": stats["windows"],
        "null_messages": stats["null_messages"],
        "channel_messages": stats["channel_messages"],
        "lookahead_ns": stats["lookahead_ns"],
        "cpu_cores": cores,
    }
    record("engine", "rack_echo_parallel", metrics)
    print(f"rack_echo_parallel: {metrics}")
    # The acceptance bar: >= 2x the serial engine on the 8-board rack.
    # The projection is the per-window critical path over 8 balanced
    # partitions, so this holds on any machine; the forked test below
    # checks measured wall clock where cores exist to back it.
    assert speedup >= 2.0, f"projected speedup {speedup:.2f} < 2.0"

    # Measured forked run: honest wall clock, asserted only where the
    # hardware can parallelize (CI and dev laptops; not 1-core boxes).
    env, _done = build_partitioned()
    executor = ParallelExecutor(env)
    forked = executor.run(DEADLINE_NS)
    assert forked["events"] == EXPECTED_EVENTS
    measured = {
        "wall_s": forked["wall_s"],
        "events": forked["events"],
        "events_per_sec": round(forked["events"] / forked["wall_s"])
        if forked["wall_s"] else 0,
        "workers": forked["workers"],
        "windows": forked["windows"],
        "cpu_cores": cores,
    }
    record("engine", "rack_echo_forked", measured)
    print(f"rack_echo_forked: {measured}")
    if cores >= 4:
        assert measured["events_per_sec"] > serial["events_per_sec"], \
            "forked executor slower than the serial engine on a " \
            f"{cores}-core machine"


def test_bench_engine_schema():
    """The committed BENCH_perf.json engine section stays well-formed."""
    with open(BENCH_FILE) as handle:
        data = json.load(handle)
    problems = validate_engine_section(data)
    assert not problems, problems

"""The repro.cache sweep: simulated throughput, caching on vs off.

A zipfian multi-client read/write mix over ONE shared region, swept
across hot-set sizes (fits-in-cache vs thrashes) x write ratios x
write-through/write-back, reporting *simulated* ops/sec — operations
per simulated nanosecond, a deterministic number.  The cache-off
baseline runs the identical op stream straight at the MN; the delta
isolates what locality buys: a ~300 ns DRAM hit instead of a full
network round trip.

The acceptance bar is the ISSUE's: the hot-set read sweep must clear
>= 2x simulated ops/sec over cache-off at >= 90% hit rate.  Write-heavy
cells are *expected* to give the win back — write-through pays the MN
round trip per set, and cross-CN sharing turns writes into recall
traffic — the sweep shows the crossover, not a free lunch.

Results land in ``BENCH_perf.json`` under the ``cache`` section
(schema-checked by ``perf_common.validate_cache_section``).  Set
``REPRO_BENCH_TINY=1`` (the CI bench-smoke job does) to shrink the grid.
"""

from __future__ import annotations

import os

from perf_common import record

from repro.cluster import ClioCluster
from repro.params import KB, MB
from repro.sim.rng import RandomStream, ZipfTable
from repro.workloads import zipfian_keys

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))

_PID = 9701
IO = 64
LINE = 4 * KB
SLOTS_PER_LINE = LINE // IO
CAPACITY_LINES = 16

POLICIES = ("back",) if TINY else ("through", "back")
HOT_LINES = (8,) if TINY else (8, 64)        # 8 fits in 16; 64 thrashes
WRITE_FRACS = (0.0,) if TINY else (0.0, 0.1, 0.5)
OPS = 120 if TINY else 400                   # measured ops per client
NUM_CLIENTS = 2


def _run_cell(hot_lines: int, write_frac: float, policy: str | None,
              seed: int = 0) -> dict:
    """One deterministic run; ``policy=None`` is the cache-off baseline."""
    cluster = ClioCluster(seed=seed, num_cns=NUM_CLIENTS,
                          mn_capacity=256 * MB)
    if policy is not None:
        cluster.enable_caching(policy=policy, line_bytes=LINE,
                               capacity_lines=CAPACITY_LINES)
    env = cluster.env
    region = hot_lines * LINE
    num_keys = hot_lines * SLOTS_PER_LINE
    table = ZipfTable(num_keys, 0.99)
    threads = [cluster.cn(i).process("mn0", pid=_PID).thread()
               for i in range(NUM_CLIENTS)]
    holder = {}

    def setup():
        holder["va"] = yield from threads[0].ralloc(region)
        # Warmup: touch every hot line once so the measured phase sees
        # a populated cache, not cold-fill latency.
        for line in range(hot_lines):
            yield from threads[0].rread(holder["va"] + line * LINE, IO)

    cluster.run(until=env.process(setup()))
    va = holder["va"]
    rng = RandomStream(seed, f"bench/cache/{hot_lines}/{write_frac}")
    start_ns = env.now
    before = [(cn.cache.hits, cn.cache.misses) if cn.cache else (0, 0)
              for cn in cluster.cns]

    def client(index):
        crng = rng.fork(f"client{index}")
        keys = zipfian_keys(crng, num_keys, table=table)
        payload = bytes((index + 1,)) * IO
        for _ in range(OPS):
            offset = next(keys) * IO
            if crng.chance(write_frac):
                yield from threads[index].rwrite(va + offset, payload)
            else:
                yield from threads[index].rread(va + offset, IO)

    procs = [env.process(client(i)) for i in range(NUM_CLIENTS)]
    cluster.run(until=env.all_of(procs))
    elapsed_ns = env.now - start_ns
    out = {"sim_ops_per_sec": round(NUM_CLIENTS * OPS * 1e9 / elapsed_ns)}
    if policy is not None:
        hits = sum(cn.cache.hits - b[0]
                   for cn, b in zip(cluster.cns, before))
        misses = sum(cn.cache.misses - b[1]
                     for cn, b in zip(cluster.cns, before))
        out["hit_rate"] = round(hits / max(1, hits + misses), 4)
    return out


def test_cache_sweep_speedup():
    sweep: dict[str, dict] = {}
    for hot_lines in HOT_LINES:
        for write_frac in WRITE_FRACS:
            off = _run_cell(hot_lines, write_frac, policy=None)
            for policy in POLICIES:
                on = _run_cell(hot_lines, write_frac, policy=policy)
                cell = {
                    "policy": policy,
                    "hot_lines": hot_lines,
                    "write_frac": write_frac,
                    "ops": NUM_CLIENTS * OPS,
                    "sim_ops_per_sec_off": off["sim_ops_per_sec"],
                    "sim_ops_per_sec_on": on["sim_ops_per_sec"],
                    "speedup": round(on["sim_ops_per_sec"]
                                     / off["sim_ops_per_sec"], 3),
                    "hit_rate": on["hit_rate"],
                }
                name = (f"{policy}_h{hot_lines}_"
                        f"w{int(write_frac * 100):02d}")
                sweep[name] = cell
                print(f"{name}: {cell['speedup']:.2f}x at "
                      f"{cell['hit_rate']:.1%} hits")
    for name, cell in sweep.items():
        record("cache", name, cell)

    # Acceptance (the ISSUE bar): the zipfian hot-set read sweep clears
    # >= 2x simulated ops/sec over cache-off at >= 90% hit rate.
    hot = HOT_LINES[0]
    for policy in POLICIES:
        best = sweep[f"{policy}_h{hot}_w00"]
        assert best["speedup"] >= 2.0, best
        assert best["hit_rate"] >= 0.90, best
    # Worst-corner floor: even thrashing + write-heavy + cross-CN
    # sharing (every write a directory transaction, every hit soon
    # recalled) stays a bounded slowdown, not a collapse.
    for cell in sweep.values():
        assert cell["speedup"] >= 0.25, cell

"""Telemetry overhead: the zero-cost-when-disabled budget, measured.

Three variants of the packet-echo microbenchmark:

* ``telemetry_off`` — registry wired in (it always is now) but no tracer
  and no sampling.  This must stay within 5% of the committed
  pre-telemetry ``fastpath.packet_echo_read64`` events/sec — the
  subsystem's rent when nobody is looking.
* ``tracing_on`` — full span tracing.  Recording is passive list
  appends; the budget is loose (recording costs real wall time) but the
  simulated end time must be *identical* to the untraced run, which
  best_of's determinism cross-check enforces via ``simulated_end_ns``.
* ``sampling_on`` — tracing plus 10 us registry sampling.

Wall-clock comparisons against the *committed* JSON would be flaky on
shared runners, so the cross-PR check uses the deterministic fields
instead: telemetry-off must dispatch exactly the same number of engine
events and reach exactly the same simulated end time as the committed
pre-telemetry ``fastpath.packet_echo_read64`` run.  Zero extra events is
a stronger statement than any percentage — the wall-clock trajectory
lives in ``BENCH_perf.json`` for eyeball comparison across commits.
"""

from __future__ import annotations

import json
import os

from perf_common import BENCH_FILE, best_of, measure_ops, record

from repro.cluster import ClioCluster
from repro.params import ClioParams

MB = 1 << 20
ECHO_OPS = 2_000


def _committed_baseline() -> dict:
    if not os.path.exists(BENCH_FILE):
        return {}
    with open(BENCH_FILE) as handle:
        data = json.load(handle)
    return data.get("fastpath", {}).get("packet_echo_read64", {})


def _echo_metrics(trace: bool, sample_interval_ns: int = 0) -> dict:
    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          num_cns=1, mn_capacity=1 * MB * 256)
    if trace:
        cluster.enable_tracing()
    if sample_interval_ns:
        cluster.metrics.start_sampling(cluster.env, sample_interval_ns)
    thread = cluster.cn(0).process("mn0").thread()
    holder = {}

    def prime():
        va = yield from thread.ralloc(4 * MB)
        page = cluster.mn.page_spec.page_size
        for offset in range(0, 4 * MB, page):
            yield from thread.rwrite(va + offset, b"\0" * 64)
        holder["va"] = va

    cluster.run(until=cluster.env.process(prime()))
    final_now = {}

    def echo():
        for _ in range(ECHO_OPS):
            yield from thread.rread(holder["va"], 64)
        final_now["t"] = cluster.env.now

    proc = cluster.env.process(echo())
    metrics = measure_ops(cluster.env, lambda: cluster.run(until=proc),
                          ECHO_OPS)
    if not sample_interval_ns:
        # Sampling adds (read-only) callback events, so the event count
        # is only comparable across the off/tracing variants.
        metrics["simulated_end_ns"] = final_now["t"]
    return metrics


def test_perf_telemetry_off_overhead():
    baseline = best_of(3, lambda: _echo_metrics(trace=False))
    record("telemetry", "echo_telemetry_off", baseline)
    print(f"echo_telemetry_off: {baseline}")
    assert baseline["ops_per_sec"] > 100
    # This variant is config-identical to fastpath.packet_echo_read64, so
    # the registry wiring must add zero engine events and leave every
    # simulated timestamp where the committed pre-telemetry run put it.
    committed = _committed_baseline()
    if committed:
        assert baseline["events"] == committed["events"]
        assert baseline["simulated_end_ns"] == committed["simulated_end_ns"]


def test_perf_tracing_on():
    off = best_of(3, lambda: _echo_metrics(trace=False))
    on = best_of(3, lambda: _echo_metrics(trace=True))
    # Identical event counts and simulated end: tracing is passive.
    assert on["events"] == off["events"]
    assert on["simulated_end_ns"] == off["simulated_end_ns"]
    # Budget: tracing-off costs nothing (it IS off's config); the traced
    # run may pay for list appends but must stay within 2x.
    assert on["events_per_sec"] > off["events_per_sec"] * 0.5, (on, off)
    record("telemetry", "echo_tracing_on", on)
    print(f"echo_tracing_on: {on}")


def test_perf_sampling_on():
    metrics = best_of(3, lambda: _echo_metrics(trace=True,
                                               sample_interval_ns=10_000))
    record("telemetry", "echo_sampling_10us", metrics)
    print(f"echo_sampling_10us: {metrics}")
    assert metrics["ops_per_sec"] > 100

"""Shared measurement helpers for the engine performance suite.

These benchmarks measure *simulator* throughput — how many engine events
(and end-to-end operations) the pure-Python DES core dispatches per
wall-clock second — not simulated latency.  The point is to keep the
reproduction fast enough that production-scale configurations stay
tractable, and to leave a committed trajectory (``BENCH_perf.json`` at
the repo root) that future PRs can compare against.

Methodology: each benchmark builds a fresh workload, runs it once to
completion, and reports

* ``events_per_sec`` — events dispatched / wall seconds (the engine's
  scheduling sequence counter is a faithful count of dispatched events);
* ``ops_per_sec``   — workload-level operations / wall seconds, where an
  "op" is whatever the benchmark says it is (a packet echoed, a timeout
  chain step, ...).

Floors asserted here are deliberately loose (~5-10x below the numbers a
developer laptop produces) so CI noise never makes them flaky; the JSON
file carries the real trajectory.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
BENCH_FILE = os.path.join(REPO_ROOT, "BENCH_perf.json")


def run_timed(env, run: Callable[[], None]) -> dict:
    """Run ``run()`` and return wall time plus engine event counts.

    ``env`` must be the Environment the workload schedules into; its
    internal sequence counter before/after gives the number of events
    dispatched by the run.
    """
    events_before = env._seq
    start = time.perf_counter()
    run()
    wall_s = time.perf_counter() - start
    events = env._seq - events_before
    return {
        "wall_s": round(wall_s, 4),
        "events": events,
        "events_per_sec": round(events / wall_s) if wall_s > 0 else 0,
    }


def measure_ops(env, run: Callable[[], None], ops: int) -> dict:
    """Like :func:`run_timed`, adding ops/sec for ``ops`` operations."""
    metrics = run_timed(env, run)
    metrics["ops"] = ops
    if metrics["wall_s"] > 0:
        metrics["ops_per_sec"] = round(ops / metrics["wall_s"])
    return metrics


def best_of(reps: int, measure: Callable[[], dict]) -> dict:
    """Run ``measure`` ``reps`` times and keep the fastest run.

    Each call must build a fresh workload.  Best-of-N is the standard way
    to strip scheduler/frequency noise from a throughput number: the
    fastest run is the one least disturbed by the rest of the machine.
    Deterministic fields (anything not in wall-clock units) must agree
    across runs, and the chosen run carries a ``reps`` count.
    """
    runs = [measure() for _ in range(reps)]
    wall_keys = {"wall_s", "events_per_sec", "ops_per_sec"}
    for run in runs[1:]:
        for key in runs[0]:
            if key not in wall_keys:
                assert run[key] == runs[0][key], key
    best = max(runs, key=lambda m: m["events_per_sec"])
    best["reps"] = reps
    return best


def record(section: str, name: str, metrics: dict) -> None:
    """Merge one benchmark's metrics into ``BENCH_perf.json``."""
    data = {}
    if os.path.exists(BENCH_FILE):
        with open(BENCH_FILE) as handle:
            try:
                data = json.load(handle)
            except ValueError:
                data = {}
    data.setdefault(section, {})[name] = metrics
    with open(BENCH_FILE, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_engine_section(data: dict) -> list[str]:
    """Schema-check the ``engine`` section of a BENCH_perf.json payload.

    Returns a list of problems (empty when the section is well-formed).
    Every engine cell must carry positive wall-clock and event-rate
    fields; the ``rack_echo_*`` cells additionally pin the cross-mode
    contract — all engine modes dispatch the same number of events.
    """
    problems: list[str] = []
    engine = data.get("engine")
    if not engine:
        return ["no 'engine' section"]
    for name, cell in engine.items():
        for key in ("wall_s", "events", "events_per_sec"):
            if not isinstance(cell.get(key), (int, float)) or cell[key] <= 0:
                problems.append(f"{name}: bad {key!r}: {cell.get(key)!r}")
    rack = {name: cell for name, cell in engine.items()
            if name.startswith("rack_echo_")}
    if rack:
        events = {cell["events"] for cell in rack.values()}
        if len(events) != 1:
            problems.append(f"rack_echo modes dispatched different event "
                            f"counts: { {n: c['events'] for n, c in rack.items()} }")
        parallel = engine.get("rack_echo_parallel")
        if parallel is not None:
            for key in ("windows", "projected_speedup", "cpu_cores"):
                if key not in parallel:
                    problems.append(f"rack_echo_parallel missing {key!r}")
    return problems


def validate_rack_section(data: dict) -> list[str]:
    """Schema-check the ``rack`` section of a BENCH_perf.json payload.

    Every cell is one rack YCSB run: the sweep coordinates (boards,
    tors, clients, ops), positive throughput numbers, and the tail
    split around the membership event.  Cells that ran a membership
    scenario must additionally clear the rebalance-quality bar: the
    post-event p99 within 1.5x of the pre-event p99.
    """
    problems: list[str] = []
    rack = data.get("rack")
    if not rack:
        return ["no 'rack' section"]
    for name, cell in rack.items():
        for key in ("boards", "tors", "clients", "ops",
                    "sim_ops_per_sec", "events_per_sec", "wall_s",
                    "pre_p99_us", "post_p99_us"):
            if not isinstance(cell.get(key), (int, float)) or cell[key] <= 0:
                problems.append(f"{name}: bad {key!r}: {cell.get(key)!r}")
        if not isinstance(cell.get("migrations"), int) \
                or cell["migrations"] < 0:
            problems.append(f"{name}: bad 'migrations': "
                            f"{cell.get('migrations')!r}")
        scenario = cell.get("scenario")
        if scenario is not None:
            ratio = cell.get("recovery_ratio")
            if not isinstance(ratio, (int, float)) or ratio <= 0:
                problems.append(f"{name}: bad 'recovery_ratio': {ratio!r}")
            elif ratio > 1.5:
                problems.append(
                    f"{name}: post-event p99 is {ratio}x the pre-event "
                    "p99 (bar: 1.5x)")
    return problems


def validate_cache_section(data: dict) -> list[str]:
    """Schema-check the ``cache`` section of a BENCH_perf.json payload.

    Every cell must carry the sweep coordinates plus positive off/on
    simulated throughputs, a positive speedup, and a hit rate in [0, 1];
    at least one cell must clear the acceptance bar (>= 2x simulated
    ops/sec at >= 90% hit rate — the reason the subsystem exists).
    """
    problems: list[str] = []
    cache = data.get("cache")
    if not cache:
        return ["no 'cache' section"]
    for name, cell in cache.items():
        for key in ("sim_ops_per_sec_off", "sim_ops_per_sec_on",
                    "speedup", "ops"):
            if not isinstance(cell.get(key), (int, float)) or cell[key] <= 0:
                problems.append(f"{name}: bad {key!r}: {cell.get(key)!r}")
        hit_rate = cell.get("hit_rate")
        if not isinstance(hit_rate, (int, float)) or not 0 <= hit_rate <= 1:
            problems.append(f"{name}: bad 'hit_rate': {hit_rate!r}")
        if cell.get("policy") not in ("through", "back"):
            problems.append(f"{name}: bad 'policy': {cell.get('policy')!r}")
    if not any(isinstance(c.get("speedup"), (int, float))
               and isinstance(c.get("hit_rate"), (int, float))
               and c["speedup"] >= 2.0 and c["hit_rate"] >= 0.9
               for c in cache.values()):
        problems.append("no cache cell clears the acceptance bar "
                        "(speedup >= 2.0 at hit_rate >= 0.9)")
    return problems


def validate_cxl_section(data: dict) -> list[str]:
    """Schema-check the ``cxl`` section of a BENCH_perf.json payload.

    The section carries the three-way trade-off the CXL backend exists
    to demonstrate, as committed numbers:

    * ``subline_read.*`` — cache-line loads skip RPC framing, so the
      CXL 64B hot read must beat Clio's;
    * ``pooled_churn.*`` — write-heavy churn on a shared pool pays
      coherence (back-invalidation ping-pong), so CXL's churn tail must
      *lose* to Clio's coherence-free RPC writes;
    * ``noisy_neighbor.*`` — per-tenant egress shaping holds the victim
      p99 inflation to <= 1.5x; removing it lets the same aggressors
      inflate the tail >= 2x.
    """
    problems: list[str] = []
    cxl = data.get("cxl")
    if not cxl:
        return ["no 'cxl' section"]
    for name, cell in cxl.items():
        if name.startswith("subline_read."):
            keys = ("ops", "read_p50_ns", "read_p99_ns")
        elif name.startswith("pooled_churn."):
            keys = ("clients", "ops", "write_p50_ns", "write_p99_ns")
        elif name.startswith("noisy_neighbor."):
            keys = ("victim_base_p99_ns", "victim_noisy_p99_ns",
                    "inflation", "aggressor_ops")
        else:
            problems.append(f"unknown cxl cell {name!r}")
            continue
        for key in keys + ("wall_s", "events"):
            if not isinstance(cell.get(key), (int, float)) or cell[key] <= 0:
                problems.append(f"{name}: bad {key!r}: {cell.get(key)!r}")

    def cell(name, key):
        value = cxl.get(name, {}).get(key)
        return value if isinstance(value, (int, float)) else None

    cxl_read = cell("subline_read.cxl", "read_p50_ns")
    clio_read = cell("subline_read.clio", "read_p50_ns")
    if cxl_read is None or clio_read is None:
        problems.append("missing subline_read.{cxl,clio} cells")
    elif not cxl_read < clio_read:
        problems.append(f"CXL sub-line read ({cxl_read} ns) does not beat "
                        f"Clio ({clio_read} ns)")
    cxl_churn = cell("pooled_churn.cxl", "write_p99_ns")
    clio_churn = cell("pooled_churn.clio", "write_p99_ns")
    if cxl_churn is None or clio_churn is None:
        problems.append("missing pooled_churn.{cxl,clio} cells")
    elif not cxl_churn > clio_churn:
        problems.append(f"CXL pooled churn p99 ({cxl_churn} ns) should "
                        f"lose to Clio ({clio_churn} ns) but does not")
    shaped = cell("noisy_neighbor.shaped", "inflation")
    unshaped = cell("noisy_neighbor.unshaped", "inflation")
    if shaped is None or unshaped is None:
        problems.append("missing noisy_neighbor.{shaped,unshaped} cells")
    else:
        if shaped > 1.5:
            problems.append(f"shaped victim p99 inflation {shaped}x "
                            "exceeds the 1.5x isolation bar")
        if unshaped < 2.0:
            problems.append(f"unshaped victim p99 inflation {unshaped}x "
                            "under 2x: the scenario exerts no pressure")
    return problems


def validate_alloc_section(data: dict) -> list[str]:
    """Schema-check the ``alloc`` section of a BENCH_perf.json payload.

    Every churn cell carries the scenario/strategy coordinates, op
    counts, simulated allocation-latency percentiles, retry counts, a
    slow-crossing count, and a fragmentation ratio in [0, 1].  The
    acceptance bars: for some scenario the arena cell's slow-path
    crossings must be at most half the freelist cell's, some buddy cell
    must report an external-fragmentation ratio, and the default
    freelist cell must pin a determinism fingerprint.
    """
    problems: list[str] = []
    alloc = data.get("alloc")
    if not alloc:
        return ["no 'alloc' section"]
    churn = {name: cell for name, cell in alloc.items()
             if isinstance(cell, dict) and "strategy" in cell}
    for name, cell in churn.items():
        for key in ("ops", "alloc_p50_us", "alloc_p99_us"):
            if not isinstance(cell.get(key), (int, float)) or cell[key] <= 0:
                problems.append(f"{name}: bad {key!r}: {cell.get(key)!r}")
        for key in ("retries", "slow_crossings", "failed"):
            if not isinstance(cell.get(key), int) or cell[key] < 0:
                problems.append(f"{name}: bad {key!r}: {cell.get(key)!r}")
        frag = cell.get("fragmentation")
        if not isinstance(frag, (int, float)) or not 0 <= frag <= 1:
            problems.append(f"{name}: bad 'fragmentation': {frag!r}")
    by_pair = {(cell.get("scenario"), cell.get("strategy")): cell
               for cell in churn.values()}
    arena_win = any(
        (scenario, "arena") in by_pair
        and by_pair[(scenario, "arena")]["slow_crossings"] * 2
        <= cell["slow_crossings"]
        for (scenario, strategy), cell in by_pair.items()
        if strategy == "freelist")
    if not arena_win:
        problems.append("no scenario shows arena slow-path crossings at "
                        "<= half the freelist's (acceptance bar: 2x cut)")
    if not any(cell.get("strategy") == "buddy"
               and isinstance(cell.get("fragmentation"), (int, float))
               for cell in churn.values()):
        problems.append("no buddy cell reports an external-fragmentation "
                        "ratio")
    if not any(cell.get("strategy") == "freelist"
               and isinstance(cell.get("fingerprint"), str)
               and len(cell["fingerprint"]) >= 16
               for cell in churn.values()):
        problems.append("no freelist cell pins a determinism fingerprint")
    return problems

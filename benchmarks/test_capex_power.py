"""Section 7.3 CapEx/power table: server-based MN versus CBoard.

Paper result, hosting 1 TB: a server-based MN costs 1.1-1.5x and draws
1.9-2.7x the power of a CBoard with DRAM; with Optane the gaps grow to
1.4-2.5x cost and 5.1-8.6x power.
"""

from repro.analysis.report import render_table
from repro.energy.capex import MemoryMedia, compare_mn_options

TB = 1 << 40


def run_experiment():
    return {
        media: compare_mn_options(capacity_bytes=TB, media=media)
        for media in MemoryMedia
    }


def test_capex_power(benchmark):
    comparisons = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for media, comparison in comparisons.items():
        rows.append([
            media.value,
            round(comparison.server.capex_usd),
            round(comparison.cboard.capex_usd),
            round(comparison.cost_ratio, 2),
            round(comparison.server.power_watt),
            round(comparison.cboard.power_watt),
            round(comparison.power_ratio, 2),
        ])
    print()
    print(render_table(
        "Section 7.3: 1TB memory node — server vs CBoard",
        ["media", "srv_$", "cb_$", "cost_x", "srv_W", "cb_W", "power_x"],
        rows, width=10))

    dram = comparisons[MemoryMedia.DRAM]
    optane = comparisons[MemoryMedia.OPTANE]

    # Paper bands.
    assert 1.1 <= dram.cost_ratio <= 1.5
    assert 1.9 <= dram.power_ratio <= 2.7
    assert 1.4 <= optane.cost_ratio <= 2.5
    assert 5.1 <= optane.power_ratio <= 8.6

    # The gaps grow when moving from DRAM to Optane.
    assert optane.power_ratio > dram.power_ratio
    assert optane.cost_ratio > dram.cost_ratio

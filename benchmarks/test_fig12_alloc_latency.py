"""Figure 12: allocation/registration latency vs size.

Paper result: Clio's PA allocation takes under 20 us regardless of size
(it hands out pre-reserved pages); VA allocation is much faster than RDMA
MR registration (which pays per-page pinning), though both grow with
size.  ODP registration skips pinning but shifts the cost to 16.8 ms
faults at access time (Figure 6).
"""

from bench_common import GB, KB, MB, backend_params, make_cluster, mean, run_app

from repro.analysis.report import render_series
from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment

SIZES = [4 * KB, 1 * MB, 64 * MB, 1 * GB]
ROUNDS = 10


def clio_va_alloc_us() -> list[float]:
    """Slow-path VA allocation latency per size (fresh board per size)."""
    out = []
    for size in SIZES:
        cluster = make_cluster(mn_capacity=8 << 30)
        board = cluster.mn
        samples = []

        def experiment(size=size, samples=samples):
            for round_index in range(ROUNDS):
                start = cluster.env.now
                response = yield from board.slow_path.handle_alloc(
                    pid=round_index + 1, size=size)
                assert response.ok
                samples.append(cluster.env.now - start)
                yield from board.slow_path.handle_free(
                    pid=round_index + 1, va=response.va)

        run_app(cluster, experiment())
        out.append(mean(samples) / 1000)
    return out


def clio_pa_alloc_us() -> float:
    cluster = make_cluster(mn_capacity=8 << 30)
    board = cluster.mn
    samples = []

    def experiment():
        for _ in range(ROUNDS):
            start = cluster.env.now
            yield from board.slow_path.single_pa_alloc()
            samples.append(cluster.env.now - start)

    run_app(cluster, experiment())
    return mean(samples) / 1000


def rdma_mr_register_us(pinned: bool) -> list[float]:
    out = []
    for size in SIZES:
        env = Environment()
        node = RDMAMemoryNode(env, backend_params(dram_capacity=8 << 30))
        samples = []

        def experiment(size=size, samples=samples):
            for _ in range(ROUNDS):
                start = env.now
                region = yield from node.register_mr(size, pinned=pinned)
                samples.append(env.now - start)
                yield from node.deregister_mr(region)

        env.run(until=env.process(experiment()))
        out.append(mean(samples) / 1000)
    return out


def run_experiment():
    return {
        "clio_va": clio_va_alloc_us(),
        "clio_pa": clio_pa_alloc_us(),
        "mr_pinned": rdma_mr_register_us(pinned=True),
        "mr_odp": rdma_mr_register_us(pinned=False),
    }


def test_fig12_alloc_latency(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "Figure 12: allocation latency (us)", "size_B", SIZES,
        {"Clio VA alloc": [round(v, 1) for v in results["clio_va"]],
         "RDMA MR reg": [round(v, 1) for v in results["mr_pinned"]],
         "RDMA MR (ODP)": [round(v, 1) for v in results["mr_odp"]]}))
    print(f"Clio PA allocation: {results['clio_pa']:.1f} us "
          f"(paper: < 20 us, size-independent)")

    # PA allocation below 20us.
    assert results["clio_pa"] < 20.0

    # VA allocation far cheaper than pinned MR registration at size.
    assert results["clio_va"][-1] < results["mr_pinned"][-1] / 10

    # MR registration grows steeply with size (per-page pinning).
    assert results["mr_pinned"][-1] > results["mr_pinned"][0] * 50

    # ODP registration cheaper than pinned (cost deferred to faults).
    for odp, pinned in zip(results["mr_odp"], results["mr_pinned"]):
        assert odp <= pinned

    # VA allocation is roughly size-independent at these scales (the tree
    # search dominates, not the page count).
    assert results["clio_va"][-1] < results["clio_va"][0] * 20

"""Figure 13: VA-allocation retries vs physical memory utilization.

Paper result: the overflow-free allocator needs **zero** retries while
memory is below half utilized, and at most ~60 retries per allocation
even when memory is close to full (each retry ~0.5 ms on the ARM).
"""

from bench_common import MB, make_cluster, run_app

from repro.analysis.report import render_series

ALLOC_SIZES = [4 * MB, 16 * MB, 64 * MB]
BUCKETS = ["<25%", "25-50%", "50-75%", "75-90%", ">90%"]


def bucket_of(utilization: float) -> int:
    if utilization < 0.25:
        return 0
    if utilization < 0.50:
        return 1
    if utilization < 0.75:
        return 2
    if utilization < 0.90:
        return 3
    return 4


def retry_profile(alloc_size: int) -> tuple[list[float], list[int]]:
    """(mean retries per bucket, max retries per bucket) filling a board."""
    cluster = make_cluster(mn_capacity=2 << 30)
    board = cluster.mn
    table = board.page_table
    per_bucket: list[list[int]] = [[] for _ in BUCKETS]

    def experiment():
        pid = 0
        while True:
            utilization = table.entry_count / table.physical_pages
            if utilization >= 0.98:
                return
            response = yield from board.slow_path.handle_alloc(
                pid=pid % 16, size=alloc_size)
            if not response.ok:
                return
            per_bucket[bucket_of(utilization)].append(response.retries)
            pid += 1

    run_app(cluster, experiment())
    means = [sum(bucket) / len(bucket) if bucket else 0.0
             for bucket in per_bucket]
    maxima = [max(bucket) if bucket else 0 for bucket in per_bucket]
    return means, maxima


def run_experiment():
    results = {}
    for size in ALLOC_SIZES:
        results[size] = retry_profile(size)
    return results


def test_fig13_alloc_retry(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    mean_series = {f"{size // MB}MB mean": [round(v, 2) for v in results[size][0]]
                   for size in ALLOC_SIZES}
    max_series = {f"{size // MB}MB max": results[size][1]
                  for size in ALLOC_SIZES}
    print(render_series("Figure 13: alloc retries vs memory utilization",
                        "fill", BUCKETS, {**mean_series, **max_series}))

    for size in ALLOC_SIZES:
        means, maxima = results[size]
        # Essentially no retries below half utilization (the paper reports
        # exactly zero with its hash; rare singles are hash-dependent).
        assert maxima[0] == 0, f"{size}: retries below 25% fill"
        assert means[1] < 0.5, f"{size}: retries common below 50% fill"
        # Bounded retries near full (paper: at most ~60).
        assert maxima[-1] <= 100, f"{size}: unbounded retries near full"
        # Retries grow with fill level (monotone mean trend).
        assert means[-1] >= means[0]

    # Retries appear at some point for the smallest allocation size when
    # memory is nearly full — the trade-off actually exercised.
    small_maxima = results[ALLOC_SIZES[0]][1]
    assert any(value > 0 for value in small_maxima)

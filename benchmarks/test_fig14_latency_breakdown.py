"""Figure 14: latency breakdown at the CBoard, 4 B to 1 KB requests.

Paper result: DRAM access time (through the board's slow memory
controller) and wire transfer are the main contributors to read latency —
especially at large sizes — with the TLB-miss bucket fetch (one DRAM
read) being the other significant part.  The fixed pipeline stages are a
small, constant slice; CLib adds only ~250 ns.
"""

from bench_common import KB, MB, make_cluster, run_app

from repro.analysis.report import render_table
from repro.core.addr import AccessType

SIZES = [4, 64, 256, 1 * KB]
OPS = 40


def breakdown_for(size: int, write: bool, force_tlb_miss: bool) -> dict:
    """Per-component means, read from the pipeline's ``fastpath:*`` spans.

    The measured loop does not touch ``result.breakdown`` at all: the
    telemetry spans carry the same per-stage decomposition in their args,
    so the tracer is the benchmark's only data source.
    """
    cluster = make_cluster(mn_capacity=1 << 30)
    tracer = cluster.enable_tracing()
    board = cluster.mn
    tlb_entries = board.tlb.capacity
    page = board.page_spec.page_size
    payload = b"b" * size
    mark = 0

    def experiment():
        nonlocal mark
        response = yield from board.slow_path.handle_alloc(
            pid=1, size=(tlb_entries * 2 + 2) * page)
        va = response.va
        pages = tlb_entries * 2 if force_tlb_miss else 1
        for index in range(pages):
            yield from board.execute_local(1, AccessType.WRITE,
                                           va + index * page, 64, b"\0" * 64)
        mark = len(tracer.spans)          # ignore priming traffic
        for index in range(OPS):
            target = va + (index % pages) * page
            if write:
                yield from board.execute_local(
                    1, AccessType.WRITE, target, size, payload)
            else:
                yield from board.execute_local(
                    1, AccessType.READ, target, size)

    run_app(cluster, experiment())
    access = "write" if write else "read"
    spans = [span for span in tracer.spans[mark:]
             if span.name == f"fastpath:{access}"]
    assert len(spans) == OPS
    components = {"ingest": 0, "pipeline": 0, "tlbmiss": 0, "fault": 0,
                  "dram": 0}
    for span in spans:
        assert span.args["status"] == "ok"
        components["ingest"] += span.args["ingest_ns"]
        components["pipeline"] += span.args["pipeline_ns"]
        components["tlbmiss"] += span.args["tlb_miss_ns"]
        components["fault"] += span.args["fault_ns"]
        components["dram"] += span.args["dram_ns"]
        # The span brackets the whole pipeline pass: its duration is the
        # sum of the parts it reports.
        assert span.duration_ns == (
            span.args["ingest_ns"] + span.args["pipeline_ns"]
            + span.args["tlb_miss_ns"] + span.args["fault_ns"]
            + span.args["dram_ns"])
    return {name: value / OPS for name, value in components.items()}


def run_experiment():
    rows = {}
    for size in SIZES:
        rows[("read", size)] = breakdown_for(size, write=False,
                                             force_tlb_miss=False)
        rows[("write", size)] = breakdown_for(size, write=True,
                                              force_tlb_miss=False)
        rows[("read+miss", size)] = breakdown_for(size, write=False,
                                                  force_tlb_miss=True)
    return rows


def test_fig14_latency_breakdown(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = []
    for (kind, size), parts in rows.items():
        total = sum(parts.values())
        table.append([f"{kind} {size}B",
                      round(parts["ingest"], 1),
                      round(parts["pipeline"], 1),
                      round(parts["tlbmiss"], 1),
                      round(parts["dram"], 1),
                      round(total, 1)])
    print()
    print(render_table(
        "Figure 14: CBoard latency breakdown (ns, per request)",
        ["request", "ingest", "pipeline", "TLB miss", "DRAM", "total"],
        table))

    read_small = rows[("read", 4)]
    read_big = rows[("read", 1 * KB)]
    miss_small = rows[("read+miss", 4)]

    # DRAM dominates the on-board time, more so at large sizes.
    assert read_big["dram"] > read_big["pipeline"]
    assert read_big["dram"] > read_small["dram"]

    # The fixed pipeline slice is constant across sizes.
    assert read_small["pipeline"] == read_big["pipeline"]

    # A TLB miss adds one DRAM bucket fetch, nothing else.
    cluster_dram_ns = 300   # board controller fixed access latency
    assert abs(miss_small["tlbmiss"] - cluster_dram_ns) < 40
    assert rows[("read", 4)]["tlbmiss"] == 0

    # No faults in steady state.
    for parts in rows.values():
        assert parts["fault"] == 0

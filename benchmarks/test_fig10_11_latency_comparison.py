"""Figures 10 & 11: read/write latency vs request size across systems.

Paper result: Clio's latency is similar to HERD and close to native
RDMA (despite the FPGA's low clock).  Clover's write is worst (>= 2 RTTs
for consistency with a passive MN).  HERD-BF sits far above host-CPU HERD
(chip-to-chip crossing).  LegoOS is ~2x Clio at small sizes (software MN).
"""

from bench_common import (
    KB,
    MB,
    backend_params,
    clio_primed_thread,
    make_cluster,
    median,
    run_app,
)

from repro.analysis.report import render_series
from repro.baselines.clover import CloverStore
from repro.baselines.herd import HERDServer
from repro.baselines.legoos import LegoOSMemoryNode
from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment

SIZES = [16, 64, 256, 1 * KB]
OPS = 120


def clio_latencies(write: bool) -> list[float]:
    cluster = make_cluster(mn_capacity=1 << 30)
    thread, va = clio_primed_thread(cluster, region_bytes=4 * MB)
    out = []
    for size in SIZES:
        payload = b"c" * size
        samples = []

        def workload(size=size, samples=samples, payload=payload):
            for _ in range(OPS):
                start = cluster.env.now
                if write:
                    yield from thread.rwrite(va, payload)
                else:
                    yield from thread.rread(va, size)
                samples.append(cluster.env.now - start)

        run_app(cluster, workload())
        out.append(median(samples) / 1000)
    return out


def rdma_latencies(write: bool) -> list[float]:
    env = Environment()
    node = RDMAMemoryNode(env, backend_params(dram_capacity=1 << 30))
    out = []

    def experiment():
        region = yield from node.register_mr(4 * MB, pinned=True)
        qp = node.create_qp()
        for size in SIZES:
            payload = b"r" * size
            samples = []
            for _ in range(OPS):
                if write:
                    latency = yield from node.write(qp, region, 0, payload)
                else:
                    _, latency = yield from node.read(qp, region, 0, size)
                samples.append(latency)
            out.append(median(samples) / 1000)

    env.run(until=env.process(experiment()))
    return out


def clover_latencies(write: bool) -> list[float]:
    """Clover as PDM: reads 1 RTT, writes >= 2 RTTs (client-managed)."""
    env = Environment()
    store = CloverStore(env, backend_params(dram_capacity=1 << 30))
    out = []

    def experiment():
        yield from store.setup()
        for size in SIZES:
            payload = b"v" * size
            key = b"bench-key"
            yield from store.put(key, payload)
            samples = []
            for _ in range(OPS):
                if write:
                    latency = yield from store.put(key, payload)
                else:
                    _, latency = yield from store.get(key)
                samples.append(latency)
            out.append(median(samples) / 1000)

    env.run(until=env.process(experiment()))
    return out


def herd_latencies(write: bool, on_bluefield: bool) -> list[float]:
    env = Environment()
    server = HERDServer(env, backend_params(dram_capacity=1 << 30),
                        on_bluefield=on_bluefield)
    out = []

    def experiment():
        for size in SIZES:
            payload = b"h" * size
            samples = []
            for _ in range(OPS):
                if write:
                    latency = yield from server.raw_write(0, payload)
                else:
                    _, latency = yield from server.raw_read(0, size)
                samples.append(latency)
            out.append(median(samples) / 1000)

    env.run(until=env.process(experiment()))
    return out


def legoos_latencies(write: bool) -> list[float]:
    env = Environment()
    node = LegoOSMemoryNode(env, backend_params(dram_capacity=1 << 30))
    node.map_range(pid=1, va=0, size=4 * MB)
    out = []

    def experiment():
        for size in SIZES:
            payload = b"l" * size
            samples = []
            for _ in range(OPS):
                if write:
                    latency = yield from node.write(1, 0, payload)
                else:
                    _, latency = yield from node.read(1, 0, size)
                samples.append(latency)
            out.append(median(samples) / 1000)

    env.run(until=env.process(experiment()))
    return out


def run_experiment():
    systems = {}
    for write in (False, True):
        key = "write" if write else "read"
        systems[key] = {
            "Clio": clio_latencies(write),
            "RDMA": rdma_latencies(write),
            "Clover": clover_latencies(write),
            "HERD": herd_latencies(write, on_bluefield=False),
            "HERD-BF": herd_latencies(write, on_bluefield=True),
            "LegoOS": legoos_latencies(write),
        }
    return systems


def test_fig10_11_latency_comparison(benchmark):
    systems = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    for figure, key in (("Figure 10: read latency (us)", "read"),
                        ("Figure 11: write latency (us)", "write")):
        print(render_series(figure, "size_B", SIZES,
                            {name: [round(v, 2) for v in series]
                             for name, series in systems[key].items()}))

    reads, writes = systems["read"], systems["write"]

    # Clio similar to HERD, close to RDMA (within ~2x at small sizes).
    assert reads["Clio"][0] < reads["HERD"][0] * 1.5
    assert reads["Clio"][0] < reads["RDMA"][0] * 2.0

    # Clover write is the worst (>= 2 RTTs for its consistency).
    for index in range(len(SIZES)):
        for other in ("Clio", "RDMA", "HERD", "LegoOS"):
            assert writes["Clover"][index] > writes[other][index]
    assert writes["Clover"][0] > 1.4 * reads["Clover"][0]

    # HERD-BF far above host HERD (chip-to-chip crossing).
    for index in range(len(SIZES)):
        assert reads["HERD-BF"][index] > reads["HERD"][index] + 2.0

    # LegoOS roughly 2x Clio at small sizes (software MN handling).
    ratio = reads["LegoOS"][0] / reads["Clio"][0]
    assert 1.4 <= ratio <= 3.0

"""Figure 5: scalability with respect to PTEs and memory regions.

Paper result: RDMA degrades once the touched PTE working set exceeds the
RNIC's MTT cache (2^8 local cluster, 2^12 CloudLab) and degrades even
worse with MRs — failing outright beyond 2^18 MRs.  Clio shows exactly
two flat levels — TLB hit below the TLB size, TLB miss (one DRAM access)
above — and never fails, up to table sizes corresponding to 4 TB.
"""

from bench_common import (
    KB,
    MB,
    backend_params,
    make_cluster,
    mean,
    median,
    run_app,
)

import pytest

from repro.analysis.report import render_series
from repro.baselines.rdma import MRRegistrationError, RDMAMemoryNode
from repro.core.addr import AccessType
from repro.params import ClioParams
from repro.sim import Environment

PTE_COUNTS = [2 ** n for n in (2, 4, 6, 8, 10, 12, 14)]
MR_COUNTS = [2 ** n for n in (2, 4, 6, 8, 10, 12)]
OPS = 400


def clio_pte_sweep() -> list[float]:
    """Mean read latency (us) touching N distinct pages, via the board.

    Uses 4 KB pages over a 4 GB board: a million-entry page table, like
    mapping terabytes with huge pages — the table never overflows and
    lookups stay at one DRAM access.
    """
    results = []
    for pages in PTE_COUNTS:
        cluster = make_cluster(mn_capacity=4 << 30, page_size=4 * KB)
        board = cluster.mn
        latencies = []

        def experiment(pages=pages, latencies=latencies):
            response = yield from board.slow_path.handle_alloc(
                pid=1, size=pages * 4 * KB)
            assert response.ok
            va = response.va
            # First touch every page (faults happen here, off-measurement).
            for index in range(pages):
                yield from board.execute_local(
                    1, AccessType.WRITE, va + index * 4 * KB, 16, b"y" * 16)
            for index in range(OPS):
                target = va + (index % pages) * 4 * KB
                start = cluster.env.now
                result = yield from board.execute_local(
                    1, AccessType.READ, target, 16)
                assert result.status.value == "ok"
                latencies.append(cluster.env.now - start)

        run_app(cluster, experiment())
        results.append(mean(latencies) / 1000)
    return results


def rdma_pte_sweep(params: ClioParams | None = None) -> list[float]:
    """Median RDMA read latency (us) touching N distinct host pages."""
    results = []
    for pages in PTE_COUNTS:
        env = Environment()
        node = RDMAMemoryNode(
            env, backend_params(params, dram_capacity=1 << 30))
        latencies = []

        def experiment(pages=pages, latencies=latencies):
            region = yield from node.register_mr(pages * 4 * KB, pinned=True)
            qp = node.create_qp()
            # Warmup pass: compulsory misses happen here, not in the
            # measurement (the figure is about *capacity* behaviour).
            for index in range(pages):
                yield from node.read(qp, region, index * 4 * KB, 16)
            for index in range(OPS):
                offset = (index % pages) * 4 * KB
                _, latency = yield from node.read(qp, region, offset, 16)
                latencies.append(latency)

        env.run(until=env.process(experiment()))
        # Median: isolates the cache-miss mechanism from RDMA's heavy
        # tail jitter (which Figure 7 covers separately).
        results.append(median(latencies) / 1000)
    return results


def rdma_mr_sweep() -> tuple[list[float], int]:
    """Mean RDMA latency (us) across N MRs, plus the MR failure bound."""
    results = []
    for mrs in MR_COUNTS:
        env = Environment()
        node = RDMAMemoryNode(env, backend_params(dram_capacity=1 << 30))
        latencies = []

        def experiment(mrs=mrs, latencies=latencies):
            regions = []
            for _ in range(mrs):
                region = yield from node.register_mr(4 * KB, pinned=True)
                regions.append(region)
            qp = node.create_qp()
            for index in range(OPS):
                region = regions[index % len(regions)]
                _, latency = yield from node.read(qp, region, 0, 16)
                latencies.append(latency)

        env.run(until=env.process(experiment()))
        results.append(median(latencies) / 1000)
    return results, ClioParams.prototype().rdma.max_mrs


def run_experiment():
    return {
        "clio_pte": clio_pte_sweep(),
        "rdma_pte": rdma_pte_sweep(),
        "rdma_pte_cloudlab": rdma_pte_sweep(ClioParams.cloudlab()),
        "rdma_mr": rdma_mr_sweep()[0],
    }


def test_fig05_pte_mr_scalability(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    clio_pte = results["clio_pte"]
    rdma_pte = results["rdma_pte"]
    cloudlab = results["rdma_pte_cloudlab"]
    rdma_mr = results["rdma_mr"]
    print()
    print(render_series("Figure 5a: latency vs #PTEs touched (16B read)",
                        "pages", PTE_COUNTS,
                        {"Clio (us)": clio_pte, "RDMA (us)": rdma_pte,
                         "RDMA CloudLab": cloudlab}))
    print(render_series("Figure 5b: RDMA latency vs #MRs",
                        "MRs", MR_COUNTS, {"RDMA (us)": rdma_mr}))

    # Clio: two levels — all-TLB-hit below 64 pages, all-miss above —
    # and the miss level costs about one extra DRAM access (~0.3us).
    tlb = 64
    hit_level = [latency for pages, latency in zip(PTE_COUNTS, clio_pte)
                 if pages <= tlb // 2]
    miss_level = [latency for pages, latency in zip(PTE_COUNTS, clio_pte)
                  if pages > tlb * 2]
    assert max(hit_level) < min(miss_level)
    assert max(miss_level) - min(hit_level) < 1.0   # < 1us: one DRAM access
    # The miss level itself is flat: no degradation out to 2^14 pages.
    assert max(miss_level) <= min(miss_level) * 1.1

    # RDMA: flat while PTEs fit the 2^8 MTT cache, then climbs.
    idx_256 = PTE_COUNTS.index(256)
    assert rdma_pte[-1] > rdma_pte[idx_256 - 1] * 1.3

    # CloudLab (ConnectX-5): same cliff, but at 2^12 (bigger MTT cache) —
    # still flat at 2^10 where the local-cluster RNIC already degraded.
    idx_1024 = PTE_COUNTS.index(1024)
    assert cloudlab[idx_1024] <= cloudlab[0] * 1.15
    assert rdma_pte[idx_1024] > rdma_pte[0] * 1.3
    assert cloudlab[-1] > cloudlab[0] * 1.2   # degraded by 2^14

    # RDMA MR scalability is worse than PTE scalability at equal counts.
    idx = MR_COUNTS.index(4096)
    assert rdma_mr[idx] >= rdma_pte[PTE_COUNTS.index(4096)]


def test_fig05_rdma_fails_beyond_mr_limit(benchmark):
    """RDMA cannot run beyond 2^18 MRs at all; Clio has no such cliff."""
    def attempt():
        env = Environment()
        node = RDMAMemoryNode(env, backend_params(dram_capacity=1 << 30))
        node._mrs = dict.fromkeys(range(node.rdma.max_mrs))  # at the limit

        def register():
            yield from node.register_mr(4 * KB)

        with pytest.raises(MRRegistrationError):
            env.run(until=env.process(register()))
        return True

    assert benchmark.pedantic(attempt, rounds=1, iterations=1)

"""Figure 19: FPGA resource utilization.

Paper result: Clio's entire design uses 31% of logic and 31% of BRAM —
less than StRoM's RoCEv2 stack (39%/76%) or Tonic's selective-ack stack
(40%/48%), even though those are network stacks *only*.  Clio's own
components (VirtMem, NetStack, Go-Back-N) are a small slice; most of the
FPGA stays free for application offloads, and the design's on-chip state
fits ~1.5 MB.
"""

from repro.analysis.report import render_table
from repro.energy.fpga_util import (
    FPGA_UTILIZATION,
    clio_components,
    clio_total,
    offload_headroom_pct,
    onchip_memory_budget_bytes,
)


def run_experiment():
    return {
        "rows": FPGA_UTILIZATION,
        "headroom": offload_headroom_pct(),
        "onchip_bytes": onchip_memory_budget_bytes(),
    }


def test_fig19_fpga_utilization(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = [[row.system, row.memory_pct, row.logic_pct]
             for row in results["rows"]]
    print()
    print(render_table("Figure 19: FPGA utilization (%)",
                       ["System/Module", "Memory (BRAM)", "Logic (LUT)"],
                       table))
    print(f"Offload headroom: {results['headroom']:.0f}% of logic free")
    print(f"Clio-authored on-chip memory: "
          f"{results['onchip_bytes'] / (1 << 20):.2f} MB (paper: ~1.5 MB)")

    total = clio_total()
    prior = [row for row in results["rows"] if "Clio" not in row.system]

    # Clio's total sits below both prior hardware stacks on both axes.
    for row in prior:
        assert total.logic_pct < row.logic_pct
        assert total.memory_pct < row.memory_pct

    # Clio's own components are a small slice of its total (the rest is
    # vendor IP: PHY, MAC, DDR4, interconnect).
    own_logic = sum(row.logic_pct for row in clio_components())
    assert own_logic < total.logic_pct / 2

    # Most of the FPGA remains for offloads.
    assert results["headroom"] >= 65.0

    # The on-chip memory budget matches the paper's ~1.5 MB claim.
    assert results["onchip_bytes"] < 2 * (1 << 20)

"""Figure 8: end-to-end goodput vs number of client threads (1 KB requests).

Paper result (on the 10 Gbps testbed port): asynchronous APIs reach the
~9.4 Gbps line-rate goodput with very few threads; synchronous APIs also
reach line rate, just with more threads (each thread has one request in
flight, so concurrency must come from thread count).
"""

from bench_common import KB, MB, make_cluster, run_app

from repro.analysis.report import render_series
from repro.analysis.stats import rate_gbps

THREADS = [1, 2, 4, 8, 16]
REQUEST = 1 * KB
OPS_PER_THREAD = 150
ASYNC_WINDOW = 16


def goodput(num_threads: int, write: bool, asynchronous: bool) -> float:
    # 64 KB pages: async writes stride across pages, so CLib's page-
    # granularity WAW tracking doesn't serialize them (with 4 MB pages an
    # 8 MB buffer is two pages — every async write would falsely depend
    # on the previous one, the paper's stated false-dependency cost).
    cluster = make_cluster(num_cns=2, mn_capacity=2 << 30,
                           page_size=64 * KB)
    env = cluster.env
    ready = []

    def setup_all():
        for index in range(num_threads):
            thread = cluster.cn(index % 2).process("mn0").thread()
            va = yield from thread.ralloc(8 * MB)
            # Pre-touch the pages the thread will use.
            for offset in range(0, 8 * MB, cluster.mn.page_spec.page_size):
                yield from thread.rwrite(va + offset, b"\0" * 64)
            ready.append((thread, va))

    run_app(cluster, setup_all())
    payload = b"g" * REQUEST
    started = env.now

    def sync_worker(thread, va):
        for index in range(OPS_PER_THREAD):
            offset = (index * REQUEST) % (4 * MB)
            if write:
                yield from thread.rwrite(va + offset, payload)
            else:
                yield from thread.rread(va + offset, REQUEST)

    def async_worker(thread, va):
        outstanding = []
        page = cluster.mn.page_spec.page_size
        for index in range(OPS_PER_THREAD):
            # Stride one page per op: no same-page dependencies in flight.
            offset = (index * page) % (8 * MB - REQUEST) if write else (
                (index * REQUEST) % (4 * MB))
            if write:
                handle = yield from thread.rwrite_async(va + offset, payload)
            else:
                handle = yield from thread.rread_async(va + offset, REQUEST)
            outstanding.append(handle)
            if len(outstanding) >= ASYNC_WINDOW:
                yield from thread.rpoll([outstanding.pop(0)])
        yield from thread.rpoll(outstanding)

    worker = async_worker if asynchronous else sync_worker
    procs = [env.process(worker(thread, va)) for thread, va in ready]
    cluster.run(until=env.all_of(procs))
    total_bytes = num_threads * OPS_PER_THREAD * REQUEST
    return rate_gbps(total_bytes, env.now - started)


def run_experiment():
    return {
        "read_sync": [goodput(n, write=False, asynchronous=False)
                      for n in THREADS],
        "write_sync": [goodput(n, write=True, asynchronous=False)
                       for n in THREADS],
        "read_async": [goodput(n, write=False, asynchronous=True)
                       for n in THREADS],
        "write_async": [goodput(n, write=True, asynchronous=True)
                        for n in THREADS],
    }


def test_fig08_goodput(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "Figure 8: end-to-end goodput (Gbps), 1KB requests, 10Gbps port",
        "threads", THREADS,
        {name: [round(v, 2) for v in series]
         for name, series in results.items()}))

    line_rate_goodput = 10.0 * REQUEST / (REQUEST + 64)   # header overhead

    # Async reaches (near) line rate with very few threads.
    assert results["read_async"][0] > 0.9 * line_rate_goodput
    assert results["write_async"][0] > 0.85 * line_rate_goodput

    # Sync starts far below async at one thread (one op in flight) but
    # also reaches line rate once enough threads provide concurrency.
    assert results["write_sync"][0] < 0.5 * results["write_async"][0]
    assert results["write_sync"][-1] > 0.9 * line_rate_goodput
    assert results["read_sync"][-1] > 0.9 * line_rate_goodput

    # Under full load the fabric stays efficient (AIMD convergence loss
    # across competing CNs stays bounded — no congestion collapse).
    for series in results.values():
        assert min(series[1:]) > 0.45 * line_rate_goodput
        assert series[-1] > 0.8 * line_rate_goodput

"""Figure 6: 16B access latency under TLB hit / miss / page fault / MR miss.

Paper result: RDMA degrades sharply with misses, and its ODP page fault
costs 16.8 ms — 14100x a no-fault access.  Clio's TLB miss adds only one
DRAM access and its hardware page fault adds almost nothing (bounded
3-cycle handling off a pre-reserved page).  The ASIC projection brings
Clio's read below RDMA.
"""

from bench_common import KB, MB, backend_params, make_cluster, mean, run_app

from repro.analysis.report import render_table
from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment

OPS = 250


def clio_states(params=None) -> dict[str, float]:
    """End-to-end 16B read/write latency (us) per translation state."""
    results = {}
    for write in (False, True):
        cluster = make_cluster(mn_capacity=8 << 30, params=params)
        thread = cluster.cn(0).process("mn0").thread()
        board = cluster.mn
        page = board.page_spec.page_size
        tlb_entries = board.tlb.capacity
        samples = {"hit": [], "miss": [], "fault": []}

        def app():
            region = yield from thread.ralloc((tlb_entries * 4 + OPS) * page)

            def one(offset):
                start = cluster.env.now
                if write:
                    yield from thread.rwrite(region + offset, b"z" * 16)
                else:
                    yield from thread.rread(region + offset, 16)
                return cluster.env.now - start

            # Prime pages 0..2*tlb so hit/miss states have present PTEs.
            for index in range(tlb_entries * 2):
                yield from thread.rwrite(region + index * page, b"p" * 16)

            for op in range(OPS):
                # TLB hit: re-access the same page back to back.
                yield from one(0)
                samples["hit"].append((yield from one(0)))
                # TLB miss: cycle a working set 2x the TLB, so every
                # access misses but the page is present.
                victim = (op % tlb_entries) + tlb_entries
                samples["miss"].append((yield from one(victim * page)))
                # Page fault: first touch of a never-accessed page.
                fresh = tlb_entries * 4 + op
                samples["fault"].append((yield from one(fresh * page)))

        run_app(cluster, app())
        op_name = "write" if write else "read"
        for state, values in samples.items():
            results[f"{op_name}/{state}"] = mean(values) / 1000
    return results


def rdma_states() -> dict[str, float]:
    """RDMA 16B latency (us): PTE hit / PTE+MR miss / ODP page fault."""
    env = Environment()
    node = RDMAMemoryNode(env, backend_params(dram_capacity=2 << 30))
    results = {}
    samples = {"hit": [], "miss": [], "fault": []}

    def app():
        pinned = yield from node.register_mr(256 * MB, pinned=True)
        odp = yield from node.register_mr(256 * MB, pinned=False)
        decoys = []
        for _ in range(8):
            decoys.append((yield from node.register_mr(4 * KB, pinned=True)))
        qp = node.create_qp()

        for op in range(OPS):
            # Hit: same page, hot caches.
            _, latency = yield from node.read(qp, pinned, 0, 16)
            _, latency = yield from node.read(qp, pinned, 0, 16)
            samples["hit"].append(latency)
            # Miss: thrash the PTE cache with a huge working set, and the
            # MR cache by touching many decoy MRs in between.
            for decoy in decoys:
                yield from node.read(qp, decoy, 0, 16)
            far = (op % 512) * 512 * KB
            _, latency = yield from node.read(qp, pinned, far, 16)
            samples["miss"].append(latency)
            # Page fault: first write into a fresh ODP page.
            latency = yield from node.write(qp, odp, op * 4 * KB, b"z" * 16)
            samples["fault"].append(latency)

    env.run(until=env.process(app()))
    for state, values in samples.items():
        results[f"read/{state}" if state != "fault" else "write/fault"] = (
            mean(values) / 1000)
    return results


def run_experiment():
    return {
        "clio": clio_states(),
        "clio_asic": clio_states(params=ClioParams.asic_projection()),
        "rdma": rdma_states(),
    }


def test_fig06_latency_variation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    clio, asic, rdma = results["clio"], results["clio_asic"], results["rdma"]
    rows = [
        ["Clio read", clio["read/hit"], clio["read/miss"], clio["read/fault"]],
        ["Clio write", clio["write/hit"], clio["write/miss"],
         clio["write/fault"]],
        ["Clio(ASIC) read", asic["read/hit"], asic["read/miss"],
         asic["read/fault"]],
        ["RDMA read", rdma["read/hit"], rdma["read/miss"], "-"],
        ["RDMA write fault", "-", "-", rdma["write/fault"]],
    ]
    print()
    print(render_table("Figure 6: 16B latency by translation state (us)",
                       ["system", "TLB/PTE hit", "miss", "page fault"],
                       rows))

    # Clio: TLB miss adds roughly one DRAM access (well under 1us).
    assert clio["read/miss"] - clio["read/hit"] < 1.0
    # Clio: page fault costs barely more than a TLB miss (bounded fault).
    assert clio["read/fault"] < clio["read/miss"] * 1.25
    assert clio["write/fault"] < clio["write/miss"] * 1.25

    # RDMA: ODP fault is catastrophically slower (paper: 16.8 ms).
    assert rdma["write/fault"] > 10_000            # > 10 ms in us units
    assert rdma["write/fault"] > clio["write/fault"] * 1000

    # ASIC projection beats the FPGA prototype and the RDMA read.
    assert asic["read/hit"] < clio["read/hit"]
    assert asic["read/hit"] < rdma["read/hit"]

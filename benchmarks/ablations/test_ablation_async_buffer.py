"""Ablation: page-fault latency with vs without the async free-PA buffer.

Design claim (section 4.3): pre-reserving physical pages into the async
buffer keeps the hardware fault path bounded; without it every fault
would wait for a full ARM-side PA allocation (~15 us) plus the
FPGA<->ARM handoff — orders of magnitude above the 3-cycle budget.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from bench_common import MB, make_cluster, mean, run_app

from repro.analysis.report import render_table
from repro.core.addr import AccessType

FAULTS = 30


def fault_latency_us(with_buffer: bool) -> float:
    cluster = make_cluster(mn_capacity=2 << 30)
    board = cluster.mn
    page = board.page_spec.page_size
    if not with_buffer:
        # Drain the pre-reserved stock and stop the refill: every fault
        # now waits for an on-demand ARM allocation.
        while len(board.async_buffer._store.items):
            ppn = board.async_buffer._store.items.popleft()
            board.async_buffer.allocator._reserved -= 1
            board.async_buffer.allocator.free(ppn)
        board.async_buffer.refill_ns = board.params.cboard.arm_pa_alloc_ns
    samples = []

    def experiment():
        response = yield from board.slow_path.handle_alloc(
            pid=1, size=(FAULTS + 1) * page)
        va = response.va
        for index in range(FAULTS):
            start = cluster.env.now
            result = yield from board.execute_local(
                1, AccessType.WRITE, va + index * page, 16, b"f" * 16)
            assert result.status.value == "ok"
            assert result.faulted
            samples.append(cluster.env.now - start)

    run_app(cluster, experiment())
    return mean(samples) / 1000


def run_experiment():
    return {
        "with_buffer": fault_latency_us(with_buffer=True),
        "without_buffer": fault_latency_us(with_buffer=False),
    }


def test_ablation_async_buffer(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_table(
        "Ablation: first-touch fault latency (us)",
        ["configuration", "mean fault latency"],
        [["async buffer (Clio)", results["with_buffer"]],
         ["on-demand PA alloc", results["without_buffer"]]]))

    # The buffer keeps faults near the no-fault cost; removing it costs
    # roughly the ARM PA-allocation time per fault.
    assert results["without_buffer"] > results["with_buffer"] * 5
    assert results["with_buffer"] < 2.0      # us, on-board

"""Ablation: page size vs page-table footprint and allocation behaviour.

The paper defaults to 4 MB huge pages: the flat hash table then costs
~0.4% of physical memory, and big allocations touch few buckets.  Smaller
pages multiply PT entries (footprint, allocation-time hash work); larger
pages waste memory for small allocations.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from bench_common import GB, KB, MB, make_cluster, run_app

from repro.analysis.report import render_series

PAGE_SIZES = [64 * KB, 2 * MB, 4 * MB, 16 * MB]
CAPACITY = 2 * GB
ALLOC = 64 * MB


def profile(page_size: int) -> dict:
    cluster = make_cluster(mn_capacity=CAPACITY, page_size=page_size)
    board = cluster.mn
    table = board.page_table
    footprint_pct = 100.0 * table.footprint_bytes() / CAPACITY
    stats = {}

    def experiment():
        start = cluster.env.now
        response = yield from board.slow_path.handle_alloc(pid=1, size=ALLOC)
        assert response.ok
        stats["alloc_us"] = (cluster.env.now - start) / 1000
        stats["retries"] = response.retries
        # Internal fragmentation for a 100 KB object.
        small = yield from board.slow_path.handle_alloc(pid=2, size=100 * KB)
        stats["small_alloc_bytes"] = small.size

    run_app(cluster, experiment())
    return {
        "footprint_pct": footprint_pct,
        "pte_count_64MB": ALLOC // page_size,
        "waste_100KB": stats["small_alloc_bytes"] - 100 * KB,
        "alloc_us": stats["alloc_us"],
        "retries": stats["retries"],
    }


def run_experiment():
    return {size: profile(size) for size in PAGE_SIZES}


def test_ablation_page_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "Ablation: page size trade-offs (2GB board, 64MB allocation)",
        "page", [f"{size // KB}KB" for size in PAGE_SIZES],
        {"PT % of mem": [round(results[s]["footprint_pct"], 3)
                         for s in PAGE_SIZES],
         "PTEs/64MB": [results[s]["pte_count_64MB"] for s in PAGE_SIZES],
         "waste@100KB (KB)": [results[s]["waste_100KB"] // KB
                              for s in PAGE_SIZES],
         "alloc us": [round(results[s]["alloc_us"], 1)
                      for s in PAGE_SIZES]}))

    # Paper's 0.4% claim at the default page size.
    assert results[4 * MB]["footprint_pct"] < 0.5

    # Footprint shrinks as pages grow; waste grows as pages grow.
    footprints = [results[s]["footprint_pct"] for s in PAGE_SIZES]
    wastes = [results[s]["waste_100KB"] for s in PAGE_SIZES]
    assert footprints == sorted(footprints, reverse=True)
    assert wastes == sorted(wastes)

    # Tiny pages make the PT footprint an order of magnitude bigger.
    assert results[64 * KB]["footprint_pct"] > \
        10 * results[4 * MB]["footprint_pct"]

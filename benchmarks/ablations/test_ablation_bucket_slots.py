"""Ablation: hash-bucket slots (K) and overprovision factor vs retries.

Design choice (section 4.2): the table has 2x extra slots and K slots per
bucket so the allocation-time overflow check rarely retries.  This sweep
shows both knobs trading DRAM-fetch width / table size against retries.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from dataclasses import replace

from bench_common import MB, make_cluster, run_app

from repro.analysis.report import render_table
from repro.params import ClioParams

FILL_TARGET = 0.9


def retries_filling(slots: int, overprovision: float) -> tuple[float, int]:
    base = ClioParams.prototype()
    params = replace(base, cboard=replace(
        base.cboard, page_table_slots_per_bucket=slots,
        page_table_overprovision=overprovision))
    cluster = make_cluster(mn_capacity=1 << 30, params=params)
    board = cluster.mn
    table = board.page_table
    retries = []

    def experiment():
        pid = 0
        while table.entry_count / table.physical_pages < FILL_TARGET:
            response = yield from board.slow_path.handle_alloc(
                pid=pid % 8, size=8 * MB)
            if not response.ok:
                return
            retries.append(response.retries)
            pid += 1

    run_app(cluster, experiment())
    return sum(retries) / len(retries), max(retries)


def run_experiment():
    configs = [(2, 1.0), (4, 1.0), (4, 2.0), (8, 2.0), (8, 3.0)]
    return {config: retries_filling(*config) for config in configs}


def test_ablation_bucket_slots(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[f"K={slots} x{over:.0f}", round(mean_r, 3), max_r]
            for (slots, over), (mean_r, max_r) in results.items()]
    print()
    print(render_table(
        "Ablation: bucket slots / overprovision vs alloc retries (90% fill)",
        ["config", "mean retries", "max retries"], rows))

    # More slots or more overprovision never increases retries.
    assert results[(4, 2.0)][0] <= results[(4, 1.0)][0]
    assert results[(8, 2.0)][0] <= results[(4, 2.0)][0]
    assert results[(8, 3.0)][0] <= results[(8, 2.0)][0]

    # The paper's default (K=8, 2x) keeps retries near zero at 90% fill.
    assert results[(8, 2.0)][0] < 1.0

    # A tight table (K=2, 1x) visibly retries.
    assert results[(2, 1.0)][0] > results[(8, 2.0)][0]

"""Ablation: congestion-control algorithm comparison (R7).

R7 motivates keeping transport logic in CN software so algorithms can be
swapped.  Two sides of the comparison:

* **Utilization**: a deep asynchronous read stream from one CN over the
  *target* CBoard fabric (100 Gbps ports, the paper's real-CBoard goal),
  where the bandwidth-delay product is ~30 outstanding 1 KB requests.
  The adaptive algorithms (Swift AIMD, TIMELY gradient) grow the window
  past its initial 8 and fill the pipe; the static window stays at 8 and
  caps goodput at roughly 8 x size / RTT.
* **Safety** is covered by the incast ablation
  (test_ablation_congestion.py): without adaptation, heavy incast
  becomes a retry storm.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from dataclasses import replace

from bench_common import KB, MB, make_cluster, run_app

from repro.analysis.report import render_table
from repro.analysis.stats import rate_gbps
from repro.params import ClioParams
from repro.transport.congestion import CC_ALGORITHMS

OPS = 400
SIZE = 1 * KB
WINDOW = 48


def run_with(algorithm: str) -> dict:
    from repro.params import GBPS
    base = ClioParams.prototype()
    network = replace(base.network, mn_port_rate_bps=100 * GBPS,
                      cn_nic_rate_bps=100 * GBPS,
                      switch_rate_bps=100 * GBPS)
    cboard = replace(base.cboard, port_rate_bps=100 * GBPS)
    params = replace(base, network=network, cboard=cboard,
                     clib=replace(base.clib, cc_algorithm=algorithm))
    cluster = make_cluster(num_cns=1, mn_capacity=2 << 30, params=params,
                           page_size=64 * KB)
    thread = cluster.cn(0).process("mn0").thread()
    holder = {}

    def setup():
        va = yield from thread.ralloc(8 * MB)
        for offset in range(0, 8 * MB, 64 * KB):
            yield from thread.rwrite(va + offset, b"\0" * 64)
        holder["va"] = va

    run_app(cluster, setup())
    va = holder["va"]
    started = cluster.env.now

    payload = b"c" * SIZE

    def workload():
        # Async writes striding one 64KB page per op: no false deps, and
        # no read-DMA ceiling (Figure 9) hiding the window effect.
        outstanding = []
        page = 64 * KB
        for index in range(OPS):
            offset = (index * page) % (8 * MB - SIZE)
            handle = yield from thread.rwrite_async(va + offset, payload)
            outstanding.append(handle)
            if len(outstanding) >= WINDOW:
                yield from thread.rpoll([outstanding.pop(0)])
        yield from thread.rpoll(outstanding)

    run_app(cluster, workload())
    controller = cluster.cn(0).transport.congestion("mn0")
    return {
        "goodput_gbps": rate_gbps(OPS * SIZE, cluster.env.now - started),
        "final_cwnd": controller.cwnd,
        "retries": cluster.cn(0).transport.total_retries,
    }


def run_experiment():
    return {name: run_with(name) for name in sorted(CC_ALGORITHMS)}


def test_ablation_cc_algorithms(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[name, round(data["goodput_gbps"], 2),
             round(data["final_cwnd"], 1), data["retries"]]
            for name, data in results.items()]
    print()
    print(render_table(
        "Ablation: CC algorithm, deep async 1KB write stream (100Gbps fabric)",
        ["algorithm", "goodput Gbps", "final cwnd", "retries"], rows))

    static = results["static"]
    swift = results["swift"]
    timely = results["timely"]

    # The static window never grows...
    assert static["final_cwnd"] == 8.0
    # ...while the adaptive algorithms open up well past it...
    assert swift["final_cwnd"] > 12
    assert timely["final_cwnd"] > 12
    # ...and convert that into materially higher goodput.
    assert swift["goodput_gbps"] > static["goodput_gbps"] * 1.5
    assert timely["goodput_gbps"] > static["goodput_gbps"] * 1.5

    # Nobody triggers retries at this load.
    for data in results.values():
        assert data["retries"] == 0

"""Ablation: congestion/incast control on vs off under MN incast.

Design claim (section 4.4): CN-side delay-AIMD plus the incast window
keep the MN's downlink queue bounded, so tail latency stays controlled
when many clients blast one board.  Disabling the control (huge static
windows) lets the queue grow, inflating tails and triggering retries.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from dataclasses import replace

from bench_common import KB, MB, make_cluster, p99, median, run_app

from repro.analysis.report import render_table
from repro.params import ClioParams

CLIENTS = 12
OPS_PER_CLIENT = 60
SIZE = 4 * KB


def run_incast(controlled: bool) -> dict:
    base = ClioParams.prototype()
    if not controlled:
        clib = replace(base.clib, cwnd_init=4096.0, cwnd_max=4096.0,
                       cwnd_min=4096.0, iwnd_bytes=1 << 30,
                       target_rtt_ns=10 ** 9)
        base = replace(base, clib=clib)
    cluster = make_cluster(num_cns=4, mn_capacity=2 << 30, params=base,
                           page_size=64 * KB)
    ready = []

    def setup_all():
        for index in range(CLIENTS):
            thread = cluster.cn(index % 4).process("mn0").thread()
            va = yield from thread.ralloc(8 * MB)
            for offset in range(0, 8 * MB, 64 * KB):
                yield from thread.rwrite(va + offset, b"\0" * 64)
            ready.append((thread, va))

    run_app(cluster, setup_all())
    latencies = []
    failures = [0]

    def client(thread, va):
        # Async burst: every client keeps a deep window of 4KB writes in
        # flight — the incast pattern the CN-side control exists for.
        from repro.transport.clib_transport import RequestFailedError
        outstanding = []
        for index in range(OPS_PER_CLIENT):
            offset = (index * 64 * KB) % (8 * MB - SIZE)
            start = cluster.env.now
            handle = yield from thread.rwrite_async(va + offset, b"i" * SIZE)
            outstanding.append((start, handle))
            if len(outstanding) >= 16:
                first_start, first = outstanding.pop(0)
                try:
                    yield from thread.rpoll([first])
                    latencies.append(cluster.env.now - first_start)
                except RequestFailedError:
                    failures[0] += 1
        for start, handle in outstanding:
            try:
                yield from thread.rpoll([handle])
                latencies.append(cluster.env.now - start)
            except RequestFailedError:
                failures[0] += 1

    procs = [cluster.env.process(client(thread, va))
             for thread, va in ready]
    cluster.run(until=cluster.env.all_of(procs))
    transports = [cluster.cn(index).transport for index in range(4)]
    return {
        "median_us": median(latencies) / 1000,
        "p99_us": p99(latencies) / 1000,
        "retries": sum(t.total_retries for t in transports),
        "failures": failures[0],
    }


def run_experiment():
    return {
        "controlled": run_incast(controlled=True),
        "uncontrolled": run_incast(controlled=False),
    }


def test_ablation_congestion(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    on, off = results["controlled"], results["uncontrolled"]
    print()
    print(render_table(
        "Ablation: 12-client async 4KB-write incast to one MN",
        ["config", "median us", "p99 us", "retries", "failures"],
        [["congestion control ON", on["median_us"], on["p99_us"],
          on["retries"], on["failures"]],
         ["congestion control OFF", off["median_us"], off["p99_us"],
          off["retries"], off["failures"]]]))

    # Without control, the unbounded queue triggers a retry storm...
    assert off["retries"] > on["retries"] * 5 + 10

    # ...and most requests exhaust their retries and fail outright (the
    # surviving ops' latency is survivorship-biased and meaningless).
    assert off["failures"] > CLIENTS * OPS_PER_CLIENT // 2

    # With control every operation completes; latency reflects honest
    # closed-loop queueing at CLib rather than network collapse.
    assert on["failures"] == 0

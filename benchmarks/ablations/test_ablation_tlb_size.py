"""Ablation: TLB size vs steady-state latency.

The paper notes ("a real CBoard could use a larger TLB if optimal
performance is desired"): for a working set of W pages, latency steps
down by exactly one DRAM access once the TLB covers W.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from dataclasses import replace

from bench_common import make_cluster, mean, run_app

from repro.analysis.report import render_series
from repro.core.addr import AccessType
from repro.params import ClioParams

TLB_SIZES = [16, 64, 256, 1024]
WORKING_SET_PAGES = 128
OPS = 256


def latency_with_tlb(entries: int) -> float:
    base = ClioParams.prototype()
    params = replace(base, cboard=replace(base.cboard, tlb_entries=entries))
    cluster = make_cluster(mn_capacity=2 << 30, params=params)
    board = cluster.mn
    page = board.page_spec.page_size
    samples = []

    def experiment():
        response = yield from board.slow_path.handle_alloc(
            pid=1, size=WORKING_SET_PAGES * page)
        va = response.va
        for index in range(WORKING_SET_PAGES):
            yield from board.execute_local(1, AccessType.WRITE,
                                           va + index * page, 16, b"w" * 16)
        for index in range(OPS):
            target = va + (index % WORKING_SET_PAGES) * page
            start = cluster.env.now
            yield from board.execute_local(1, AccessType.READ, target, 16)
            samples.append(cluster.env.now - start)

    run_app(cluster, experiment())
    return mean(samples) / 1000


def run_experiment():
    return [latency_with_tlb(entries) for entries in TLB_SIZES]


def test_ablation_tlb_size(benchmark):
    latencies = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        f"Ablation: TLB entries vs latency ({WORKING_SET_PAGES}-page set)",
        "TLB entries", TLB_SIZES,
        {"latency (us)": [round(v, 3) for v in latencies]}))

    # Latency is monotone non-increasing in TLB size...
    for smaller, larger in zip(latencies, latencies[1:]):
        assert larger <= smaller + 1e-9
    # ...with a knee once the TLB covers the working set.
    covered = [latency for size, latency in zip(TLB_SIZES, latencies)
               if size >= WORKING_SET_PAGES]
    thrashed = [latency for size, latency in zip(TLB_SIZES, latencies)
                if size < WORKING_SET_PAGES]
    assert min(thrashed) - max(covered) > 0.2   # ~ one DRAM access (0.3us)

"""Ablation: dependency-tracking granularity (page vs byte).

Paper section 4.5: CLib tracks dependencies at page granularity to keep
metadata tiny, accepting false dependencies ("two accesses to the same
page but different addresses"); finer tracking is stated future work.
This ablation quantifies the trade-off: async writes striding *within*
one 4 MB page serialize completely under page tracking and overlap fully
under byte tracking.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from bench_common import KB, MB, make_cluster, run_app

from repro.analysis.report import render_table
from repro.analysis.stats import rate_gbps

OPS = 64
SIZE = 1 * KB


def goodput_with(granularity: str) -> float:
    cluster = make_cluster(mn_capacity=1 << 30)
    thread = cluster.cn(0).process("mn0").thread(
        ordering_granularity=granularity)
    holder = {}

    def setup():
        va = yield from thread.ralloc(4 * MB)
        yield from thread.rwrite(va, b"\0" * 64)   # fault the page in
        holder["va"] = va

    run_app(cluster, setup())
    va = holder["va"]
    started = cluster.env.now

    def workload():
        handles = []
        for index in range(OPS):
            # Disjoint 1KB slots inside ONE page: false deps under page
            # tracking, independent under byte tracking.
            handle = yield from thread.rwrite_async(
                va + index * SIZE, b"d" * SIZE)
            handles.append(handle)
        yield from thread.rpoll(handles)

    run_app(cluster, workload())
    return rate_gbps(OPS * SIZE, cluster.env.now - started)


def run_experiment():
    return {
        "page": goodput_with("page"),
        "byte": goodput_with("byte"),
    }


def test_ablation_dependency_granularity(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_table(
        "Ablation: async same-page disjoint writes, tracking granularity",
        ["granularity", "goodput (Gbps)"],
        [["page (paper default)", round(results["page"], 2)],
         ["byte (future work)", round(results["byte"], 2)]]))

    # Byte tracking removes the false dependencies: big win on this
    # adversarial pattern.
    assert results["byte"] > results["page"] * 2

    # And it approaches the 10 Gbps port's goodput ceiling.
    assert results["byte"] > 7.0

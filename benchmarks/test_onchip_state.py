"""Headline claim (section 1): "each MN could support TBs of memory and
thousands of application processes with only 1.5 MB on-chip memory."

This bench sweeps client count and hosted memory and reports the on-chip
(SRAM/BRAM) bytes each MN design needs: Clio's transportless, indirection-
free design stays constant; an RNIC's caches must track the working set;
a conventional Go-Back-N MN pays per-connection buffers.
"""

from bench_common import GB, KB, MB

from repro.analysis.report import render_series
from repro.core.state_accounting import (
    clio_onchip_state,
    gbn_onchip_state,
    rdma_onchip_state,
)

CLIENT_COUNTS = [16, 64, 256, 1024, 4096]
HOSTED = 1 << 40   # 1 TB


def run_experiment():
    rows = {"clio": [], "rdma": [], "gbn": []}
    for clients in CLIENT_COUNTS:
        rows["clio"].append(
            clio_onchip_state(clients=clients,
                              hosted_bytes=HOSTED).total_bytes)
        rows["rdma"].append(
            rdma_onchip_state(clients=clients,
                              hosted_bytes=HOSTED).total_bytes)
        rows["gbn"].append(gbn_onchip_state(connections=clients).total_bytes)
    return rows


def test_onchip_state(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "On-chip state vs clients (1TB hosted): KB per MN design",
        "clients", CLIENT_COUNTS,
        {name: [round(total / KB, 1) for total in series]
         for name, series in rows.items()}))

    clio, rdma, gbn = rows["clio"], rows["rdma"], rows["gbn"]

    # Clio: constant, and within the paper's ~1.5 MB budget.
    assert len(set(clio)) == 1
    assert clio[0] < int(1.5 * MB)

    # The alternatives grow with clients/connections...
    assert rdma[-1] > rdma[0]
    assert gbn[-1] == gbn[0] * (CLIENT_COUNTS[-1] // CLIENT_COUNTS[0])

    # ...and at thousands of clients, Clio's footprint is a small
    # fraction of either.
    assert clio[-1] < rdma[-1] / 10
    assert clio[-1] < gbn[-1] / 10

"""Figure 18: energy consumed running the YCSB workloads.

Paper method: total active cycles x per-unit Watts (DRAM and NICs
omitted), split into MN and CN shares.  Paper result: Clover — despite a
zero-processing MN — lands slightly *above* Clio (its CNs burn extra
cycles managing memory); HERD consumes 1.6-3x more than Clio (host CPU at
the MN); HERD-BF consumes the most of all, because its low-power ARM is
so slow that total runtime balloons.
"""

from bench_common import GB, MB, backend_params, make_cluster, run_app

from repro.analysis.report import render_table
from repro.apps.kv_store import ClioKV, register_kv_offload
from repro.baselines.clover import CloverStore
from repro.baselines.herd import HERDServer
from repro.energy.power import default_profiles
from repro.params import ClioParams
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload

NUM_KEYS = 600
OPS = 800
VALUE = 1024
THREADS = 16
#: Busy client cores across the two CNs (8 threads/CN share 4 cores/CN).
CN_CORES = 8


def workload_streams(tag: str):
    rng = RandomStream(31, tag)
    shared = YCSBWorkload(YCSB_WORKLOADS["B"], rng.fork("build"),
                          num_keys=NUM_KEYS, value_size=VALUE)
    streams = [YCSBWorkload(YCSB_WORKLOADS["B"], rng.fork(f"t{index}"),
                            num_keys=NUM_KEYS, value_size=VALUE,
                            zipf_table=shared.zipf)
               for index in range(THREADS)]
    return shared, streams


def clio_runtime_ns() -> int:
    shared, streams = workload_streams("clio")
    cluster = make_cluster(num_cns=2, mn_capacity=2 * GB)
    register_kv_offload(cluster.mn.extend_path, buckets=4 * NUM_KEYS,
                        capacity=256 * MB)
    stores = [ClioKV(cluster.cn(index % 2).process("mn0").thread())
              for index in range(THREADS)]

    def load():
        for key, value in shared.load_phase():
            yield from stores[0].put(key, value)

    run_app(cluster, load())
    started = cluster.env.now
    durations = []

    def client(store, stream):
        for op in stream.operations(OPS // THREADS):
            if op[0] == "get":
                yield from store.get(op[1])
            else:
                yield from store.put(op[1], op[2])
        durations.append(cluster.env.now - started)

    procs = [cluster.env.process(client(store, stream))
             for store, stream in zip(stores, streams)]
    cluster.run(until=cluster.env.all_of(procs))
    # Mean per-thread active time: the device-busy proxy the energy
    # model multiplies by Watts (robust to one tail-spiked straggler).
    return sum(durations) // len(durations)


def baseline_runtime_ns(factory) -> int:
    shared, streams = workload_streams("baseline")
    env = Environment()
    store = factory(env)
    if isinstance(store, CloverStore):
        env.run(until=env.process(store.setup()))

    def load():
        for key, value in shared.load_phase():
            yield from store.put(key, value)

    env.run(until=env.process(load()))
    started = env.now
    durations = []

    def client(stream):
        for op in stream.operations(OPS // THREADS):
            if op[0] == "get":
                yield from store.get(op[1])
            else:
                yield from store.put(op[1], op[2])
        durations.append(env.now - started)

    procs = [env.process(client(stream)) for stream in streams]
    env.run(until=env.all_of(procs))
    return sum(durations) // len(durations)


def run_experiment():
    params = ClioParams.prototype()
    kv = backend_params(params, dram_capacity=2 * GB, capacity_slots=1 << 16)
    runtimes = {
        "Clio": clio_runtime_ns(),
        "Clover": baseline_runtime_ns(lambda env: CloverStore(env, kv)),
        "HERD": baseline_runtime_ns(lambda env: HERDServer(env, kv)),
        "HERD-BF": baseline_runtime_ns(
            lambda env: HERDServer(env, kv, on_bluefield=True)),
    }
    profiles = default_profiles(params.energy, cn_threads=CN_CORES)
    reports = {name: profiles[name].energy(runtime)
               for name, runtime in runtimes.items()}
    return runtimes, reports


def test_fig18_energy(benchmark):
    runtimes, reports = benchmark.pedantic(run_experiment, rounds=1,
                                           iterations=1)
    rows = []
    for name, report in reports.items():
        rows.append([name,
                     round(runtimes[name] / 1_000_000, 2),
                     round(report.mn_joules * 1000, 3),
                     round(report.cn_joules * 1000, 3),
                     round(report.total_joules * 1000, 3)])
    print()
    print(render_table(
        "Figure 18: YCSB-B energy (mJ) — MN/CN split",
        ["system", "runtime_ms", "MN_mJ", "CN_mJ", "total_mJ"], rows))

    clio = reports["Clio"].total_joules
    clover = reports["Clover"].total_joules
    herd = reports["HERD"].total_joules
    herd_bf = reports["HERD-BF"].total_joules

    # Clover: zero MN energy, yet total slightly above Clio.
    assert reports["Clover"].mn_joules == 0.0
    assert clio < clover < clio * 2.5

    # HERD: 1.6-3x Clio (paper's band).
    assert 1.3 <= herd / clio <= 3.5

    # HERD-BF consumes the most, despite the low-power ARM.
    assert herd_bf > herd
    assert herd_bf > clover
    assert herd_bf == max(report.total_joules for report in reports.values())

"""Figure 17: key-value store latency under YCSB A/B/C.

Paper setup: two CNs x 8 threads, 100K 1KB entries, Zipf(0.99) keys,
three get/set mixes — C (100% get), B (5% set), A (50% set).
Paper result: Clio-KV performs best; Clover suffers on set-heavy mixes
(>= 2 RTT writes); HERD-BF is the slowest throughout.

Scaled down (1K keys, 600 ops/mix) to keep the simulation fast; the
orderings are scale-free.
"""

from bench_common import GB, MB, backend_params, make_cluster, mean, run_app

from repro.analysis.report import render_table
from repro.apps.kv_store import ClioKV, register_kv_offload
from repro.baselines.clover import CloverStore
from repro.baselines.herd import HERDServer
from repro.params import ClioParams
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload

NUM_KEYS = 1000
OPS = 960
VALUE = 1024
THREADS = 16         # the paper's setup: 2 CNs x 8 threads


def make_workloads(seed_tag: str):
    rng = RandomStream(23, seed_tag)
    shared = YCSBWorkload(YCSB_WORKLOADS["C"], rng.fork("zipf-build"),
                          num_keys=NUM_KEYS, value_size=VALUE)
    per_thread = {}
    for mix in ("A", "B", "C"):
        per_thread[mix] = [
            YCSBWorkload(YCSB_WORKLOADS[mix], rng.fork(f"{mix}/{index}"),
                         num_keys=NUM_KEYS, value_size=VALUE,
                         zipf_table=shared.zipf)
            for index in range(THREADS)
        ]
    return shared, per_thread


def clio_kv_latencies() -> dict[str, float]:
    shared, per_thread = make_workloads("clio")
    results = {}
    for mix in ("A", "B", "C"):
        cluster = make_cluster(num_cns=2, mn_capacity=2 * GB)
        register_kv_offload(cluster.mn.extend_path, buckets=4 * NUM_KEYS,
                            capacity=256 * MB)
        stores = [ClioKV(cluster.cn(index % 2).process("mn0").thread())
                  for index in range(THREADS)]

        def load():
            for key, value in shared.load_phase():
                yield from stores[0].put(key, value)

        run_app(cluster, load())
        latencies = []

        def client(store, workload):
            for op in workload.operations(OPS // THREADS):
                start = cluster.env.now
                if op[0] == "get":
                    yield from store.get(op[1])
                else:
                    yield from store.put(op[1], op[2])
                latencies.append(cluster.env.now - start)

        procs = [cluster.env.process(client(store, workload))
                 for store, workload in zip(stores, per_thread[mix])]
        cluster.run(until=cluster.env.all_of(procs))
        results[mix] = mean(latencies) / 1000
    return results


def baseline_latencies(factory) -> dict[str, float]:
    shared, per_thread = make_workloads("baseline")
    results = {}
    for mix in ("A", "B", "C"):
        env = Environment()
        store = factory(env)
        setup = getattr(store, "setup", None)
        if setup is not None:
            env.run(until=env.process(store.setup()))

        def load():
            for key, value in shared.load_phase():
                yield from store.put(key, value)

        env.run(until=env.process(load()))
        latencies = []

        def client(workload):
            for op in workload.operations(OPS // THREADS):
                start = env.now
                if op[0] == "get":
                    yield from store.get(op[1])
                else:
                    yield from store.put(op[1], op[2])
                latencies.append(env.now - start)

        procs = [env.process(client(workload))
                 for workload in per_thread[mix]]
        env.run(until=env.all_of(procs))
        results[mix] = mean(latencies) / 1000
    return results


def run_experiment():
    params = backend_params(dram_capacity=2 * GB, capacity_slots=1 << 16)
    return {
        "Clio-KV": clio_kv_latencies(),
        "Clover": baseline_latencies(lambda env: CloverStore(env, params)),
        "HERD": baseline_latencies(lambda env: HERDServer(env, params)),
        "HERD-BF": baseline_latencies(
            lambda env: HERDServer(env, params, on_bluefield=True)),
    }


def test_fig17_kv_ycsb(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[system, values["A"], values["B"], values["C"]]
            for system, values in results.items()]
    print()
    print(render_table(
        "Figure 17: YCSB mean latency (us) — A(50% set) B(5%) C(0%)",
        ["system", "YCSB-A", "YCSB-B", "YCSB-C"], rows))

    for mix in ("A", "B", "C"):
        # Clio-KV performs the best on every mix.
        for other in ("Clover", "HERD", "HERD-BF"):
            assert results["Clio-KV"][mix] < results[other][mix], (
                f"{other} beat Clio-KV on YCSB-{mix}")
        # HERD-BF is the slowest.
        assert results["HERD-BF"][mix] > results["HERD"][mix]

    # Clover degrades most from C to A (write-heavy hurts PDM).
    clover_penalty = results["Clover"]["A"] / results["Clover"]["C"]
    herd_penalty = results["HERD"]["A"] / results["HERD"]["C"]
    assert clover_penalty > herd_penalty

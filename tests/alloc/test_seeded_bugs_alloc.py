"""Seeded allocator bugs: prove the strategy audits can actually fail.

Mirrors tests/verify/test_seeded_bugs.py for the allocation layer: each
test plants one classic allocator defect directly in a live board's
strategy state and asserts the invariant sweep reports the matching
``alloc-*`` violation — with a clean control run alongside.
"""

from repro.cluster import ClioCluster
from repro.params import KB, MB
from repro.verify import check_board

PID = 4242


def make_board(strategy):
    # 64 KB pages => 1024 pages, so the pool stays deep behind the
    # async buffer's reservations and every strategy has free state
    # worth corrupting.
    cluster = ClioCluster(num_cns=1, mn_capacity=64 * MB, seed=1,
                          page_size=64 * KB, alloc=strategy)
    board = cluster.mn

    def app():
        thread = cluster.cn(0).process("mn0", pid=PID).thread()
        for index in range(6):
            va = yield from thread.ralloc(4096)
            yield from thread.rwrite(va, bytes([index]) * 32)

    cluster.run(until=cluster.env.process(app()))
    return cluster, board


def names(violations):
    return [violation.invariant for violation in violations]


def test_buddy_lost_coalesce_detected():
    """Seeded bug: two free sibling buddy blocks left unmerged.

    Split a free block by hand — remove an order-k block, insert its two
    order-(k-1) halves — exactly the state a broken coalesce leaves
    behind.  The sweep must flag it; conservation still holds, so only
    the coalesce audit can catch this.
    """
    cluster, board = make_board("buddy")
    strategy = board.pa_allocator.strategy
    assert check_board(board) == []  # control: healthy after real traffic

    order = next(o for o in range(strategy.max_order, 0, -1)
                 if strategy._free_lists[o])
    base = strategy._free_lists[order][0]
    strategy._remove_block(base, order)
    half = 1 << (order - 1)
    strategy._insert_block(base, order - 1)
    strategy._insert_block(base + half, order - 1)

    found = names(check_board(board))
    assert "alloc-buddy-lost-coalesce" in found, found


def test_slab_double_free_detected():
    """Seeded bug: one page pushed twice onto a slab free stack.

    The duplicate silently inflates the free count — the double-free
    shadow set would have rejected the second ``free()``, so the bug is
    planted below it, the way a raw pointer bug would corrupt the stack.
    """
    cluster, board = make_board("slab")
    strategy = board.pa_allocator.strategy
    assert check_board(board) == []

    idx, stack = next((i, s) for i, s in enumerate(strategy._slab_free) if s)
    stack.append(stack[0])
    strategy._free_count += 1

    found = names(check_board(board))
    assert "alloc-slab-duplicate-free" in found, found


def test_arena_double_account_detected():
    """Seeded bug: a stashed page also returned to the global pool.

    A spill that forgets to drop pages from the stash leaves them owned
    twice; the arena audit must see the stash/global overlap.
    """
    cluster, board = make_board("arena")
    strategy = board.pa_allocator.strategy
    assert check_board(board) == []

    stash = next(s for s in strategy._stash.values() if s)
    strategy.base.free(stash[0], None)  # page now global AND stashed

    found = names(check_board(board))
    assert "alloc-arena-double-account" in found, found


def test_freelist_duplicate_entry_detected():
    """Seeded bug: the FIFO list holds the same page twice."""
    cluster, board = make_board("freelist")
    strategy = board.pa_allocator.strategy
    assert check_board(board) == []

    strategy._free.append(strategy._free[0])  # bypass the shadow set

    found = names(check_board(board))
    assert "alloc-freelist-duplicate" in found, found

"""Churn-under-oracle: every strategy survives the full checking stack.

``run_alloc_churn`` runs the mixed-size churn scenario with the shadow
oracle attached and an invariant sweep after every metadata operation —
so a strategy that leaks, double-accounts, or hands out a mapped page
fails here even if the workload completes.  Each strategy must also be
deterministic: same seed => bit-identical fingerprint, flat engine and
partitioned PDES engine included.
"""

import pytest

from repro.verify import ALLOC_STRATEGIES, run_alloc_churn

OPS = 60  # enough to cycle arenas/slabs/buddy splits, small enough for CI


@pytest.mark.parametrize("strategy", ALLOC_STRATEGIES)
def test_churn_verified_clean(strategy):
    result = run_alloc_churn(scenario="small-large-mix", pa_strategy=strategy,
                             seed=11, ops=OPS)
    assert result.ok, result.problems()
    assert result.extras["ops"] == OPS
    assert result.extras["failed"] == 0
    assert result.history_len > OPS  # frees happened too


@pytest.mark.parametrize("strategy", ALLOC_STRATEGIES)
def test_churn_same_seed_bit_identical(strategy):
    a = run_alloc_churn(scenario="small-churn", pa_strategy=strategy,
                        seed=3, ops=OPS)
    b = run_alloc_churn(scenario="small-churn", pa_strategy=strategy,
                        seed=3, ops=OPS)
    assert a.ok and b.ok, (a.problems(), b.problems())
    assert a.extras["fingerprint"] == b.extras["fingerprint"]
    assert a.extras["sim_now_ns"] == b.extras["sim_now_ns"]
    c = run_alloc_churn(scenario="small-churn", pa_strategy=strategy,
                        seed=4, ops=OPS)
    assert c.extras["fingerprint"] != a.extras["fingerprint"]


@pytest.mark.parametrize("strategy", ALLOC_STRATEGIES)
def test_churn_flat_matches_partitioned(strategy):
    flat = run_alloc_churn(scenario="small-large-mix", pa_strategy=strategy,
                           seed=7, ops=OPS, partitioned=False)
    pdes = run_alloc_churn(scenario="small-large-mix", pa_strategy=strategy,
                           seed=7, ops=OPS, partitioned=True)
    assert flat.ok and pdes.ok, (flat.problems(), pdes.problems())
    assert flat.extras["fingerprint"] == pdes.extras["fingerprint"]
    assert flat.extras["sim_now_ns"] == pdes.extras["sim_now_ns"]


@pytest.mark.parametrize("policy", ["first-fit", "next-fit", "best-fit",
                                    "jump"])
def test_retry_storm_verified_clean_per_policy(policy):
    result = run_alloc_churn(scenario="retry-storm", pa_strategy="freelist",
                             va_policy=policy, seed=2, ops=30)
    assert result.ok, result.problems()

"""Hypothesis stateful model-check of every PA strategy.

One reference model — a plain ``(allocated, free)`` page partition —
drives all four strategies through random allocate/free/double-free
interleavings.  After every rule the machine asserts:

* **no-overlap** — ``free_ppns()`` never intersects the allocated set
  and never repeats a page;
* **conservation** — ``allocated + free == physical`` exactly;
* **audit-clean** — the strategy's own ``check()`` finds nothing
  (for buddy that includes coalesce correctness: two free sibling
  blocks must never coexist unmerged).

A second machine drives the buddy allocator through multi-order
``alloc_run`` splits, where coalesce bugs actually live.

Runs under the deterministic Hypothesis profile (tests/conftest.py) so
CI failures reproduce.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.alloc import DoubleFreeError, OutOfMemoryError, make_pa_strategy

POOL = 96  # deliberately not a power of two (64 + 32 top buddy blocks)


class AllocMachine(RuleBasedStateMachine):
    strategy_name: str = ""

    def __init__(self):
        super().__init__()
        self.s = make_pa_strategy(
            self.strategy_name, POOL,
            slab_pages=16, slab_classes=3,
            arena_batch_pages=4, arena_stash_max=8)
        self.allocated: dict[int, int] = {}  # ppn -> pid
        self.free: set[int] = set(range(POOL))

    @rule(pid=st.integers(min_value=0, max_value=5))
    def allocate(self, pid):
        if self.free:
            ppn = self.s.allocate(pid)
            assert ppn in self.free, f"strategy handed out non-free ppn {ppn}"
            self.free.discard(ppn)
            self.allocated[ppn] = pid
        else:
            with pytest.raises(OutOfMemoryError):
                self.s.allocate(pid)

    @rule(data=st.data())
    def free_one(self, data):
        if not self.allocated:
            return
        ppn = data.draw(st.sampled_from(sorted(self.allocated)))
        pid = self.allocated.pop(ppn)
        self.s.free(ppn, pid)
        self.free.add(ppn)

    @rule(data=st.data())
    def double_free_rejected(self, data):
        if not self.free:
            return
        ppn = data.draw(st.sampled_from(sorted(self.free)))
        with pytest.raises(DoubleFreeError):
            self.s.free(ppn, 0)

    @invariant()
    def conservation(self):
        assert self.s.free_pages == len(self.free)
        assert len(self.allocated) + self.s.free_pages == POOL

    @invariant()
    def no_overlap_and_audit_clean(self):
        listed = list(self.s.free_ppns())
        assert len(listed) == len(set(listed)), "free page listed twice"
        assert set(listed) == self.free, "free_ppns drifted from the model"
        assert not set(listed) & set(self.allocated)
        problems = self.s.check()
        assert problems == [], problems

    @invariant()
    def is_free_agrees(self):
        for probe in (0, POOL // 2, POOL - 1):
            assert self.s.is_free(probe) == (probe in self.free)


class FreelistMachine(AllocMachine):
    strategy_name = "freelist"


class SlabMachine(AllocMachine):
    strategy_name = "slab"


class BuddyMachine(AllocMachine):
    strategy_name = "buddy"


class ArenaMachine(AllocMachine):
    strategy_name = "arena"


class BuddyRunMachine(RuleBasedStateMachine):
    """Multi-order buddy splits/coalesces, where merge bugs live."""

    def __init__(self):
        super().__init__()
        self.s = make_pa_strategy("buddy", 128)
        self.blocks: dict[int, int] = {}  # base -> pages
        self.free_count = 128

    @rule(pages=st.integers(min_value=1, max_value=8))
    def alloc_run(self, pages):
        size = 1 << (pages - 1).bit_length()
        if self.free_count < size or self.s.largest_free_block < size:
            return
        base = self.s.alloc_run(pages)
        assert base % size == 0, "run not self-aligned"
        for prev, psize in self.blocks.items():
            assert base + size <= prev or prev + psize <= base, \
                f"run [{base},{base + size}) overlaps [{prev},{prev + psize})"
        self.blocks[base] = size
        self.free_count -= size

    @rule(data=st.data())
    def free_run(self, data):
        if not self.blocks:
            return
        base = data.draw(st.sampled_from(sorted(self.blocks)))
        self.free_count += self.blocks.pop(base)
        self.s.free(base)

    @invariant()
    def conserved_and_coalesced(self):
        assert self.s.free_pages == self.free_count
        problems = self.s.check()
        assert problems == [], problems
        if not self.blocks:
            # Fully drained: everything must have merged back to one block.
            assert self.s.largest_free_block == 128
            assert self.s.fragmentation == 0.0


class ReservedConservationMachine(RuleBasedStateMachine):
    """Board-level conservation through :class:`PAAllocator`: pages move
    between free / reserved (async-buffer style) / used, and
    ``free + reserved + used == physical`` must hold after every rule —
    for every strategy, chosen per example."""

    strategies = st.sampled_from(["freelist", "slab", "buddy", "arena"])

    def __init__(self):
        super().__init__()
        self.pa = None

    @rule(name=strategies)
    def init_allocator(self, name):
        if self.pa is None:
            from repro.core.pa_allocator import PAAllocator

            self.pa = PAAllocator(POOL, strategy=name)
            self.reserved: list[int] = []
            self.used: dict[int, int] = {}

    @rule(pid=st.integers(min_value=0, max_value=3))
    def reserve(self, pid):
        """ARM pre-reserves a page into the async buffer."""
        if self.pa is None or self.pa.free_pages == 0:
            return
        ppn = self.pa.allocate(pid)
        self.pa._reserved += 1
        self.reserved.append(ppn)

    @rule()
    def fault_consume(self):
        """Fast path pops a pre-reserved page and maps it."""
        if self.pa is None or not self.reserved:
            return
        ppn = self.reserved.pop(0)
        self.pa._reserved -= 1
        self.used[ppn] = 0

    @rule()
    def return_unused(self):
        """A popped-but-unused page recycles back to the pool."""
        if self.pa is None or not self.reserved:
            return
        ppn = self.reserved.pop()
        self.pa._reserved -= 1
        self.pa.free(ppn, 0)

    @rule(data=st.data())
    def free_used(self, data):
        if self.pa is None or not self.used:
            return
        ppn = data.draw(st.sampled_from(sorted(self.used)))
        del self.used[ppn]
        self.pa.free(ppn, 0)

    @invariant()
    def conservation_with_reserved(self):
        if self.pa is None:
            return
        assert (self.pa.free_pages + self.pa._reserved + len(self.used)
                == POOL), "a page leaked or duplicated"
        # used_pages = physical - free - reserved: reserved pages live
        # in the buffer (self.reserved), used pages are mapped (self.used).
        assert self.pa._reserved == len(self.reserved)
        assert self.pa.used_pages == len(self.used)
        assert self.pa.check() == []


class VAFixedMachine(RuleBasedStateMachine):
    """Random alloc / free / fixed-va sequences through the real
    :class:`VAAllocator`, one example per policy: granted ranges stay
    page-aligned and disjoint per process, and every granted page has a
    PTE."""

    policies = st.sampled_from(["first-fit", "next-fit", "best-fit", "jump"])

    def __init__(self):
        super().__init__()
        self.alloc = None

    @rule(policy=policies)
    def init_allocator(self, policy):
        if self.alloc is None:
            from repro.core.addr import PageSpec
            from repro.core.page_table import HashPageTable
            from repro.core.va_allocator import VA_BASE, VAAllocator

            self.page = 1 << 22
            self.va_base = VA_BASE
            table = HashPageTable(physical_pages=512, slots_per_bucket=4,
                                  overprovision=2.0)
            self.alloc = VAAllocator(table, PageSpec(self.page),
                                     policy=policy)
            self.table = table
            self.ranges: dict[int, dict[int, int]] = {}  # pid -> va -> size

    @rule(pid=st.integers(min_value=1, max_value=3),
          pages=st.integers(min_value=1, max_value=3))
    def allocate(self, pid, pages):
        if self.alloc is None:
            return
        from repro.core.va_allocator import AllocationError

        try:
            got = self.alloc.allocate(pid=pid, size=pages * self.page)
        except AllocationError:
            return
        self.ranges.setdefault(pid, {})[got.allocation.va] = \
            got.allocation.size

    @rule(pid=st.integers(min_value=1, max_value=3),
          slot=st.integers(min_value=0, max_value=40),
          pages=st.integers(min_value=1, max_value=2))
    def allocate_fixed(self, pid, slot, pages):
        if self.alloc is None:
            return
        from repro.core.va_allocator import AllocationError

        fixed = self.va_base + slot * self.page
        try:
            got = self.alloc.allocate(pid=pid, size=pages * self.page,
                                      fixed_va=fixed)
        except AllocationError:
            return
        self.ranges.setdefault(pid, {})[got.allocation.va] = \
            got.allocation.size

    @rule(data=st.data())
    def free_one(self, data):
        if self.alloc is None:
            return
        owners = [pid for pid, spans in self.ranges.items() if spans]
        if not owners:
            return
        pid = data.draw(st.sampled_from(sorted(owners)))
        va = data.draw(st.sampled_from(sorted(self.ranges[pid])))
        del self.ranges[pid][va]
        self.alloc.free(pid, va)

    @invariant()
    def aligned_disjoint_and_mapped(self):
        if self.alloc is None:
            return
        for pid, spans in self.ranges.items():
            ordered = sorted(spans.items())
            for (va, size), (nxt, _) in zip(ordered, ordered[1:]):
                assert va + size <= nxt, f"pid {pid} ranges overlap"
            for va, size in ordered:
                assert va % self.page == 0
                for vpn in range(va // self.page, (va + size) // self.page):
                    assert self.table.lookup(pid, vpn) is not None


TestFreelistStateful = FreelistMachine.TestCase
TestSlabStateful = SlabMachine.TestCase
TestBuddyStateful = BuddyMachine.TestCase
TestArenaStateful = ArenaMachine.TestCase
TestBuddyRunStateful = BuddyRunMachine.TestCase
TestReservedConservation = ReservedConservationMachine.TestCase
TestVAFixedStateful = VAFixedMachine.TestCase

for case in (TestFreelistStateful, TestSlabStateful, TestBuddyStateful,
             TestArenaStateful, TestBuddyRunStateful,
             TestReservedConservation, TestVAFixedStateful):
    case.settings = settings(
        case.settings, max_examples=25, stateful_step_count=40,
        deadline=None)

"""Unit tests for the pluggable PA strategies (repro.alloc).

Each strategy is exercised directly — no cluster, no simulation — so
these tests pin the bookkeeping contracts the board-level invariant
sweeps later rely on: conservation, double-free rejection, coalescing,
occupancy accounting, and crossing amortization.
"""

import pytest

from repro.alloc import (
    PA_STRATEGIES,
    ArenaStrategy,
    BuddyStrategy,
    DoubleFreeError,
    FreeListStrategy,
    OutOfMemoryError,
    SlabStrategy,
    make_pa_strategy,
)

ALL_NAMES = sorted(PA_STRATEGIES)


def drain(strategy, n, pid=None):
    return [strategy.allocate(pid) for _ in range(n)]


# -- contracts common to every strategy ---------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
def test_allocate_unique_in_range_and_conserves(name):
    s = make_pa_strategy(name, 64)
    got = drain(s, 64)
    assert sorted(got) == list(range(64))
    assert s.free_pages == 0
    with pytest.raises(OutOfMemoryError):
        s.allocate()
    for ppn in got:
        s.free(ppn)
    assert s.free_pages == 64
    assert sorted(s.free_ppns()) == list(range(64))
    assert s.check() == []


@pytest.mark.parametrize("name", ALL_NAMES)
def test_double_free_rejected(name):
    s = make_pa_strategy(name, 32)
    ppn = s.allocate(pid=1)
    s.free(ppn, pid=1)
    with pytest.raises(DoubleFreeError):
        s.free(ppn, pid=1)
    # DoubleFreeError is a ValueError, so legacy except-clauses still catch.
    assert issubclass(DoubleFreeError, ValueError)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_never_free_page_rejected(name):
    s = make_pa_strategy(name, 16)
    with pytest.raises(DoubleFreeError):
        s.free(3)  # never allocated => still free => double free


@pytest.mark.parametrize("name", ALL_NAMES)
def test_is_free_tracks_state(name):
    s = make_pa_strategy(name, 16)
    assert all(s.is_free(p) for p in range(16))
    ppn = s.allocate(pid=2)
    assert not s.is_free(ppn)
    s.free(ppn, pid=2)
    assert s.is_free(ppn)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_fragmentation_bounded(name):
    s = make_pa_strategy(name, 100)
    held = drain(s, 37, pid=5)
    for ppn in held[::3]:
        s.free(ppn, pid=5)
    assert 0.0 <= s.fragmentation <= 1.0
    stats = s.stats()
    assert stats["strategy"] == name
    assert stats["free_pages"] == s.free_pages


def test_make_pa_strategy_unknown_name():
    with pytest.raises(ValueError, match="unknown PA strategy"):
        make_pa_strategy("bump", 16)


# -- free list ----------------------------------------------------------------


def test_freelist_fifo_recycling_order():
    s = FreeListStrategy(8)
    assert drain(s, 3) == [0, 1, 2]
    s.free(1)
    s.free(0)
    # FIFO: untouched tail first, then freed pages in free order.
    assert drain(s, 7) == [3, 4, 5, 6, 7, 1, 0]


def test_freelist_every_op_is_a_crossing():
    s = FreeListStrategy(8)
    for _ in range(4):
        s.free(s.allocate())
    assert s.slow_crossings == 8


# -- slab ---------------------------------------------------------------------


def test_slab_classes_get_disjoint_slabs():
    s = SlabStrategy(64, slab_pages=16, classes=4)
    a = drain(s, 4, pid=0)   # class 0
    b = drain(s, 4, pid=1)   # class 1
    # Different classes draw from different slabs (disjoint 16-page runs).
    assert {p // 16 for p in a}.isdisjoint({p // 16 for p in b})
    occ = s.occupancy()
    assert occ[0]["used"] == 4 and occ[1]["used"] == 4
    assert occ[0]["allocs"] == 4 and occ[0]["slabs"] == 1


def test_slab_fully_free_slab_returns_to_reserve():
    s = SlabStrategy(32, slab_pages=8, classes=2)
    held = drain(s, 3, pid=0)
    assert s.occupancy()[0]["slabs"] == 1
    for ppn in held:
        s.free(ppn, pid=0)
    # The slab drained: it detaches from class 0 back to the reserve.
    assert s.occupancy()[0]["slabs"] == 0
    assert s.fragmentation == 0.0
    assert s.check() == []


def test_slab_borrows_instead_of_false_oom():
    s = SlabStrategy(8, slab_pages=4, classes=2)
    drain(s, 4, pid=0)  # class 0 owns slab 0
    drain(s, 3, pid=1)  # class 1 owns slab 1, one page left
    # Class 0 has no partial slab and the reserve is empty: borrow.
    ppn = s.allocate(pid=0)
    assert ppn in range(4, 8)
    assert s.borrows == 1
    with pytest.raises(OutOfMemoryError):
        s.allocate(pid=0)


def test_slab_short_tail_slab_still_usable():
    # 20 pages with 8-page slabs -> slabs of 8, 8, 4.
    s = SlabStrategy(20, slab_pages=8, classes=1)
    got = drain(s, 20, pid=0)
    assert sorted(got) == list(range(20))
    for ppn in got:
        s.free(ppn, pid=0)
    assert s.free_pages == 20
    assert s.check() == []


def test_slab_fragmentation_counts_stranded_pages():
    s = SlabStrategy(32, slab_pages=8, classes=2)
    held = drain(s, 8, pid=0)
    s.free(held[0], pid=0)
    # 1 page free inside a class-0 slab, 24 free in reserve slabs.
    assert s.fragmentation == pytest.approx(1 / 25)


# -- buddy --------------------------------------------------------------------


def test_buddy_full_coalesce_restores_single_block():
    s = BuddyStrategy(256)
    held = drain(s, 256)
    assert s.largest_free_block == 0
    for ppn in held:
        s.free(ppn)
    assert s.largest_free_block == 256
    assert s.fragmentation == 0.0
    assert s.check() == []


def test_buddy_split_lowest_first():
    s = BuddyStrategy(16)
    assert s.allocate() == 0
    assert s.allocate() == 1
    assert s.allocate() == 2


def test_buddy_alloc_run_aligned_and_freeable():
    s = BuddyStrategy(64)
    base = s.alloc_run(5)  # rounds to 8 pages, self-aligned
    assert base % 8 == 0
    assert s.free_pages == 56
    s.free(base)
    assert s.free_pages == 64
    assert s.largest_free_block == 64


def test_buddy_fragmentation_reflects_split_pool():
    s = BuddyStrategy(64)
    held = drain(s, 64)
    for ppn in held[::2]:  # free alternating pages: nothing can merge
        s.free(ppn)
    assert s.largest_free_block == 1
    assert s.fragmentation == pytest.approx(1 - 1 / 32)


def test_buddy_non_power_of_two_pool():
    # 100 = 64 + 32 + 4: three self-aligned top blocks.
    s = BuddyStrategy(100)
    assert s.free_pages == 100
    got = drain(s, 100)
    assert sorted(got) == list(range(100))
    for ppn in got:
        s.free(ppn)
    assert s.free_pages == 100
    assert s.check() == []
    assert s.largest_free_block == 64


def test_buddy_freeing_non_base_rejected():
    s = BuddyStrategy(16)
    base = s.alloc_run(4)
    with pytest.raises(DoubleFreeError):
        s.free(base + 1)  # interior page, not the block base
    s.free(base)


# -- arena --------------------------------------------------------------------


def test_arena_batches_amortize_crossings():
    s = ArenaStrategy(256, batch_pages=16, stash_max=64)
    for _ in range(100):
        s.free(s.allocate(pid=7), pid=7)
    # 1 refill crossing serves the whole ping-pong churn.
    assert s.slow_crossings == 1
    assert s.batch_refills == 1

    plain = FreeListStrategy(256)
    for _ in range(100):
        plain.free(plain.allocate(), None)
    assert plain.slow_crossings == 200
    assert s.slow_crossings * 2 <= plain.slow_crossings


def test_arena_stash_spills_oldest_half():
    s = ArenaStrategy(128, batch_pages=4, stash_max=8)
    held = drain(s, 16, pid=1)
    for ppn in held:
        s.free(ppn, pid=1)
    assert s.spills >= 1
    # Spilled pages went back to the global pool; conservation holds.
    assert s.free_pages == 128
    assert s.base.free_pages + s.stashed_pages == 128
    assert s.check() == []


def test_arena_reclaims_from_sibling_before_oom():
    s = ArenaStrategy(8, batch_pages=8, stash_max=8)
    ppn = s.allocate(pid=1)     # pid 1 stashes the whole pool
    s.free(ppn, pid=1)
    assert s.base.free_pages == 0
    got = s.allocate(pid=2)     # global dry: reclaim from pid 1's stash
    assert s.reclaims == 1
    assert got in range(8)
    # True OOM only when global + every stash is empty.
    drain(s, 7, pid=2)
    with pytest.raises(OutOfMemoryError):
        s.allocate(pid=2)


def test_arena_conservation_includes_stashes():
    s = ArenaStrategy(64, batch_pages=8, stash_max=16)
    held = drain(s, 10, pid=3)
    assert s.free_pages == 54
    for ppn in held[:5]:
        s.free(ppn, pid=3)
    assert s.free_pages == 59
    assert sorted(s.free_ppns()) == sorted(
        set(range(64)) - set(held[5:]))


def test_arena_validates_knobs():
    with pytest.raises(ValueError):
        ArenaStrategy(16, batch_pages=0)
    with pytest.raises(ValueError):
        ArenaStrategy(16, batch_pages=8, stash_max=4)
    with pytest.raises(ValueError):
        ArenaStrategy(16, base=FreeListStrategy(8))

"""Unit tests for the VA gap-search policies (repro.alloc.va_policies).

Driven through the real :class:`VAAllocator` so the generator protocol
(candidate yield / ``send(conflict_vpn)``) is exercised exactly as the
slow path uses it.
"""

import pytest

from repro.alloc import VA_POLICIES, make_va_policy
from repro.core.addr import PageSpec
from repro.core.page_table import HashPageTable
from repro.core.va_allocator import VA_BASE, AllocationError, VAAllocator

MB = 1 << 20
PAGE = 4 * MB

ALL_POLICIES = sorted(VA_POLICIES)


def make_allocator(policy="first-fit", pages=256, k=4, over=2.0):
    table = HashPageTable(physical_pages=pages, slots_per_bucket=k,
                          overprovision=over)
    return VAAllocator(table, PageSpec(PAGE), policy=policy), table


# -- contracts common to every policy -----------------------------------------


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_policy_allocates_aligned_disjoint_ranges(name):
    alloc, _ = make_allocator(name)
    spans = []
    for _ in range(12):
        a = alloc.allocate(pid=1, size=2 * PAGE).allocation
        assert a.va % PAGE == 0 and a.va >= VA_BASE
        spans.append((a.va, a.end))
    spans.sort()
    for (_, e1), (s2, _) in zip(spans, spans[1:]):
        assert e1 <= s2


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_policy_survives_free_and_reuse(name):
    alloc, _ = make_allocator(name)
    a = alloc.allocate(pid=1, size=4 * PAGE).allocation
    alloc.free(1, a.va)
    b = alloc.allocate(pid=1, size=4 * PAGE).allocation
    assert b.size == 4 * PAGE


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_policy_exhaustion_counts_failed_allocation(name):
    alloc, table = make_allocator(name, pages=4, k=2, over=1.0)
    with pytest.raises(AllocationError):
        for _ in range(table.total_slots + 1):
            alloc.allocate(pid=1, size=PAGE)
    assert alloc.failed_allocations == 1


def test_policy_instance_accepted_and_unknown_name_rejected():
    policy = make_va_policy("next-fit")
    alloc, _ = make_allocator(policy)
    assert alloc.policy is policy
    with pytest.raises(ValueError, match="unknown VA policy"):
        make_va_policy("worst-fit")


# -- first-fit ----------------------------------------------------------------


def test_first_fit_reuses_lowest_gap():
    alloc, _ = make_allocator("first-fit")
    first = alloc.allocate(pid=1, size=PAGE).allocation
    alloc.allocate(pid=1, size=PAGE)
    alloc.free(1, first.va)
    again = alloc.allocate(pid=1, size=PAGE).allocation
    assert again.va == first.va


def test_retry_histogram_tracks_commits():
    alloc, _ = make_allocator("first-fit", pages=1024, k=8, over=4.0)
    for _ in range(10):
        alloc.allocate(pid=1, size=PAGE)
    assert alloc.retry_histogram[0] == 10  # empty table: all zero-retry


# -- next-fit -----------------------------------------------------------------


def test_next_fit_roves_past_freed_gap():
    alloc, _ = make_allocator("next-fit")
    first = alloc.allocate(pid=1, size=PAGE).allocation
    second = alloc.allocate(pid=1, size=PAGE).allocation
    alloc.free(1, first.va)
    # The cursor sits past `second`: the hole at `first` is skipped.
    third = alloc.allocate(pid=1, size=PAGE).allocation
    assert third.va == second.end
    # ...until the scan wraps back around to it.
    alloc.free(1, second.va)
    alloc.free(1, third.va)


def test_next_fit_wraps_to_reach_skipped_prefix():
    """Generator-level: candidates past the cursor first, then the wrap."""

    class EverythingFree:
        def next_gap(self, start, size):
            return start

    policy = make_va_policy("next-fit")
    policy._cursor[1] = 5
    gen = policy.candidates(EverythingFree(), pid=1, alloc_size=1,
                            page_size=1, va_base=0, va_limit=8, table=None)
    assert list(gen) == [5, 6, 7, 0, 1, 2, 3, 4]


def test_next_fit_cursor_is_per_process():
    alloc, _ = make_allocator("next-fit")
    a = alloc.allocate(pid=1, size=PAGE).allocation
    b = alloc.allocate(pid=2, size=PAGE).allocation
    assert a.va == b.va  # pid 2's cursor starts fresh at VA_BASE


# -- best-fit -----------------------------------------------------------------


def test_best_fit_picks_smallest_sufficient_gap():
    alloc, _ = make_allocator("best-fit")
    blocks = [alloc.allocate(pid=1, size=s * PAGE).allocation
              for s in (2, 1, 3, 1, 8)]
    # Free the 2-page and 3-page blocks: gaps of 2 and 3 pages plus the
    # huge tail gap after the last block.
    alloc.free(1, blocks[0].va)
    alloc.free(1, blocks[2].va)
    got = alloc.allocate(pid=1, size=2 * PAGE).allocation
    assert got.va == blocks[0].va  # 2-page gap beats 3-page and tail
    got3 = alloc.allocate(pid=1, size=3 * PAGE).allocation
    assert got3.va == blocks[2].va


def test_best_fit_ties_break_to_lowest_address():
    alloc, _ = make_allocator("best-fit")
    blocks = [alloc.allocate(pid=1, size=PAGE).allocation for _ in range(5)]
    alloc.free(1, blocks[1].va)
    alloc.free(1, blocks[3].va)
    got = alloc.allocate(pid=1, size=PAGE).allocation
    assert got.va == blocks[1].va


# -- jump ---------------------------------------------------------------------


def _fill_table(alloc, table, frac):
    pid = 0
    target = int(table.total_slots * frac)
    while table.entry_count < target:
        alloc.allocate(pid=9000 + pid, size=PAGE)
        pid = (pid + 1) % 8


def test_jump_never_pays_more_retries_near_full():
    results = {}
    for name in ("first-fit", "jump"):
        alloc, table = make_allocator(name, pages=256, k=4, over=2.0)
        _fill_table(alloc, table, 0.90)
        before = alloc.total_retries
        for i in range(10):
            alloc.allocate(pid=7000 + i, size=PAGE)
        results[name] = alloc.total_retries - before
    assert results["jump"] <= results["first-fit"]


def test_jump_memoizes_full_buckets():
    alloc, table = make_allocator("jump", pages=64, k=2, over=1.0)
    _fill_table(alloc, table, 0.95)
    # Force at least one conflicted allocation so a bucket gets memoized.
    tries = 0
    while not alloc.policy._full_buckets and tries < 50:
        try:
            alloc.allocate(pid=1, size=PAGE)
        except AllocationError:
            break
        tries += 1
    assert alloc.policy._full_buckets or alloc.total_retries == 0


def test_jump_memo_clears_on_free():
    alloc, _ = make_allocator("jump")
    policy = alloc.policy
    policy._full_buckets.add(3)
    a = alloc.allocate(pid=1, size=PAGE).allocation
    alloc.free(1, a.va)
    assert not policy._full_buckets

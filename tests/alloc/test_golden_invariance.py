"""Golden invariance: the allocator overhaul must not move a single bit.

The default strategy pair (``freelist`` + ``first-fit``) reproduces the
pre-refactor allocator exactly, so the three pre-existing golden
fingerprints — no-fault chaos, batched YCSB, coherent-cache — must stay
where earlier PRs pinned them, and a cluster built with the explicit
defaults must match one built with no alloc parameters at all.

This file also pins NEW goldens for the strategy-specific runs: move
them only with a deliberate re-pin.
"""

from tests.cache.test_cache import GOLDEN_CACHED, cached_fingerprint
from tests.clib.test_batching import GOLDEN_BATCHED, batched_fingerprint
from tests.faults.test_chaos import GOLDEN_NO_FAULT, no_fault_fingerprint

from repro.params import AllocParams
from repro.workloads.churn import run_churn

# -- pre-existing goldens: the default strategy must not move them ------------


def test_default_strategy_keeps_no_fault_golden():
    assert no_fault_fingerprint() == GOLDEN_NO_FAULT


def test_default_strategy_keeps_batched_golden():
    assert batched_fingerprint() == GOLDEN_BATCHED


def test_default_strategy_keeps_cached_golden():
    assert cached_fingerprint() == GOLDEN_CACHED


def test_explicit_default_matches_implicit_default():
    implicit = run_churn("small-churn", seed=9, ops=40)
    explicit = run_churn("small-churn", pa_strategy="freelist",
                         va_policy="first-fit", seed=9, ops=40)
    assert implicit.fingerprint() == explicit.fingerprint()
    assert AllocParams().pa_strategy == "freelist"
    assert AllocParams().va_policy == "first-fit"


# -- new goldens: per-strategy churn fingerprints -----------------------------

#: small-churn, seed 5, 120 ops.  freelist/slab/buddy share a digest
#: because the fingerprint covers VAs, latencies, and completion times —
#: which PPN a strategy hands out never feeds back into timing.  Arena
#: differs (by design): batch refills change *when* the slow path runs.
GOLDEN_CHURN_DEFAULT = "adcf0360091815d0a0cb8a83662268f3"
GOLDEN_CHURN_ARENA = "2d09f5f9f3e895cbb8cace6f99aa2ab4"

#: small-large-mix, seed 5, 120 ops, buddy strategy.
GOLDEN_CHURN_BUDDY_MIX = "52f895471c11c35a06c412828dd5aebe"

#: retry-storm, seed 5, 60 ops, jump VA policy.
GOLDEN_CHURN_JUMP_STORM = "5223ec3c3aab3d0ab3aef83a5df3dbb7"


def test_churn_default_golden():
    report = run_churn("small-churn", pa_strategy="freelist", seed=5, ops=120)
    assert report.fingerprint() == GOLDEN_CHURN_DEFAULT


def test_churn_slab_and_buddy_share_default_timing():
    for strategy in ("slab", "buddy"):
        report = run_churn("small-churn", pa_strategy=strategy, seed=5,
                           ops=120)
        assert report.fingerprint() == GOLDEN_CHURN_DEFAULT, strategy


def test_churn_arena_golden():
    report = run_churn("small-churn", pa_strategy="arena", seed=5, ops=120)
    assert report.fingerprint() == GOLDEN_CHURN_ARENA
    assert report.fingerprint() != GOLDEN_CHURN_DEFAULT


def test_churn_buddy_mix_golden():
    report = run_churn("small-large-mix", pa_strategy="buddy", seed=5,
                       ops=120)
    assert report.fingerprint() == GOLDEN_CHURN_BUDDY_MIX


def test_churn_jump_storm_golden():
    report = run_churn("retry-storm", pa_strategy="freelist",
                       va_policy="jump", seed=5, ops=60)
    assert report.fingerprint() == GOLDEN_CHURN_JUMP_STORM

"""Tests for the ClioCluster assembly helper."""

import pytest

from repro.cluster import ClioCluster
from repro.params import ClioParams

MB = 1 << 20


def test_default_cluster_shape():
    cluster = ClioCluster(mn_capacity=64 * MB)
    assert len(cluster.cns) == 1
    assert len(cluster.mns) == 1
    assert cluster.mn.name == "mn0"
    assert cluster.cn(0).name == "cn0"


def test_multi_node_names_distinct():
    cluster = ClioCluster(num_cns=3, num_mns=2, mn_capacity=64 * MB)
    assert [board.name for board in cluster.mns] == ["mn0", "mn1"]
    assert [node.name for node in cluster.cns] == ["cn0", "cn1", "cn2"]
    assert sorted(cluster.topology.node_names()) == [
        "cn0", "cn1", "cn2", "mn0", "mn1"]


def test_run_requires_until():
    cluster = ClioCluster(mn_capacity=64 * MB)
    with pytest.raises(ValueError, match="until"):
        cluster.run()


def test_run_all_waits_for_every_process():
    cluster = ClioCluster(mn_capacity=64 * MB)
    done = []

    def worker(delay):
        yield cluster.env.timeout(delay)
        done.append(delay)

    cluster.run_all([cluster.env.process(worker(10)),
                     cluster.env.process(worker(30))])
    assert sorted(done) == [10, 30]
    assert cluster.env.now == 30


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        ClioCluster(num_cns=0)
    with pytest.raises(ValueError):
        ClioCluster(num_mns=0)


def test_page_size_override_propagates_everywhere():
    cluster = ClioCluster(mn_capacity=64 * MB, page_size=64 << 10)
    assert cluster.mn.page_spec.page_size == 64 << 10
    process = cluster.cn(0).process("mn0")
    assert process.page_spec.page_size == 64 << 10


def test_custom_params_used():
    params = ClioParams.asic_projection()
    cluster = ClioCluster(params=params, mn_capacity=64 * MB)
    assert cluster.mn.params.cboard.cycle_ns == 0.5


def test_same_seed_same_network_draws():
    a = ClioCluster(seed=5, mn_capacity=64 * MB)
    b = ClioCluster(seed=5, mn_capacity=64 * MB)
    assert a.rng.fork("x").uniform() == b.rng.fork("x").uniform()


def test_report_aggregates_boards_and_cns():
    cluster = ClioCluster(num_cns=2, num_mns=2, mn_capacity=64 * MB)
    thread = cluster.cn(1).process("mn1").thread()

    def app():
        va = yield from thread.ralloc(64)
        yield from thread.rwrite(va, b"stats")

    cluster.run(until=cluster.env.process(app()))
    report = cluster.report()
    assert set(report["boards"]) == {"mn0", "mn1"}
    assert set(report["cns"]) == {"cn0", "cn1"}
    assert report["boards"]["mn1"]["requests_served"] == 2
    assert report["boards"]["mn0"]["requests_served"] == 0
    assert report["cns"]["cn1"]["requests_completed"] == 2
    assert "mn1" in report["cns"]["cn1"]["cwnd"]
    assert report["now_ns"] == cluster.env.now
    assert report["cns"]["cn1"]["requests_failed"] == 0
    assert report["health"] is None   # monitoring is opt-in


def test_board_accessor_by_name():
    cluster = ClioCluster(num_mns=2, mn_capacity=64 * MB)
    assert cluster.board("mn1") is cluster.mns[1]
    with pytest.raises(KeyError):
        cluster.board("mn9")


def test_health_monitor_opt_in_and_reported():
    cluster = ClioCluster(num_mns=2, mn_capacity=64 * MB)
    health = cluster.start_health_monitor(interval_ns=10_000,
                                          miss_threshold=2)
    assert cluster.start_health_monitor() is health   # idempotent
    cluster.board("mn1").crash()
    cluster.run(until=100_000)
    report = cluster.report()
    assert report["health"]["dead_boards"] == ["mn1"]
    assert report["boards"]["mn1"]["alive"] is False


def test_opt_in_subsystems_share_the_enable_disable_surface():
    """Every opt-in subsystem: enable_*() returns the handle, idempotent;
    the deprecated start_health_monitor alias stays wired to it."""
    cluster = ClioCluster(num_mns=1, mn_capacity=64 * MB)
    health = cluster.enable_health_monitor(interval_ns=10_000)
    assert cluster.enable_health_monitor() is health
    assert cluster.start_health_monitor() is health   # deprecated alias
    tracer = cluster.enable_tracing()
    assert cluster.enable_tracing() is tracer
    verifier = cluster.enable_verification()
    assert cluster.enable_verification() is verifier
    cluster.disable_tracing()
    assert cluster.tracer is None
    cluster.disable_verification()
    assert cluster.verifier is None


def test_disable_health_monitor_stops_sweeps_and_restarts():
    cluster = ClioCluster(num_mns=1, mn_capacity=64 * MB)
    health = cluster.enable_health_monitor(interval_ns=10_000)
    cluster.run(until=100_000)
    beats = health.heartbeats
    assert beats > 0
    cluster.disable_health_monitor()
    cluster.run(until=300_000)
    assert health.heartbeats == beats   # no sweeps while disabled
    assert cluster.enable_health_monitor() is health   # re-arms the sweep
    cluster.run(until=400_000)
    assert health.heartbeats > beats

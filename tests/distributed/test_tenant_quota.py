"""Capacity QoS at the controller: per-tenant quotas on region placement."""

import pytest

from repro.cluster import ClioCluster
from repro.distributed.controller import (
    GlobalController,
    TenantQuotaExceeded,
)
from repro.params import ClioParams, QoSParams, TenantConfig

MB = 1 << 20


QOS = QoSParams(tenants=(
    TenantConfig(name="gold", clients=("cn0",), share=0.6,
                 quota_bytes=8 * MB),
    TenantConfig(name="bronze", clients=("cn1",), share=0.4),
))


def make(qos=QOS, registry=False):
    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          num_cns=2, mn_capacity=1 << 30)
    controller = GlobalController(
        cluster.env, cluster.mns, qos=qos,
        registry=cluster.metrics if registry else None)
    return cluster, controller


def run(cluster, generator):
    holder = {}

    def wrapper():
        holder["result"] = yield from generator

    cluster.run(until=cluster.env.process(wrapper()))
    return holder.get("result")


def test_quota_rejects_and_frees_credit_back():
    cluster, controller = make()

    def app():
        lease = yield from controller.allocate(1, 4 * MB, tenant="gold")
        assert lease.tenant == "gold"
        with pytest.raises(TenantQuotaExceeded) as excinfo:
            yield from controller.allocate(1, 6 * MB, tenant="gold")
        assert excinfo.value.tenant == "gold"
        assert excinfo.value.used == 4 * MB
        assert excinfo.value.quota == 8 * MB
        yield from controller.free(lease.region_id)
        # The freed capacity is available again.
        lease = yield from controller.allocate(1, 6 * MB, tenant="gold")
        yield from controller.free(lease.region_id)

    run(cluster, app())
    assert controller.quota_rejections == 1
    assert controller.tenant_usage("gold") == 0


def test_usage_charged_at_page_rounded_grant():
    cluster, controller = make()
    page = cluster.mn.page_spec.page_size

    def app():
        lease = yield from controller.allocate(1, 100, tenant="bronze")
        return lease

    lease = run(cluster, app())
    assert lease.size == page
    assert controller.tenant_usage("bronze") == page


def test_unknown_tenant_is_accounted_but_uncapped():
    cluster, controller = make()

    def app():
        lease = yield from controller.allocate(1, 64 * MB)
        return lease

    lease = run(cluster, app())
    assert lease.tenant == "default"
    assert controller.tenant_usage("default") == 64 * MB


def test_quota_is_typed_placement_error():
    from repro.distributed.controller import PlacementError

    assert issubclass(TenantQuotaExceeded, PlacementError)


def test_no_qos_means_no_quotas():
    cluster, controller = make(qos=None)

    def app():
        lease = yield from controller.allocate(1, 64 * MB, tenant="gold")
        return lease

    lease = run(cluster, app())
    assert lease.tenant == "gold"
    assert controller.tenant_usage("gold") == 64 * MB


def test_tenant_metrics_exported():
    cluster, controller = make(registry=True)

    def app():
        yield from controller.allocate(1, 4 * MB, tenant="gold")
        try:
            yield from controller.allocate(1, 6 * MB, tenant="gold")
        except TenantQuotaExceeded:
            pass

    run(cluster, app())
    snapshot = cluster.metrics.snapshot()
    assert snapshot["tenant.gold.used_bytes"] == 4 * MB
    assert snapshot["tenant.gold.quota_bytes"] == 8 * MB
    assert snapshot["tenant.gold.regions"] == 1
    assert snapshot["tenant.quota_rejections"] == 1
    assert snapshot["tenant.bronze.used_bytes"] == 0


def test_migration_keeps_tenant_charge():
    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          num_cns=1, num_mns=2, mn_capacity=1 << 30)
    controller = GlobalController(cluster.env, cluster.mns, qos=QOS)

    def app():
        lease = yield from controller.allocate(1, 4 * MB, tenant="gold")
        target = "mn1" if lease.mn == "mn0" else "mn0"
        ok = yield from controller._migrate(lease, target)
        assert ok
        assert lease.tenant == "gold"
        yield from controller.free(lease.region_id)

    run(cluster, app())
    assert controller.tenant_usage("gold") == 0

"""Tests for the global controller and distributed address space."""

import pytest

from repro.cluster import ClioCluster
from repro.distributed.controller import (
    GlobalController,
    LeaseLost,
    PlacementError,
)
from repro.distributed.space import DistributedAddressSpace

MB = 1 << 20
PAGE = 4 * MB


def make_platform(num_mns=2, mn_capacity=64 * MB, threshold=0.85):
    cluster = ClioCluster(num_cns=1, num_mns=num_mns,
                          mn_capacity=mn_capacity)
    controller = GlobalController(cluster.env, cluster.mns,
                                  pressure_threshold=threshold)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    return cluster, controller, space


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_allocate_places_on_least_utilized_board():
    cluster, controller, space = make_platform()

    def app():
        a = yield from space.alloc(8 * MB)
        b = yield from space.alloc(8 * MB)
        return a, b

    run_app(cluster, app())
    boards = set(space.placement().values())
    # Load balancing spreads the two regions across the two boards.
    assert boards == {"mn0", "mn1"}


def test_read_write_through_distributed_space():
    cluster, controller, space = make_platform()
    result = {}

    def app():
        dva = yield from space.alloc(8 * MB)
        yield from space.write(dva + 123, b"federated")
        result["data"] = yield from space.read(dva + 123, 9)

    run_app(cluster, app())
    assert result["data"] == b"federated"


def test_cross_region_access_rejected():
    cluster, controller, space = make_platform()

    def app():
        dva = yield from space.alloc(PAGE)
        with pytest.raises(ValueError):
            yield from space.read(dva + PAGE - 4, 8)
        with pytest.raises(ValueError):
            yield from space.read(dva - 100, 8)

    run_app(cluster, app())


def test_free_releases_board_memory():
    cluster, controller, space = make_platform()

    def app():
        dva = yield from space.alloc(8 * MB)
        mn = space.placement()[dva]
        board = next(b for b in cluster.mns if b.name == mn)
        before = board.page_table.entry_count
        yield from space.free(dva)
        assert board.page_table.entry_count < before
        with pytest.raises(KeyError):
            yield from space.free(dva)

    run_app(cluster, app())


def test_placement_error_when_all_boards_full():
    cluster, controller, space = make_platform(mn_capacity=16 * MB)

    def app():
        with pytest.raises(PlacementError):
            for _ in range(32):
                yield from space.alloc(8 * MB)

    run_app(cluster, app())


def test_rebalance_migrates_off_pressured_board():
    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    result = {}

    def app():
        # Force everything onto mn0 by allocating before mn1 is better:
        # fill mn0 beyond threshold with two regions.
        dva1 = yield from space.alloc(20 * MB)
        mn_first = space.placement()[dva1]
        # Write data we expect to survive migration.
        yield from space.write(dva1 + 5000, b"survives-migration")
        # Pressure the first board directly with extra ballast.
        board = next(b for b in cluster.mns if b.name == mn_first)
        response = yield from board.slow_path.handle_alloc(pid=1,
                                                           size=24 * MB)
        assert response.ok
        assert controller.pressured_boards() == [mn_first]

        moved = yield from controller.rebalance()
        result["moved"] = moved
        result["old_board"] = mn_first
        # The lease now points elsewhere; the CN's next access refreshes.
        result["data"] = yield from space.read(dva1 + 5000, 18)
        result["new_board"] = controller.lookup(
            space._mappings[0].region_id).mn

    run_app(cluster, app())
    assert result["moved"] >= 1
    assert result["data"] == b"survives-migration"
    assert result["new_board"] != result["old_board"]
    assert controller.migrations >= 1
    assert space.lease_refreshes >= 1


def test_lookup_unknown_region_rejected():
    cluster, controller, space = make_platform()
    with pytest.raises(KeyError):
        controller.lookup(999)


def test_invalid_construction():
    cluster = ClioCluster(num_mns=1, mn_capacity=64 * MB)
    with pytest.raises(ValueError):
        GlobalController(cluster.env, [])
    with pytest.raises(ValueError):
        GlobalController(cluster.env, cluster.mns, pressure_threshold=0.0)


# -- migration edge cases ----------------------------------------------------------


def test_migration_target_fills_midway_returns_gracefully():
    """If the target board fills between the capacity check and the
    alloc, the migration must fail soft: lease untouched on its source,
    no exception, failure counted."""
    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    result = {}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        source_board = next(b for b in cluster.mns if b.name == source)
        target_board = next(b for b in cluster.mns if b.name != source)
        ballast = yield from source_board.slow_path.handle_alloc(
            pid=1, size=24 * MB)
        assert ballast.ok
        lease = controller.lookup(space._mappings[0].region_id)
        # Sabotage: fill the target's page table (2x overprovisioned, so
        # 32 slots on a 16-page board) after _pick_target would approve
        # it, leaving fewer slots than the 5-page migration needs.
        for pid in (2, 3):
            filler = yield from target_board.slow_path.handle_alloc(
                pid=pid, size=56 * MB)
            assert filler.ok
        ok = yield from controller._migrate(lease, target_board.name)
        result["ok"] = ok
        result["lease_mn"] = lease.mn
        result["source"] = source

    run_app(cluster, app())
    assert result["ok"] is False
    assert result["lease_mn"] == result["source"]   # stayed put
    assert controller.failed_migrations == 1
    assert controller.migrations == 0


def test_rebalance_with_no_eligible_target_moves_nothing():
    cluster, controller, space = make_platform(num_mns=1,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    result = {}

    def app():
        yield from space.alloc(40 * MB)   # over threshold, nowhere to go
        assert controller.pressured_boards()
        moved = yield from controller.rebalance()
        result["moved"] = moved

    run_app(cluster, app())
    assert result["moved"] == 0
    assert controller.migrations == 0


def test_free_of_migrating_region_waits_for_move():
    """A free racing a migration must wait for the move to finish, then
    free the region on its *new* board — not the stale source VA."""
    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    env = cluster.env
    result = {}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        source_board = next(b for b in cluster.mns if b.name == source)
        target = next(b.name for b in cluster.mns if b.name != source)
        yield from source_board.slow_path.handle_alloc(pid=1, size=24 * MB)
        lease = controller.lookup(space._mappings[0].region_id)
        region_id = lease.region_id

        migration = env.process(controller._migrate(lease, target))
        # Let the migration start (past its CONTROLLER_NS think time).
        yield env.timeout(3_000)
        assert region_id in controller._migrating
        free = env.process(controller.free(region_id))
        yield migration
        yield free
        result["final_mn"] = lease.mn
        result["target"] = target
        result["region_id"] = region_id

    run_app(cluster, app())
    assert controller.migrations == 1
    assert result["final_mn"] == result["target"]
    with pytest.raises(KeyError):
        controller.lookup(result["region_id"])   # freed after the move


# -- health-aware placement --------------------------------------------------------


class _StaticHealth:
    """Health-monitor stand-in with a fixed belief set."""

    def __init__(self, dead=()):
        self.dead = set(dead)

    def is_alive(self, name):
        return name not in self.dead


def test_dead_board_excluded_from_placement():
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    health = _StaticHealth(dead={"mn0"})
    controller = GlobalController(cluster.env, cluster.mns, health=health)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    result = {}

    def app():
        a = yield from space.alloc(8 * MB)
        b = yield from space.alloc(8 * MB)
        result["boards"] = set(space.placement().values())

    run_app(cluster, app())
    assert result["boards"] == {"mn1"}   # mn0 never picked


def test_lookup_and_free_on_dead_board_raise_lease_lost():
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    health = _StaticHealth()
    controller = GlobalController(cluster.env, cluster.mns, health=health)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    result = {}

    def app():
        yield from space.alloc(8 * MB)
        lease = controller.lookup(space._mappings[0].region_id)
        health.dead.add(lease.mn)
        with pytest.raises(LeaseLost) as excinfo:
            controller.lookup(lease.region_id)
        result["exc"] = excinfo.value
        with pytest.raises(LeaseLost):
            yield from controller.free(lease.region_id)
        # The lease survives the outage: board recovers, lookup works.
        health.dead.clear()
        result["recovered"] = controller.lookup(lease.region_id)

    run_app(cluster, app())
    assert result["exc"].region_id == result["recovered"].region_id
    assert result["exc"].mn == result["recovered"].mn


def test_controller_without_health_uses_true_board_state():
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    controller = GlobalController(cluster.env, cluster.mns)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    result = {}

    def app():
        yield from space.alloc(8 * MB)
        region_id = space._mappings[0].region_id
        lease = controller.lookup(region_id)
        board = next(b for b in cluster.mns if b.name == lease.mn)
        board.crash()
        with pytest.raises(LeaseLost):
            controller.lookup(region_id)
        board.restart()
        result["lease"] = controller.lookup(region_id)
        result["region_id"] = region_id

    run_app(cluster, app())
    assert result["lease"].region_id == result["region_id"]


# -- free/migration/drain interleavings ---------------------------------------------


def test_double_free_racing_first_free_raises_key_error():
    """Two frees of the same region, the second issued while the first
    is still in its think time: the first claims the region, the second
    must fail typed with KeyError — not free twice, not hang."""
    cluster, controller, space = make_platform()
    env = cluster.env
    result = {}

    def app():
        yield from space.alloc(8 * MB)
        region_id = space._mappings[0].region_id

        def racer():
            try:
                yield from controller.free(region_id)
                return "freed"
            except KeyError:
                return "key_error"

        first = env.process(racer())
        second = env.process(racer())
        yield env.all_of([first, second])
        result["outcomes"] = sorted([first.value, second.value])

    run_app(cluster, app())
    assert result["outcomes"] == ["freed", "key_error"]


def test_free_waits_out_drain_migration_and_lands_on_new_board():
    """free() issued mid-drain: the region is in flight to another
    board; the free must wait for the copy and release the *new* home
    (the drain then completes with nothing left to move)."""
    from repro.cluster import ClioCluster
    from repro.rack import RackConfig

    config = RackConfig(boards=3, tors=2)
    cluster = ClioCluster(num_cns=1, mn_capacity=64 * MB, rack=config)
    controller = cluster.rack.controller
    membership = cluster.rack.membership
    env = cluster.env
    result = {}

    def app():
        leases = []
        for _ in range(6):
            leases.append((yield from controller.allocate(777, PAGE)))
        victim = next(b for b in ("mn0", "mn1", "mn2")
                      if controller.regions_on(b))
        doomed = next(l for l in leases if l.mn == victim)
        drain = env.process(membership.drain_board(victim))
        while doomed.region_id not in controller._migrating:
            yield env.timeout(500)
        free = env.process(controller.free(doomed.region_id))
        yield drain
        yield free
        result["victim"] = victim
        result["region_id"] = doomed.region_id

    cluster.run(until=env.process(app()))
    assert result["victim"] not in controller._boards
    with pytest.raises(KeyError):
        controller.lookup(result["region_id"])


# -- the migration write fence -------------------------------------------------------


def test_write_fence_blocks_writes_allows_reads_until_unfenced():
    from repro.clib.client import RemoteAccessError

    cluster, controller, space = make_platform()
    result = {}

    def app():
        dva = yield from space.alloc(8 * MB)
        yield from space.write(dva + 10, b"pre-fence")
        lease = controller.lookup(space._mappings[0].region_id)
        board = cluster.board(lease.mn)
        fenced = controller._fence_writes(board, lease)
        assert fenced   # at least one writable PTE got flipped
        with pytest.raises(RemoteAccessError):
            yield from space.write(dva + 10, b"blocked")
        # Reads pass through the fence.
        result["read"] = yield from space.read(dva + 10, 9)
        controller._unfence_writes(board, fenced)
        yield from space.write(dva + 10, b"post-slot")
        result["after"] = yield from space.read(dva + 10, 9)

    run_app(cluster, app())
    assert result["read"] == b"pre-fence"
    assert result["after"] == b"post-slot"


def test_migration_fences_concurrent_writes_and_loses_no_data():
    """A writer hammering a region during its live migration: every
    write either lands (pre-fence, and is copied) or fails typed
    (fenced); the post-migration state equals the last acked write."""
    from repro.clib.client import RemoteAccessError

    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    env = cluster.env
    result = {"acked": 0, "fenced": 0}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        target = next(b.name for b in cluster.mns if b.name != source)
        lease = controller.lookup(space._mappings[0].region_id)
        migration = env.process(controller._migrate(lease, target))
        last_acked = None
        serial = 0
        while migration.is_alive:
            payload = serial.to_bytes(8, "little")
            try:
                yield from space.write(dva + 100, payload)
                result["acked"] += 1
                last_acked = payload
            except RemoteAccessError:
                result["fenced"] += 1
            serial += 1
            yield env.timeout(1_000)
        yield migration
        assert migration.value is True
        result["final"] = yield from space.read(dva + 100, 8)
        result["expected"] = last_acked
        result["new_mn"] = controller.lookup(lease.region_id).mn
        result["target"] = target

    run_app(cluster, app())
    assert result["new_mn"] == result["target"]
    assert result["acked"] > 0
    assert result["fenced"] > 0          # the fence window really closed
    assert result["final"] == result["expected"]


# -- incremental pick ordering -------------------------------------------------------


def _linear_scan_pick(controller, size, exclude=None,
                      below_threshold=False):
    """The former O(n log n) reference: stable sort by (util, index)."""
    ordered = sorted(
        controller._boards.values(),
        key=lambda s: (controller._utilization(s.board.name), s.index))
    for state in ordered:
        name = state.board.name
        if name == exclude or name in controller.draining:
            continue
        if not controller._alive(name):
            continue
        if (below_threshold and controller._utilization(name)
                >= controller.pressure_threshold):
            continue
        if controller._fits(name, size):
            return name
    return None


def test_heap_pick_matches_linear_scan_under_churn():
    """The lazy heap must pick exactly what the old full sort picked,
    through allocations, frees, external (behind-the-back) allocations,
    draining marks, and board churn."""
    cluster = ClioCluster(num_cns=1, num_mns=4, mn_capacity=64 * MB)
    controller = GlobalController(cluster.env, cluster.mns)
    env = cluster.env

    def app():
        regions = []
        for step in range(14):
            size = (4 + (step % 3) * 8) * MB
            expected = _linear_scan_pick(controller, size)
            lease = yield from controller.allocate(777, size)
            assert lease.mn == expected, (step, lease.mn, expected)
            regions.append(lease.region_id)
            if step == 5:
                # External ballast the heap cannot have observed.
                yield from cluster.board("mn2").slow_path.handle_alloc(
                    pid=55, size=16 * MB)
            if step == 9:
                controller.draining.add("mn0")
            if step == 11:
                controller.draining.discard("mn0")
                yield from controller.free(regions.pop(0))
            if step == 12:
                yield from controller.free(regions.pop(0))
        # Exclusion and threshold variants agree too.
        for size in (4 * MB, 12 * MB):
            assert (controller._pick_board(size, exclude="mn1")
                    == _linear_scan_pick(controller, size, exclude="mn1"))
            assert (controller._pick_board(size, below_threshold=True)
                    == _linear_scan_pick(controller, size,
                                         below_threshold=True))

    cluster.run(until=env.process(app()))

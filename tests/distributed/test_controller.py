"""Tests for the global controller and distributed address space."""

import pytest

from repro.cluster import ClioCluster
from repro.distributed.controller import (
    GlobalController,
    LeaseLost,
    PlacementError,
)
from repro.distributed.space import DistributedAddressSpace

MB = 1 << 20
PAGE = 4 * MB


def make_platform(num_mns=2, mn_capacity=64 * MB, threshold=0.85):
    cluster = ClioCluster(num_cns=1, num_mns=num_mns,
                          mn_capacity=mn_capacity)
    controller = GlobalController(cluster.env, cluster.mns,
                                  pressure_threshold=threshold)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    return cluster, controller, space


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_allocate_places_on_least_utilized_board():
    cluster, controller, space = make_platform()

    def app():
        a = yield from space.alloc(8 * MB)
        b = yield from space.alloc(8 * MB)
        return a, b

    run_app(cluster, app())
    boards = set(space.placement().values())
    # Load balancing spreads the two regions across the two boards.
    assert boards == {"mn0", "mn1"}


def test_read_write_through_distributed_space():
    cluster, controller, space = make_platform()
    result = {}

    def app():
        dva = yield from space.alloc(8 * MB)
        yield from space.write(dva + 123, b"federated")
        result["data"] = yield from space.read(dva + 123, 9)

    run_app(cluster, app())
    assert result["data"] == b"federated"


def test_cross_region_access_rejected():
    cluster, controller, space = make_platform()

    def app():
        dva = yield from space.alloc(PAGE)
        with pytest.raises(ValueError):
            yield from space.read(dva + PAGE - 4, 8)
        with pytest.raises(ValueError):
            yield from space.read(dva - 100, 8)

    run_app(cluster, app())


def test_free_releases_board_memory():
    cluster, controller, space = make_platform()

    def app():
        dva = yield from space.alloc(8 * MB)
        mn = space.placement()[dva]
        board = next(b for b in cluster.mns if b.name == mn)
        before = board.page_table.entry_count
        yield from space.free(dva)
        assert board.page_table.entry_count < before
        with pytest.raises(KeyError):
            yield from space.free(dva)

    run_app(cluster, app())


def test_placement_error_when_all_boards_full():
    cluster, controller, space = make_platform(mn_capacity=16 * MB)

    def app():
        with pytest.raises(PlacementError):
            for _ in range(32):
                yield from space.alloc(8 * MB)

    run_app(cluster, app())


def test_rebalance_migrates_off_pressured_board():
    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    result = {}

    def app():
        # Force everything onto mn0 by allocating before mn1 is better:
        # fill mn0 beyond threshold with two regions.
        dva1 = yield from space.alloc(20 * MB)
        mn_first = space.placement()[dva1]
        # Write data we expect to survive migration.
        yield from space.write(dva1 + 5000, b"survives-migration")
        # Pressure the first board directly with extra ballast.
        board = next(b for b in cluster.mns if b.name == mn_first)
        response = yield from board.slow_path.handle_alloc(pid=1,
                                                           size=24 * MB)
        assert response.ok
        assert controller.pressured_boards() == [mn_first]

        moved = yield from controller.rebalance()
        result["moved"] = moved
        result["old_board"] = mn_first
        # The lease now points elsewhere; the CN's next access refreshes.
        result["data"] = yield from space.read(dva1 + 5000, 18)
        result["new_board"] = controller.lookup(
            space._mappings[0].region_id).mn

    run_app(cluster, app())
    assert result["moved"] >= 1
    assert result["data"] == b"survives-migration"
    assert result["new_board"] != result["old_board"]
    assert controller.migrations >= 1
    assert space.lease_refreshes >= 1


def test_lookup_unknown_region_rejected():
    cluster, controller, space = make_platform()
    with pytest.raises(KeyError):
        controller.lookup(999)


def test_invalid_construction():
    cluster = ClioCluster(num_mns=1, mn_capacity=64 * MB)
    with pytest.raises(ValueError):
        GlobalController(cluster.env, [])
    with pytest.raises(ValueError):
        GlobalController(cluster.env, cluster.mns, pressure_threshold=0.0)


# -- migration edge cases ----------------------------------------------------------


def test_migration_target_fills_midway_returns_gracefully():
    """If the target board fills between the capacity check and the
    alloc, the migration must fail soft: lease untouched on its source,
    no exception, failure counted."""
    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    result = {}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        source_board = next(b for b in cluster.mns if b.name == source)
        target_board = next(b for b in cluster.mns if b.name != source)
        ballast = yield from source_board.slow_path.handle_alloc(
            pid=1, size=24 * MB)
        assert ballast.ok
        lease = controller.lookup(space._mappings[0].region_id)
        # Sabotage: fill the target's page table (2x overprovisioned, so
        # 32 slots on a 16-page board) after _pick_target would approve
        # it, leaving fewer slots than the 5-page migration needs.
        for pid in (2, 3):
            filler = yield from target_board.slow_path.handle_alloc(
                pid=pid, size=56 * MB)
            assert filler.ok
        ok = yield from controller._migrate(lease, target_board.name)
        result["ok"] = ok
        result["lease_mn"] = lease.mn
        result["source"] = source

    run_app(cluster, app())
    assert result["ok"] is False
    assert result["lease_mn"] == result["source"]   # stayed put
    assert controller.failed_migrations == 1
    assert controller.migrations == 0


def test_rebalance_with_no_eligible_target_moves_nothing():
    cluster, controller, space = make_platform(num_mns=1,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    result = {}

    def app():
        yield from space.alloc(40 * MB)   # over threshold, nowhere to go
        assert controller.pressured_boards()
        moved = yield from controller.rebalance()
        result["moved"] = moved

    run_app(cluster, app())
    assert result["moved"] == 0
    assert controller.migrations == 0


def test_free_of_migrating_region_waits_for_move():
    """A free racing a migration must wait for the move to finish, then
    free the region on its *new* board — not the stale source VA."""
    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    env = cluster.env
    result = {}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        source_board = next(b for b in cluster.mns if b.name == source)
        target = next(b.name for b in cluster.mns if b.name != source)
        yield from source_board.slow_path.handle_alloc(pid=1, size=24 * MB)
        lease = controller.lookup(space._mappings[0].region_id)
        region_id = lease.region_id

        migration = env.process(controller._migrate(lease, target))
        # Let the migration start (past its CONTROLLER_NS think time).
        yield env.timeout(3_000)
        assert region_id in controller._migrating
        free = env.process(controller.free(region_id))
        yield migration
        yield free
        result["final_mn"] = lease.mn
        result["target"] = target
        result["region_id"] = region_id

    run_app(cluster, app())
    assert controller.migrations == 1
    assert result["final_mn"] == result["target"]
    with pytest.raises(KeyError):
        controller.lookup(result["region_id"])   # freed after the move


# -- health-aware placement --------------------------------------------------------


class _StaticHealth:
    """Health-monitor stand-in with a fixed belief set."""

    def __init__(self, dead=()):
        self.dead = set(dead)

    def is_alive(self, name):
        return name not in self.dead


def test_dead_board_excluded_from_placement():
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    health = _StaticHealth(dead={"mn0"})
    controller = GlobalController(cluster.env, cluster.mns, health=health)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    result = {}

    def app():
        a = yield from space.alloc(8 * MB)
        b = yield from space.alloc(8 * MB)
        result["boards"] = set(space.placement().values())

    run_app(cluster, app())
    assert result["boards"] == {"mn1"}   # mn0 never picked


def test_lookup_and_free_on_dead_board_raise_lease_lost():
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    health = _StaticHealth()
    controller = GlobalController(cluster.env, cluster.mns, health=health)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    result = {}

    def app():
        yield from space.alloc(8 * MB)
        lease = controller.lookup(space._mappings[0].region_id)
        health.dead.add(lease.mn)
        with pytest.raises(LeaseLost) as excinfo:
            controller.lookup(lease.region_id)
        result["exc"] = excinfo.value
        with pytest.raises(LeaseLost):
            yield from controller.free(lease.region_id)
        # The lease survives the outage: board recovers, lookup works.
        health.dead.clear()
        result["recovered"] = controller.lookup(lease.region_id)

    run_app(cluster, app())
    assert result["exc"].region_id == result["recovered"].region_id
    assert result["exc"].mn == result["recovered"].mn


def test_controller_without_health_uses_true_board_state():
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    controller = GlobalController(cluster.env, cluster.mns)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    result = {}

    def app():
        yield from space.alloc(8 * MB)
        region_id = space._mappings[0].region_id
        lease = controller.lookup(region_id)
        board = next(b for b in cluster.mns if b.name == lease.mn)
        board.crash()
        with pytest.raises(LeaseLost):
            controller.lookup(region_id)
        board.restart()
        result["lease"] = controller.lookup(region_id)
        result["region_id"] = region_id

    run_app(cluster, app())
    assert result["lease"].region_id == result["region_id"]

"""Tests for the global controller and distributed address space."""

import pytest

from repro.cluster import ClioCluster
from repro.distributed.controller import GlobalController, PlacementError
from repro.distributed.space import DistributedAddressSpace

MB = 1 << 20
PAGE = 4 * MB


def make_platform(num_mns=2, mn_capacity=64 * MB, threshold=0.85):
    cluster = ClioCluster(num_cns=1, num_mns=num_mns,
                          mn_capacity=mn_capacity)
    controller = GlobalController(cluster.env, cluster.mns,
                                  pressure_threshold=threshold)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    return cluster, controller, space


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_allocate_places_on_least_utilized_board():
    cluster, controller, space = make_platform()

    def app():
        a = yield from space.alloc(8 * MB)
        b = yield from space.alloc(8 * MB)
        return a, b

    run_app(cluster, app())
    boards = set(space.placement().values())
    # Load balancing spreads the two regions across the two boards.
    assert boards == {"mn0", "mn1"}


def test_read_write_through_distributed_space():
    cluster, controller, space = make_platform()
    result = {}

    def app():
        dva = yield from space.alloc(8 * MB)
        yield from space.write(dva + 123, b"federated")
        result["data"] = yield from space.read(dva + 123, 9)

    run_app(cluster, app())
    assert result["data"] == b"federated"


def test_cross_region_access_rejected():
    cluster, controller, space = make_platform()

    def app():
        dva = yield from space.alloc(PAGE)
        with pytest.raises(ValueError):
            yield from space.read(dva + PAGE - 4, 8)
        with pytest.raises(ValueError):
            yield from space.read(dva - 100, 8)

    run_app(cluster, app())


def test_free_releases_board_memory():
    cluster, controller, space = make_platform()

    def app():
        dva = yield from space.alloc(8 * MB)
        mn = space.placement()[dva]
        board = next(b for b in cluster.mns if b.name == mn)
        before = board.page_table.entry_count
        yield from space.free(dva)
        assert board.page_table.entry_count < before
        with pytest.raises(KeyError):
            yield from space.free(dva)

    run_app(cluster, app())


def test_placement_error_when_all_boards_full():
    cluster, controller, space = make_platform(mn_capacity=16 * MB)

    def app():
        with pytest.raises(PlacementError):
            for _ in range(32):
                yield from space.alloc(8 * MB)

    run_app(cluster, app())


def test_rebalance_migrates_off_pressured_board():
    cluster, controller, space = make_platform(num_mns=2,
                                               mn_capacity=64 * MB,
                                               threshold=0.5)
    result = {}

    def app():
        # Force everything onto mn0 by allocating before mn1 is better:
        # fill mn0 beyond threshold with two regions.
        dva1 = yield from space.alloc(20 * MB)
        mn_first = space.placement()[dva1]
        # Write data we expect to survive migration.
        yield from space.write(dva1 + 5000, b"survives-migration")
        # Pressure the first board directly with extra ballast.
        board = next(b for b in cluster.mns if b.name == mn_first)
        response = yield from board.slow_path.handle_alloc(pid=1,
                                                           size=24 * MB)
        assert response.ok
        assert controller.pressured_boards() == [mn_first]

        moved = yield from controller.rebalance()
        result["moved"] = moved
        result["old_board"] = mn_first
        # The lease now points elsewhere; the CN's next access refreshes.
        result["data"] = yield from space.read(dva1 + 5000, 18)
        result["new_board"] = controller.lookup(
            space._mappings[0].region_id).mn

    run_app(cluster, app())
    assert result["moved"] >= 1
    assert result["data"] == b"survives-migration"
    assert result["new_board"] != result["old_board"]
    assert controller.migrations >= 1
    assert space.lease_refreshes >= 1


def test_lookup_unknown_region_rejected():
    cluster, controller, space = make_platform()
    with pytest.raises(KeyError):
        controller.lookup(999)


def test_invalid_construction():
    cluster = ClioCluster(num_mns=1, mn_capacity=64 * MB)
    with pytest.raises(ValueError):
        GlobalController(cluster.env, [])
    with pytest.raises(ValueError):
        GlobalController(cluster.env, cluster.mns, pressure_threshold=0.0)

"""Data readback across region migration, checked by the shadow oracle.

The oracle follows a region when the global controller moves it between
boards (``on_region_migrated`` → ``region_remapped``): bytes written
before the move must read back identically after it — from the new
board, under the same distributed address — with zero mismatches and
every board invariant intact throughout the copy.
"""

from repro.cluster import ClioCluster
from repro.distributed.controller import GlobalController
from repro.distributed.space import DistributedAddressSpace

MB = 1 << 20


def make_platform(threshold=0.5):
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    verifier = cluster.enable_verification()
    controller = GlobalController(cluster.env, cluster.mns,
                                  pressure_threshold=threshold)
    # The controller is built outside the cluster, so it is wired by hand
    # (enable_verification only reaches components the cluster owns).
    controller.verifier = verifier
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    return cluster, controller, space, verifier


def pressure_board(cluster, name, app_steps):
    """Ballast alloc pushing ``name`` over the migration threshold."""
    board = next(b for b in cluster.mns if b.name == name)

    def ballast():
        response = yield from board.slow_path.handle_alloc(pid=1,
                                                           size=24 * MB)
        assert response.ok

    app_steps.append(ballast())


def test_migrated_data_reads_back_clean_under_oracle():
    cluster, controller, space, verifier = make_platform()
    payload = bytes(range(1, 65))
    result = {}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        yield from space.write(dva + 5000, payload)
        yield from space.write(dva + 1 * MB, b"second-chunk")
        # Verify the pre-migration readback first.
        pre = yield from space.read(dva + 5000, len(payload))
        assert pre == payload
        # Pressure the source board and force the move.
        board = next(b for b in cluster.mns if b.name == source)
        response = yield from board.slow_path.handle_alloc(pid=1,
                                                           size=24 * MB)
        assert response.ok
        moved = yield from controller.rebalance()
        result["moved"] = moved
        result["source"] = source
        result["target"] = controller.lookup(
            space._mappings[0].region_id).mn
        # Readback after the move goes to the new board.
        result["data"] = yield from space.read(dva + 5000, len(payload))
        result["data2"] = yield from space.read(dva + 1 * MB, 12)
        result["zeros"] = yield from space.read(dva + 2 * MB, 16)

    cluster.run(until=cluster.env.process(app()))

    assert result["moved"] >= 1
    assert result["target"] != result["source"]
    assert result["data"] == payload
    assert result["data2"] == b"second-chunk"
    assert result["zeros"] == b"\x00" * 16

    report = verifier.report()
    assert report["read_mismatches"] == 0, report["mismatch_details"]
    assert report["invariant_violations"] == 0, report["violations"]
    # The oracle really moved the mirror: post-move reads were checked.
    assert report["reads_checked"] >= 4
    assert report["bytes_checked"] > 0


def test_write_after_migration_checked_on_new_board():
    cluster, controller, space, verifier = make_platform()
    result = {}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        yield from space.write(dva, b"before-move")
        board = next(b for b in cluster.mns if b.name == source)
        yield from board.slow_path.handle_alloc(pid=1, size=24 * MB)
        yield from controller.rebalance()
        # Overwrite on the new board, read the fresh value back.
        yield from space.write(dva, b"after-move!")
        result["data"] = yield from space.read(dva, 11)

    cluster.run(until=cluster.env.process(app()))
    assert result["data"] == b"after-move!"
    report = verifier.report()
    assert report["read_mismatches"] == 0, report["mismatch_details"]
    assert controller.migrations >= 1


def test_migration_with_detached_verifier_unaffected():
    # Control: the same flow with no verifier exercises the `is None`
    # branches on the controller hook.
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=64 * MB)
    controller = GlobalController(cluster.env, cluster.mns,
                                  pressure_threshold=0.5)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=777)
    result = {}

    def app():
        dva = yield from space.alloc(20 * MB)
        source = space.placement()[dva]
        yield from space.write(dva, b"plain")
        board = next(b for b in cluster.mns if b.name == source)
        yield from board.slow_path.handle_alloc(pid=1, size=24 * MB)
        yield from controller.rebalance()
        result["data"] = yield from space.read(dva, 5)

    cluster.run(until=cluster.env.process(app()))
    assert result["data"] == b"plain"
    assert controller.migrations >= 1

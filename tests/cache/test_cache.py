"""repro.cache unit + golden tests: line states, coherence, eviction.

The cached data path gets the same golden treatment as repro.batch:
``GOLDEN_CACHED`` pins a two-CN write-back run bit-for-bit, and the
cache-off invariance tests prove that merely having the subsystem in
the tree (even enabled-then-disabled in the same process) leaves the
pinned uncached goldens untouched.
"""

import pytest

from repro.cluster import ClioCluster
from repro.params import KB, MB

from tests.faults.test_chaos import GOLDEN_NO_FAULT, no_fault_fingerprint

_PID = 9602


def make_cached_cluster(policy="through", num_cns=2, num_mns=1,
                        capacity_lines=8, line_bytes=512, eviction="lru",
                        seed=0, partitioned=False):
    cluster = ClioCluster(seed=seed, num_cns=num_cns, num_mns=num_mns,
                          mn_capacity=256 * MB, partitioned=partitioned)
    cluster.enable_caching(policy=policy, line_bytes=line_bytes,
                           capacity_lines=capacity_lines, eviction=eviction)
    return cluster


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def shared_threads(cluster, mn="mn0"):
    return [cluster.cn(i).process(mn, pid=_PID).thread()
            for i in range(len(cluster.cns))]


def alloc_region(cluster, thread, size=64 * KB):
    holder = {}

    def setup():
        holder["va"] = yield from thread.ralloc(size)

    run_app(cluster, setup())
    return holder["va"]


# -- basic hit/miss ------------------------------------------------------------


def test_read_miss_then_hit():
    cluster = make_cached_cluster()
    thread, _ = shared_threads(cluster)
    va = alloc_region(cluster, thread)
    cache = cluster.cn(0).cache
    out = {}

    def app():
        yield from thread.rwrite(va, b"x" * 64)
        out["first"] = yield from thread.rread(va, 64)
        before = cluster.cn(0).transport.requests_issued
        out["second"] = yield from thread.rread(va, 64)
        out["extra_requests"] = (cluster.cn(0).transport.requests_issued
                                 - before)

    run_app(cluster, app())
    assert out["first"] == b"x" * 64
    assert out["second"] == b"x" * 64
    # The second read is a pure local hit: zero network traffic.
    assert out["extra_requests"] == 0
    assert cache.hits >= 1 and cache.misses >= 1 and cache.fills >= 1


def test_cache_metrics_registered():
    cluster = make_cached_cluster()
    names = set(cluster.metrics.snapshot())
    for suffix in ("hits", "misses", "evictions", "invalidations",
                   "hit_rate"):
        assert f"cache.cn0.{suffix}" in names
    assert "cache.dir.requests_served" in names


# -- write-through -------------------------------------------------------------


def test_write_through_lands_on_mn_immediately():
    cluster = make_cached_cluster(policy="through")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    out = {}

    def app():
        yield from t0.rwrite(va, b"W" * 64)
        # cn1 fills from the MN: write-through means the MN already has
        # the bytes; no recall of cn0 is needed to read them.
        out["read"] = yield from t1.rread(va, 64)

    run_app(cluster, app())
    assert out["read"] == b"W" * 64
    assert cluster.cn(0).cache.write_throughs == 1
    assert cluster.cn(0).cache.writebacks == 0


def test_write_through_invalidates_other_sharers():
    cluster = make_cached_cluster(policy="through")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    out = {}

    def app():
        yield from t1.rwrite(va, b"old" + b"." * 61)
        yield from t0.rread(va, 64)            # cn0 now shares the line
        yield from t1.rwrite(va, b"new" + b"." * 61)
        out["read"] = yield from t0.rread(va, 64)

    run_app(cluster, app())
    assert out["read"][:3] == b"new"
    assert cluster.cn(0).cache.invalidations >= 1
    assert cluster.cache_dir.recalls >= 1


# -- write-back ----------------------------------------------------------------


def test_write_back_owner_hit_is_zero_rtt():
    cluster = make_cached_cluster(policy="back")
    thread, _ = shared_threads(cluster)
    va = alloc_region(cluster, thread)
    cache = cluster.cn(0).cache
    out = {}

    def app():
        yield from thread.rwrite(va, b"a" * 64)   # ownership grant
        yield cluster.env.timeout(50_000)         # let the wend settle
        before = cluster.cn(0).transport.requests_issued
        yield from thread.rwrite(va, b"b" * 64)   # owner hit
        out["extra_requests"] = (cluster.cn(0).transport.requests_issued
                                 - before)
        out["read"] = yield from thread.rread(va, 64)

    run_app(cluster, app())
    assert out["extra_requests"] == 0, "owner-hit write must not touch the net"
    assert out["read"] == b"b" * 64
    assert cache.write_hits == 1 and cache.write_fills == 1


def test_write_back_dirty_line_recalled_by_reader():
    cluster = make_cached_cluster(policy="back")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    out = {}

    def app():
        yield from t0.rwrite(va, b"D" * 64)
        out["read"] = yield from t1.rread(va, 64)

    run_app(cluster, app())
    # cn1's fill forced cn0 to flush its dirty line first.
    assert out["read"] == b"D" * 64
    assert cluster.cn(0).cache.writebacks == 1
    assert cluster.cache_dir.downgrades >= 1


def test_write_back_ownership_ping_pong():
    cluster = make_cached_cluster(policy="back")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    out = {}

    def app():
        yield from t0.rwrite(va, b"0" * 64)
        yield from t1.rwrite(va, b"1" * 64)
        yield from t0.rwrite(va, b"2" * 64)
        out["r0"] = yield from t0.rread(va, 64)
        out["r1"] = yield from t1.rread(va, 64)

    run_app(cluster, app())
    assert out["r0"] == b"2" * 64
    assert out["r1"] == b"2" * 64
    assert cluster.cache_dir.write_txns == 3


# -- eviction ------------------------------------------------------------------


def test_lru_eviction_picks_coldest_line():
    cluster = make_cached_cluster(capacity_lines=2, eviction="lru")
    thread, _ = shared_threads(cluster)
    va = alloc_region(cluster, thread)
    cache = cluster.cn(0).cache
    line = cache.line_bytes

    def app():
        yield from thread.rread(va, 8)               # A
        yield from thread.rread(va + line, 8)        # B
        yield from thread.rread(va, 8)               # touch A
        yield from thread.rread(va + 2 * line, 8)    # C evicts B

    run_app(cluster, app())
    assert cache.evictions == 1
    resident = set(cache._lru)
    assert ("mn0", _PID, va) in resident
    assert ("mn0", _PID, va + line) not in resident
    assert ("mn0", _PID, va + 2 * line) in resident


def test_clock_eviction_respects_reference_bit():
    cluster = make_cached_cluster(capacity_lines=2, eviction="clock")
    thread, _ = shared_threads(cluster)
    va = alloc_region(cluster, thread)
    cache = cluster.cn(0).cache
    line = cache.line_bytes
    out = {}

    def app():
        yield from thread.rwrite(va, b"A" * 8)
        yield from thread.rread(va + line, 8)
        yield from thread.rread(va + 2 * line, 8)    # forces an eviction
        out["read"] = yield from thread.rread(va, 8)

    run_app(cluster, app())
    assert cache.evictions >= 1
    assert out["read"] in (b"A" * 8,)


def test_dirty_eviction_flushes_before_drop():
    cluster = make_cached_cluster(policy="back", capacity_lines=2)
    thread, _ = shared_threads(cluster)
    va = alloc_region(cluster, thread)
    cache = cluster.cn(0).cache
    line = cache.line_bytes
    out = {}

    def app():
        yield from thread.rwrite(va, b"E" * 64)          # dirty line A
        yield from thread.rread(va + line, 8)
        yield from thread.rread(va + 2 * line, 8)        # evicts something
        yield from thread.rread(va + 3 * line, 8)        # evicts more
        out["read"] = yield from thread.rread(va, 64)    # refill A

    run_app(cluster, app())
    assert out["read"] == b"E" * 64
    assert cache.writebacks >= 1


# -- bypass paths stay coherent ------------------------------------------------


def test_large_read_bypass_sees_dirty_lines():
    cluster = make_cached_cluster(policy="back")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    line = cluster.cn(0).cache.line_bytes
    out = {}

    def app():
        yield from t0.rwrite(va + 64, b"Z" * 64)     # dirty, cached on cn0
        # 4 lines at once: larger than a line, so cn1 bypasses the cache;
        # the pre-read sync must flush cn0's dirty bytes first.
        out["read"] = yield from t1.rread(va, 4 * line)

    run_app(cluster, app())
    assert out["read"][64:128] == b"Z" * 64
    assert cluster.cn(0).cache.writebacks == 1


def test_large_write_bypass_recalls_cached_copies():
    cluster = make_cached_cluster(policy="back")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    line = cluster.cn(0).cache.line_bytes
    out = {}

    def app():
        yield from t0.rread(va, 64)                   # cn0 caches line 0
        yield from t1.rwrite(va, b"Y" * (2 * line))   # bypass write
        out["read"] = yield from t0.rread(va, 64)     # must refill

    run_app(cluster, app())
    assert out["read"] == b"Y" * 64
    assert cluster.cn(0).cache.invalidations >= 1


def test_atomic_sees_cached_dirty_word():
    cluster = make_cached_cluster(policy="back")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    out = {}

    def app():
        yield from t0.rwrite(va, (41).to_bytes(8, "little"))
        out["faa"] = yield from t1.rfaa(va, 1)
        out["read"] = yield from t0.rread(va, 8)

    run_app(cluster, app())
    # The atomic's write guard recalled cn0's dirty line (flushing 41),
    # the FAA returned the pre-value, and cn0's re-read sees 42.
    assert out["faa"] == 41
    assert int.from_bytes(out["read"], "little") == 42


def test_rfree_recalls_cached_lines():
    cluster = make_cached_cluster(policy="back")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)

    def app():
        yield from t0.rwrite(va, b"F" * 64)
        yield from t1.rread(va, 64)
        yield from t0.rfree(va)

    run_app(cluster, app())
    # Freeing the region recalled every cached copy; nothing tracked.
    assert cluster.cache_dir._lines == {}
    assert (cluster.cn(0).cache.invalidations
            + cluster.cn(1).cache.invalidations) >= 2


# -- enable/disable + departure ------------------------------------------------


def test_disable_caching_drains_dirty_lines():
    cluster = make_cached_cluster(policy="back")
    t0, t1 = shared_threads(cluster)
    va = alloc_region(cluster, t0)
    out = {}

    def app():
        yield from t0.rwrite(va, b"G" * 64)

    run_app(cluster, app())
    drains = cluster.disable_caching(drain=True)
    cluster.run_all(drains)
    assert cluster.cn(0).cache.writebacks == 1
    assert cluster.cache_dir._lines == {}

    def check():
        # Interception is off: this read goes straight to the MN, and
        # the flush above means the MN already has the bytes.
        out["read"] = yield from t1.rread(va, 64)

    run_app(cluster, check())
    assert out["read"] == b"G" * 64


def test_enable_caching_is_idempotent():
    cluster = make_cached_cluster()
    first = cluster.cache_dir
    assert cluster.enable_caching() is first
    cluster.disable_caching(drain=False)
    assert cluster.cn(0).cache.enabled is False
    cluster.enable_caching()
    assert cluster.cn(0).cache.enabled is True


def test_line_bytes_must_divide_page_size():
    cluster = ClioCluster(seed=0, mn_capacity=256 * MB)
    with pytest.raises(ValueError):
        cluster.enable_caching(line_bytes=3 * KB)


def test_migration_recalls_cached_lines():
    from repro.distributed.controller import GlobalController
    cluster = make_cached_cluster(policy="back", num_mns=2)
    ctrl = GlobalController(cluster.env, cluster.mns)
    ctrl.cache_directory = cluster.cache_dir
    env = cluster.env
    out = {}

    def app():
        lease = yield from ctrl.allocate(_PID, 64 * KB)
        t0 = cluster.cn(0).process(lease.mn, pid=_PID).thread()
        t1 = cluster.cn(1).process(lease.mn, pid=_PID).thread()
        yield from t0.rwrite(lease.va, b"M" * 64)
        yield from t1.rwrite(lease.va + 8 * KB, b"N" * 64)
        assert (yield from ctrl._migrate(lease, "mn1"))
        fresh = cluster.cn(0).process(lease.mn, pid=_PID).thread()
        out["a"] = yield from fresh.rread(lease.va, 64)
        out["b"] = yield from fresh.rread(lease.va + 8 * KB, 64)

    env.run(until=env.process(app()))
    assert out["a"] == b"M" * 64
    assert out["b"] == b"N" * 64
    # Both dirty lines were flushed to the source before the copy.
    assert (cluster.cn(0).cache.writebacks
            + cluster.cn(1).cache.writebacks) == 2
    assert cluster.cache_dir.freezes == 1


# -- golden fingerprints -------------------------------------------------------

#: Two CNs, one shared 64 KB region, deterministic 120-op mix each,
#: write-back, 8x512B lines (pinned 2026-08: the first cached run).
#: Same seed + params must stay bit-identical; move it only with a
#: deliberate re-pin.
GOLDEN_CACHED = (611396, (570507, 611396), 191, (214, 211), (0, 0),
                 ((41, 39, 39, 24, 51, 38), (38, 42, 41, 25, 45, 33)),
                 (234, 81, 77, 57, 39, 96))


def cached_fingerprint(policy="back", partitioned=False, seed=4321):
    cluster = make_cached_cluster(policy=policy, partitioned=partitioned,
                                  seed=seed, capacity_lines=8,
                                  line_bytes=512)
    env = cluster.env
    done = []
    ready = env.event()
    shared = {}

    def worker(index):
        thread = cluster.cn(index).process("mn0", pid=_PID).thread()
        if index == 0:
            va = yield from thread.ralloc(64 * KB)
            shared["va"] = va
            ready.succeed()
        else:
            yield ready
        va = shared["va"]
        for op in range(120):
            # 3 of 4 ops land in a shared 2 KB hot set (4 lines, so they
            # hit and collide across CNs); the rest sweep the full 64 KB
            # region to keep the evictor busy.
            span = 2 * KB if op % 4 else 64 * KB
            offset = (((op * 7919 + index * 104729) % span) // 64) * 64
            offset = min(offset, 64 * KB - 64)
            if (op + index) % 3 == 0:
                yield from thread.rwrite(va + offset,
                                         bytes([op % 256]) * 64)
            else:
                yield from thread.rread(va + offset, 64)
        done.append(env.now)

    procs = [env.process(worker(0)), env.process(worker(1))]
    cluster.run(until=env.all_of(procs))
    directory = cluster.cache_dir
    return (env.now, tuple(sorted(done)),
            cluster.mn.requests_served,
            tuple(cn.transport.requests_completed for cn in cluster.cns),
            tuple(cn.transport.total_retries for cn in cluster.cns),
            tuple((node.cache.hits, node.cache.misses, node.cache.fills,
                   node.cache.evictions, node.cache.invalidations,
                   node.cache.writebacks) for node in cluster.cns),
            (directory.requests_served, directory.fills,
             directory.write_txns, directory.recalls,
             directory.downgrades, directory.invals_sent))


def test_cached_run_is_bit_identical():
    assert cached_fingerprint(seed=4321) == cached_fingerprint(seed=4321)
    assert cached_fingerprint(seed=4321) != cached_fingerprint(seed=4322)


def test_cached_flat_matches_partitioned():
    assert (cached_fingerprint(partitioned=False)
            == cached_fingerprint(partitioned=True))


def test_cached_run_matches_golden_fingerprint():
    assert cached_fingerprint() == GOLDEN_CACHED


def test_write_through_run_is_bit_identical():
    assert (cached_fingerprint(policy="through")
            == cached_fingerprint(policy="through"))


# -- cache-off invariance ------------------------------------------------------


def test_cache_off_golden_unchanged_flat():
    # Run a cached workload first: any global-state leak (request ids,
    # RNG, registries) would perturb the pinned uncached golden.
    cached_fingerprint()
    assert no_fault_fingerprint() == GOLDEN_NO_FAULT


def test_cache_off_golden_unchanged_partitioned():
    cached_fingerprint(partitioned=True)
    assert no_fault_fingerprint(partitioned=True) == GOLDEN_NO_FAULT

"""The cached-YCSB verification passes: the ISSUE's acceptance histories.

`run_cached_ycsb` shares one PID and one key range across every CN, so
zipf-hot lines ping-pong between caches while all three checkers ride
along.  The four parametrized runs are the acceptance bar: plain
write-through, plain write-back, **crash while lines are cached and
dirty**, and **migration while lines are cached and dirty** — each must
come back with the oracle clean, invariants intact, and the contended
atomic word's history linearizable.
"""

import pytest

from repro.cli import main
from repro.verify import run_cached_ycsb


@pytest.mark.parametrize("kwargs", [
    dict(policy="through"),
    dict(policy="back"),
    dict(policy="back", crash=True),
    dict(policy="back", migrate=True),
], ids=["through", "back", "back-crash", "back-migrate"])
def test_cached_ycsb_verifies_clean(kwargs):
    result = run_cached_ycsb(seed=0, trace=False, **kwargs)
    assert result.ok, result.problems()
    assert result.lin.ok is True
    assert result.history_len > 0


def test_cached_ycsb_actually_caches():
    result = run_cached_ycsb(seed=0, policy="back", trace=False)
    note = next(n for n in result.notes if n.startswith("cache["))
    hits = int(note.split("]: ")[1].split(" hits")[0])
    assert hits > 0, note


def test_cached_crash_run_spans_the_crash():
    result = run_cached_ycsb(seed=0, policy="back", crash=True, trace=False)
    assert any("crash window" in n for n in result.notes)


def test_cached_migrate_run_actually_migrates():
    result = run_cached_ycsb(seed=0, policy="back", migrate=True,
                             trace=False)
    assert any("migrated" in n for n in result.notes), result.notes


def test_cached_ycsb_partitioned_engine():
    result = run_cached_ycsb(seed=0, policy="back", crash=True,
                             trace=False, partitioned=True)
    assert result.ok, result.problems()


def test_cli_verify_cache_flag(capsys):
    assert main(["verify", "--ops", "12", "--clients", "2",
                 "--cache"]) == 0
    out = capsys.readouterr().out
    assert "cached-ycsb-a[through]" in out
    assert "cached-ycsb-a[back+crash]" in out
    assert "cached-ycsb-a[back+migrate]" in out


def test_cli_chaos_cache_flag(capsys):
    assert main(["chaos", "--cache", "--ops", "200"]) == 0
    out = capsys.readouterr().out
    assert "cache coherence under faults" in out

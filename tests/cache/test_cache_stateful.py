"""Hypothesis stateful testing of the cache coherence state machine.

A :class:`RuleBasedStateMachine` drives random read/write/invalidate/
crash sequences through a real two-CN cached cluster (write-through or
write-back, drawn per example) while:

* a plain per-byte Python model predicts every successful read, with
  indeterminate-byte tracking for writes that failed typed mid-crash
  (the write may or may not have applied);
* the repro.verify shadow oracle + invariant sweeps ride along and must
  stay clean after every rule — the same checkers the chaos harness
  uses, here steered adversarially by Hypothesis.

"Invalidate" is exercised the way the protocol defines it: a write from
the *other* CN recalls/downgrades whatever the victim cached.  The
deterministic profile (tests/conftest.py) keeps CI reproducible.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.clib.client import RemoteAccessError
from repro.cluster import ClioCluster
from repro.params import KB, MB, US
from repro.transport.clib_transport import RequestFailed
from tests.cache.test_cache import _PID  # shared pinned harness PID

from repro.verify.harness import _verify_params

REGION = 8 * KB        # 16 lines of 512 B
LINE = 512
IO = 64                # every op touches one 64 B slot
SLOTS = REGION // IO


class CacheCoherenceMachine(RuleBasedStateMachine):

    @initialize(policy=st.sampled_from(["through", "back"]),
                seed=st.integers(min_value=0, max_value=2 ** 16))
    def setup(self, policy, seed):
        self.cluster = ClioCluster(params=_verify_params(), seed=seed,
                                   num_cns=2, mn_capacity=64 * MB)
        self.verifier = self.cluster.enable_verification()
        self.cluster.enable_caching(policy=policy, line_bytes=LINE,
                                    capacity_lines=4)
        self.env = self.cluster.env
        self.threads = [
            self.cluster.cn(i).process("mn0", pid=_PID).thread()
            for i in range(2)
        ]
        holder = {}

        def setup_proc():
            holder["va"] = yield from self.threads[0].ralloc(REGION)

        self.cluster.run(until=self.env.process(setup_proc()))
        self.va = holder["va"]
        # Per-byte model: region starts zeroed; offsets in `unknown`
        # were targeted by a typed-failed write and may hold either value.
        self.shadow = bytearray(REGION)
        self.unknown = set()
        self.stamp = 0

    def _run(self, generator):
        return self.cluster.run(until=self.env.process(generator))

    def _read(self, cn, slot):
        offset = slot * IO
        out = {}

        def app():
            try:
                out["data"] = yield from self.threads[cn].rread(
                    self.va + offset, IO)
            except (RequestFailed, RemoteAccessError):
                out["data"] = None

        self._run(app())
        if out["data"] is None:
            return
        for i, byte in enumerate(out["data"]):
            if offset + i in self.unknown:
                continue
            assert byte == self.shadow[offset + i], (
                f"cn{cn} read slot {slot} byte {i}: got {byte}, "
                f"model holds {self.shadow[offset + i]}")

    def _write(self, cn, slot):
        offset = slot * IO
        self.stamp = (self.stamp + 1) % 251
        payload = bytes([self.stamp]) * IO
        out = {"ok": False}

        def app():
            try:
                yield from self.threads[cn].rwrite(self.va + offset, payload)
                out["ok"] = True
            except (RequestFailed, RemoteAccessError):
                pass

        self._run(app())
        if out["ok"]:
            self.shadow[offset:offset + IO] = payload
            self.unknown.difference_update(
                range(offset, offset + IO))
        else:
            # The write died typed mid-fault: it may or may not have
            # landed, so those bytes are indeterminate until rewritten.
            self.unknown.update(range(offset, offset + IO))

    @rule(cn=st.integers(min_value=0, max_value=1),
          slot=st.integers(min_value=0, max_value=SLOTS - 1))
    def read(self, cn, slot):
        self._read(cn, slot)

    @rule(cn=st.integers(min_value=0, max_value=1),
          slot=st.integers(min_value=0, max_value=SLOTS - 1))
    def write(self, cn, slot):
        self._write(cn, slot)

    @rule(victim=st.integers(min_value=0, max_value=1),
          slot=st.integers(min_value=0, max_value=SLOTS - 1))
    def invalidate(self, victim, slot):
        # Make the victim cache the line, then write it from the other
        # CN: the directory must recall/downgrade the victim's copy.
        self._read(victim, slot)
        self._write(1 - victim, slot)
        self._read(victim, slot)

    @precondition(lambda self: self.cluster.mn.alive)
    @rule(hold_us=st.integers(min_value=50, max_value=400))
    def crash_restart(self, hold_us):
        board = self.cluster.mn
        board.crash()

        def wait():
            yield self.env.timeout(hold_us * US)

        self._run(wait())
        board.restart()

        def settle():
            # Let in-flight retries and flush retransmissions land.
            yield self.env.timeout(600 * US)

        self._run(settle())

    @invariant()
    def checkers_stay_clean(self):
        if not hasattr(self, "verifier"):
            return
        assert self.verifier.oracle.ok, (
            self.verifier.oracle.report())
        self.verifier.sweep()
        assert self.verifier.total_violations == 0, (
            [v.describe() for v in self.verifier.violations])


CacheCoherenceMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None)
TestCacheCoherence = CacheCoherenceMachine.TestCase

"""Chaos scenarios with the hot-page cache on: the ISSUE's hard cases.

Two canned histories the coherence protocol must survive with the full
checking stack clean:

* **board crash while lines are cached and dirty** (write-back): local
  hits keep serving through the outage, and every dirty line's flush
  retries until the restarted board takes it;
* **invalidation lost to a link-down burst** (write-through): the
  directory retransmits CACHE_INVALs with backoff until the flapping
  link delivers one, so no CN serves a stale line afterwards.

Plus the determinism contract: cached chaos runs are bit-identical
same-seed, on both engines.
"""

from repro.faults.scenarios import run_chaos
from repro.params import KB

CACHED = dict(region_bytes=64 * KB, ops_per_worker=400)


def test_board_crash_while_cached_dirty_verifies_clean():
    report = run_chaos("board-crash", seed=1234, cached="back",
                       verify=True, **CACHED)
    assert report.finished
    assert report.check_invariants() == []
    counters = report.cache_counters
    # Dirty write-back lines existed (and were flushed) around the crash.
    writebacks = sum(c["writebacks"] for name, c in counters.items()
                     if name != "dir")
    assert writebacks > 0
    # At least one flush had to retry across the dark-board window.
    flush_retries = sum(c["flush_retries"] for name, c in counters.items()
                        if name != "dir")
    assert flush_retries > 0
    assert counters["dir"]["recalls"] > 0


def test_inval_lost_to_link_down_is_retransmitted():
    report = run_chaos("link-flap", seed=42, cached="through",
                       verify=True, **CACHED)
    assert report.finished
    assert report.check_invariants() == []
    # Invalidations crossed the flapping link and some needed resending;
    # the oracle staying clean proves no stale line was ever served.
    directory = report.cache_counters["dir"]
    assert directory["invals_sent"] > 0
    assert directory["inval_retries"] > 0


def test_cached_chaos_is_bit_identical():
    first = run_chaos("board-crash", seed=77, cached="back", **CACHED)
    again = run_chaos("board-crash", seed=77, cached="back", **CACHED)
    assert first.fingerprint() == again.fingerprint()
    other = run_chaos("board-crash", seed=78, cached="back", **CACHED)
    assert other.fingerprint() != first.fingerprint()


def test_cached_chaos_flat_matches_partitioned():
    flat = run_chaos("board-crash", seed=1234, cached="back", **CACHED)
    pdes = run_chaos("board-crash", seed=1234, cached="back",
                     partitioned=True, **CACHED)
    assert flat.fingerprint() == pdes.fingerprint()


def test_cached_chaos_departure_on_loss_burst():
    # Corruption + loss bursts: CACHE_REQ/INVAL packets get dropped and
    # corrupted mid-protocol; dedup + retransmission must keep every op
    # typed and the run deterministic.
    report = run_chaos("loss-burst", seed=9, cached="back",
                       verify=True, **CACHED)
    assert report.finished
    assert report.check_invariants() == []

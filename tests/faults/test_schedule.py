"""Tests for fault events and schedules."""

import pytest

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

US = 1_000
MS = 1_000_000


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1, FaultKind.BOARD_CRASH, "mn0")
    with pytest.raises(ValueError):
        FaultEvent(0, FaultKind.BOARD_CRASH, "")
    with pytest.raises(ValueError):
        FaultEvent(0, FaultKind.LOSS_BURST, "cn0", duration_ns=0, rate=0.5)
    with pytest.raises(ValueError):
        FaultEvent(0, FaultKind.LOSS_BURST, "cn0", duration_ns=100, rate=1.5)
    with pytest.raises(ValueError):
        FaultEvent(0, FaultKind.LOSS_BURST, "cn0", duration_ns=100, rate=0.0)
    FaultEvent(0, FaultKind.LOSS_BURST, "cn0", duration_ns=100, rate=1.0)


def test_builders_pair_recovery_events():
    schedule = (FaultSchedule()
                .crash_board(1 * MS, "mn0", restart_after_ns=500 * US)
                .link_down(2 * MS, "cn0", duration_ns=100 * US)
                .stall_slowpath(3 * MS, "mn0", 200 * US))
    kinds = [event.kind for event in schedule]
    assert kinds == [
        FaultKind.BOARD_CRASH, FaultKind.BOARD_RESTART,
        FaultKind.LINK_DOWN, FaultKind.LINK_UP,
        FaultKind.STALL_BEGIN, FaultKind.STALL_END,
    ]
    schedule.validate()


def test_builders_reject_nonpositive_durations():
    with pytest.raises(ValueError):
        FaultSchedule().crash_board(0, "mn0", restart_after_ns=0)
    with pytest.raises(ValueError):
        FaultSchedule().link_down(0, "cn0", duration_ns=-5)
    with pytest.raises(ValueError):
        FaultSchedule().stall_slowpath(0, "mn0", 0)


def test_events_sorted_deterministically():
    schedule = (FaultSchedule()
                .link_down(500, "cn1")
                .crash_board(100, "mn0")
                .link_down(500, "cn0"))
    ordered = schedule.events()
    assert [e.at_ns for e in ordered] == [100, 500, 500]
    # Same-instant events break ties by kind then target: stable order.
    assert [e.target for e in ordered] == ["mn0", "cn0", "cn1"]


def test_validate_rejects_unbalanced_pairs():
    with pytest.raises(ValueError):
        (FaultSchedule()
         .crash_board(100, "mn0")
         .crash_board(200, "mn0")).validate()       # double crash
    with pytest.raises(ValueError):
        FaultSchedule().restart_board(100, "mn0").validate()  # never crashed
    with pytest.raises(ValueError):
        FaultSchedule().link_up(100, "cn0").validate()
    # Same fault on different targets is fine.
    (FaultSchedule()
     .crash_board(100, "mn0")
     .crash_board(100, "mn1")).validate()


def test_random_schedule_is_seeded_and_valid():
    a = FaultSchedule.random(7, duration_ns=4 * MS, boards=["mn0"],
                             nodes=["cn0", "cn1"])
    b = FaultSchedule.random(7, duration_ns=4 * MS, boards=["mn0"],
                             nodes=["cn0", "cn1"])
    c = FaultSchedule.random(8, duration_ns=4 * MS, boards=["mn0"],
                             nodes=["cn0", "cn1"])
    assert a.events() == b.events()       # same seed, same timeline
    assert a.events() != c.events()       # different seed differs
    a.validate()
    c.validate()


def test_random_schedule_never_overlaps_same_target():
    """Slot-per-fault construction: across many seeds, no schedule opens
    a fault that is already open (validate would raise)."""
    for seed in range(30):
        FaultSchedule.random(seed, duration_ns=6 * MS, boards=["mn0"],
                             nodes=["cn0"], fault_count=5).validate()


def test_random_schedule_rejects_tiny_window():
    with pytest.raises(ValueError):
        FaultSchedule.random(1, duration_ns=20_000, boards=["mn0"],
                             fault_count=10)
    with pytest.raises(ValueError):
        FaultSchedule.random(1, duration_ns=1 * MS, boards=[])

"""End-to-end chaos scenarios plus the no-fault golden regression.

The acceptance bar for the fault subsystem:

* a scripted MN crash/restart mid-workload completes with zero hung
  requests and post-restart throughput within 10% of pre-crash;
* same-seed chaos runs are bit-identical;
* a cluster with *no* faults armed produces exactly the same timestamps
  and counters as before the subsystem existed (golden fingerprint).
"""

import pytest

from repro.cluster import ClioCluster
from repro.core.addr import Permission
from repro.faults.scenarios import SCENARIOS, run_chaos
from repro.net.packet import PacketType

MB = 1 << 20

#: Golden no-fault fingerprint, captured on the pre-fault-subsystem tree
#: (seed 1234, 2 CNs, pinned PIDs 9001/9002, 1 alloc + 120 write/read
#: pairs each).  If this changes, the fault subsystem perturbed the
#: no-fault simulation — which it must never do.
GOLDEN_NO_FAULT = (600478, (598288, 600478), 482, (241, 241), (0, 0))


def no_fault_fingerprint(partitioned=False):
    cluster = ClioCluster(seed=1234, num_cns=2, mn_capacity=256 * MB,
                          partitioned=partitioned)
    done = []

    def worker(cn_index, pid):
        transport = cluster.cn(cn_index).transport
        outcome = yield from transport.request(
            "mn0", PacketType.ALLOC, pid=pid,
            payload=(8 * MB, Permission.READ_WRITE, None))
        va = outcome.body.value.va
        for index in range(120):
            offset = (index * 4096) % (4 * MB)
            yield from transport.request(
                "mn0", PacketType.WRITE, pid=pid, va=va + offset, size=64,
                data=bytes([index % 256]) * 64)
            yield from transport.request(
                "mn0", PacketType.READ, pid=pid, va=va + offset, size=64)
        done.append(cluster.env.now)

    procs = [cluster.env.process(worker(0, 9001)),
             cluster.env.process(worker(1, 9002))]
    cluster.run(until=cluster.env.all_of(procs))
    return (cluster.env.now, tuple(sorted(done)),
            cluster.mn.requests_served,
            tuple(cn.transport.requests_completed for cn in cluster.cns),
            tuple(cn.transport.total_retries for cn in cluster.cns))


def test_no_fault_run_matches_golden_fingerprint():
    assert no_fault_fingerprint() == GOLDEN_NO_FAULT


def test_board_crash_scenario_recovers():
    report = run_chaos("board-crash", seed=1234)
    assert report.finished, "workers hung"
    assert report.check_invariants() == []
    # The crash window produced typed failures, not hangs.
    assert report.failed_ops > 0
    assert all(op.status in ("ok", "request_failed", "remote_error")
               for op in report.ops)
    # Acceptance: post-restart throughput within 10% of pre-crash.
    tput = report.phase_throughput()
    assert tput is not None
    assert 0.9 <= tput["recovery_ratio"] <= 1.1
    mn = report.board_counters["mn0"]
    assert mn["crashes"] == 1 and mn["restarts"] == 1
    assert mn["packets_dropped_dead"] > 0


def test_board_crash_scenario_is_bit_identical():
    a = run_chaos("board-crash", seed=77)
    b = run_chaos("board-crash", seed=77)
    assert a.fingerprint() == b.fingerprint()
    c = run_chaos("board-crash", seed=78)
    assert a.fingerprint() != c.fingerprint()


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_every_scenario_upholds_invariants(scenario):
    report = run_chaos(scenario, seed=42, ops_per_worker=400)
    assert report.finished
    assert report.check_invariants() == []
    # Every op settled one way or the other.
    assert len(report.ops) == 2 * 400


def test_loss_burst_masked_by_retransmission():
    report = run_chaos("loss-burst", seed=9)
    total_retries = sum(c["total_retries"]
                       for c in report.cn_counters.values())
    assert total_retries > 0          # the burst really bit
    assert report.finished


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        run_chaos("thermonuclear", seed=1)

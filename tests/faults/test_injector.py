"""Tests for the fault injector and the heartbeat health monitor."""

import pytest

from repro.cluster import ClioCluster
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule

MB = 1 << 20
US = 1_000
MS = 1_000_000


def make_cluster(**kwargs):
    kwargs.setdefault("num_cns", 1)
    kwargs.setdefault("mn_capacity", 64 * MB)
    return ClioCluster(seed=5, **kwargs)


def test_injector_applies_crash_and_restart_on_time():
    cluster = make_cluster()
    schedule = FaultSchedule().crash_board(100 * US, "mn0",
                                           restart_after_ns=50 * US)
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    observed = {}

    def probe():
        yield cluster.env.timeout(120 * US)
        observed["mid"] = cluster.mn.alive
        yield cluster.env.timeout(50 * US)
        observed["after"] = cluster.mn.alive

    cluster.run(until=cluster.env.process(probe()))
    assert observed == {"mid": False, "after": True}
    assert [(a.at_ns, a.kind.value, a.applied) for a in injector.applied] == [
        (100 * US, "board_crash", True),
        (150 * US, "board_restart", True),
    ]


def test_injector_arm_is_relative_to_now():
    cluster = make_cluster()
    schedule = FaultSchedule().crash_board(10 * US, "mn0")
    injector = FaultInjector(cluster, schedule)

    def arm_later():
        yield cluster.env.timeout(500 * US)
        injector.arm()
        yield cluster.env.timeout(20 * US)

    cluster.run(until=cluster.env.process(arm_later()))
    assert injector.applied[0].at_ns == 510 * US


def test_injector_skips_redundant_transitions():
    cluster = make_cluster()
    cluster.mn.crash()   # already down before the schedule fires
    schedule = FaultSchedule().crash_board(10 * US, "mn0")
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    cluster.run(until=20 * US)
    assert injector.applied[0].applied is False
    assert injector.applied[0].note == "already crashed"
    assert cluster.mn.crashes == 1   # only the manual crash


def test_injector_rejects_double_arm_and_unknown_board():
    cluster = make_cluster()
    injector = FaultInjector(cluster,
                             FaultSchedule().crash_board(10 * US, "mn0"))
    injector.arm()
    with pytest.raises(ValueError):
        injector.arm()
    ghost = FaultInjector(cluster,
                          FaultSchedule().crash_board(10 * US, "ghost"))
    ghost.arm()
    with pytest.raises(KeyError):
        cluster.run(until=cluster.env.now + 20 * US)


def test_loss_burst_restores_link_rates():
    cluster = make_cluster()
    uplink, downlink = cluster.topology.links_for("cn0")
    schedule = FaultSchedule().loss_burst(10 * US, "cn0", 30 * US, rate=0.4)
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    observed = {}

    def probe():
        yield cluster.env.timeout(20 * US)
        observed["during"] = (uplink.loss_rate, downlink.loss_rate)
        yield cluster.env.timeout(30 * US)
        observed["after"] = (uplink.loss_rate, downlink.loss_rate)

    cluster.run(until=cluster.env.process(probe()))
    assert observed["during"] == (0.4, 0.4)
    assert observed["after"] == (0.0, 0.0)


def test_stall_gate_parks_slow_path_work():
    cluster = make_cluster()
    schedule = FaultSchedule().stall_slowpath(0, "mn0", 200 * US)
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    result = {}

    def app():
        yield cluster.env.timeout(10 * US)   # stall is active now
        start = cluster.env.now
        response = yield from cluster.mn.slow_path.handle_alloc(1, 4 * MB)
        result["ok"] = response.ok
        result["waited_ns"] = cluster.env.now - start

    cluster.run(until=cluster.env.process(app()))
    assert result["ok"]
    # The alloc had to sit out the rest of the stall window (~190 us).
    assert result["waited_ns"] >= 180 * US
    assert cluster.mn.slow_path.stalled_requests >= 1


def test_health_monitor_detects_crash_with_lag_and_recovery():
    cluster = make_cluster()
    health = cluster.start_health_monitor(interval_ns=50 * US,
                                          miss_threshold=3)
    schedule = FaultSchedule().crash_board(60 * US, "mn0",
                                           restart_after_ns=400 * US)
    FaultInjector(cluster, schedule).arm()
    timeline = {}

    def probe():
        yield cluster.env.timeout(110 * US)
        # One missed heartbeat so far: belief lags the crash.
        timeline["early_belief"] = health.is_alive("mn0")
        yield cluster.env.timeout(150 * US)
        timeline["detected"] = health.is_alive("mn0")
        timeline["dead"] = health.dead_boards()
        yield cluster.env.timeout(300 * US)
        timeline["recovered"] = health.is_alive("mn0")

    cluster.run(until=cluster.env.process(probe()))
    assert timeline["early_belief"] is True      # detection latency is real
    assert timeline["detected"] is False
    assert timeline["dead"] == ["mn0"]
    assert timeline["recovered"] is True
    flips = [(t.board, t.alive) for t in health.transitions]
    assert flips == [("mn0", False), ("mn0", True)]


def test_health_monitor_validates_construction():
    from repro.faults.health import HealthMonitor
    cluster = make_cluster()
    with pytest.raises(ValueError):
        HealthMonitor(cluster.env, cluster.mns, interval_ns=0)
    with pytest.raises(ValueError):
        HealthMonitor(cluster.env, cluster.mns, miss_threshold=0)

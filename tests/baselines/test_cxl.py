"""CXL pool unit tests: latency model, coherence, capacity QoS.

The latency constants are pinned arithmetic, not measurements: a 64B
load is decode + hop + device load + one line on the port, and every
test below spells the sum out so a model change must touch the
expectation deliberately.
"""

import pytest

from repro.baselines.cxl import (
    CXLAccessError,
    CXLBackend,
    CXLError,
    CXLPool,
    CXLQuotaExceeded,
)
from repro.params import SEC, ClioParams, CXLParams, QoSParams, TenantConfig
from repro.sim import Environment

MB = 1 << 20


def make_pool(qos=None, cxl=None, capacity=64 * MB):
    params = ClioParams.prototype()
    from dataclasses import replace
    if qos is not None:
        params = replace(params, qos=qos)
    if cxl is not None:
        params = replace(params, cxl=cxl)
    env = Environment()
    return env, CXLPool(env, params, capacity=capacity)


def run(env, generator):
    holder = {}

    def wrapper():
        holder["result"] = yield from generator

    env.run(until=env.process(wrapper()))
    return holder["result"]


def line_wire_ns(params: CXLParams) -> int:
    return max(1, (params.line_bytes * 8 * SEC) // params.port_rate_bps)


def test_single_line_load_latency():
    env, pool = make_pool()
    host = pool.host("h0")
    cxl = pool.cxl

    def app():
        region = yield from host.alloc(4096)
        yield from host.store(region, 0, b"\x11" * 64)
        data, latency = yield from host.load(region, 0, 64)
        return data, latency

    data, latency = run(env, app())
    assert data == b"\x11" * 64
    # decode + hop + load + one line on the port (no pipelining, no
    # coherence traffic: same host owns the line).
    expected = (cxl.hdm_decode_ns + cxl.switch_hop_ns + cxl.load_ns
                + line_wire_ns(cxl))
    assert latency == expected == 468


def test_single_line_store_latency():
    env, pool = make_pool()
    host = pool.host("h0")
    cxl = pool.cxl

    def app():
        region = yield from host.alloc(4096)
        return (yield from host.store(region, 0, b"\x22" * 64))

    latency = run(env, app())
    expected = (cxl.hdm_decode_ns + cxl.switch_hop_ns + cxl.store_ns
                + line_wire_ns(cxl))
    assert latency == expected == 418


def test_multi_line_read_pipelines():
    env, pool = make_pool()
    host = pool.host("h0")
    cxl = pool.cxl

    def app():
        region = yield from host.alloc(4096)
        yield from host.store(region, 0, b"\x33" * 1024)
        _, latency = yield from host.load(region, 0, 1024)
        return latency

    latency = run(env, app())
    lines = 1024 // cxl.line_bytes
    expected = (cxl.hdm_decode_ns + cxl.switch_hop_ns + cxl.load_ns
                + (lines - 1) * cxl.line_pipeline_ns
                + lines * line_wire_ns(cxl))
    assert latency == expected == 1188


def test_alloc_rounds_to_lines_and_reuses_freed_ranges():
    env, pool = make_pool()
    host = pool.host("h0")

    def app():
        region = yield from host.alloc(100)
        assert region.size == 128          # two 64B lines
        base = region.base_pa
        yield from host.free(region)
        again = yield from host.alloc(128)
        assert again.base_pa == base       # first-fit reuse
        yield from host.free(again)

    run(env, app())


def test_access_after_free_raises():
    env, pool = make_pool()
    host = pool.host("h0")

    def app():
        region = yield from host.alloc(4096)
        yield from host.free(region)
        with pytest.raises(CXLAccessError, match="not mapped"):
            yield from host.load(region, 0, 64)

    run(env, app())


def test_out_of_window_access_raises():
    env, pool = make_pool()
    host = pool.host("h0")

    def app():
        region = yield from host.alloc(256)
        with pytest.raises(CXLAccessError, match="outside HDM window"):
            yield from host.load(region, 192, 128)

    run(env, app())


def test_pool_exhaustion_raises():
    env, pool = make_pool(capacity=1 * MB)
    host = pool.host("h0")

    def app():
        with pytest.raises(CXLError, match="pool exhausted"):
            yield from host.alloc(2 * MB)
        yield env.timeout(0)

    run(env, app())


# -- coherence ----------------------------------------------------------------


def test_dirty_remote_line_is_back_invalidated():
    env, pool = make_pool()
    writer = pool.host("h0")
    reader = pool.host("h1")
    cxl = pool.cxl

    def app():
        region = yield from writer.alloc(4096)
        yield from writer.store(region, 0, b"\x44" * 64)   # h0 owns, dirty
        data, latency = yield from reader.load(region, 0, 64)
        return data, latency

    data, latency = run(env, app())
    assert data == b"\x44" * 64
    assert pool.back_invalidations == 1
    expected = (cxl.hdm_decode_ns + cxl.switch_hop_ns + cxl.load_ns
                + cxl.back_invalidate_ns + line_wire_ns(cxl))
    assert latency == expected


def test_store_snoops_clean_remote_copy():
    env, pool = make_pool()
    a = pool.host("h0")
    b = pool.host("h1")

    def app():
        region = yield from a.alloc(4096)
        yield from a.load(region, 0, 64)       # h0 holds the line clean
        yield from b.store(region, 0, b"\x55" * 64)

    run(env, app())
    assert pool.snoops == 1
    assert pool.back_invalidations == 0


def test_coherence_off_is_free():
    env, pool = make_pool(cxl=CXLParams(coherence=False))
    a = pool.host("h0")
    b = pool.host("h1")

    def app():
        region = yield from a.alloc(4096)
        yield from a.store(region, 0, b"\x66" * 64)
        yield from b.load(region, 0, 64)

    run(env, app())
    assert pool.back_invalidations == 0
    assert pool.snoops == 0


def test_ping_pong_recalls_every_round():
    env, pool = make_pool()
    a = pool.host("h0")
    b = pool.host("h1")

    def app():
        region = yield from a.alloc(4096)
        for _ in range(10):
            yield from a.store(region, 0, b"\x77" * 64)
            yield from b.store(region, 0, b"\x88" * 64)

    run(env, app())
    # Every store but the very first finds the other host's dirty copy.
    assert pool.back_invalidations == 19


# -- tenancy: quotas and shaping ----------------------------------------------


TENANTS = QoSParams(tenants=(
    TenantConfig(name="gold", clients=("h0",), share=0.6,
                 quota_bytes=1 * MB),
    TenantConfig(name="best-effort", clients=("h1",), share=0.4),
))


def test_quota_rejects_over_allocation():
    env, pool = make_pool(qos=TENANTS)
    host = pool.host("h0", tenant="gold")

    def app():
        region = yield from host.alloc(768 * 1024)
        with pytest.raises(CXLQuotaExceeded, match="gold"):
            yield from host.alloc(512 * 1024)
        yield from host.free(region)
        # Freed capacity is creditable again.
        again = yield from host.alloc(1 * MB)
        yield from host.free(again)

    run(env, app())
    assert pool.tenant_usage("gold") == 0


def test_unquotaed_tenant_is_uncapped():
    env, pool = make_pool(qos=TENANTS)
    host = pool.host("h1", tenant="best-effort")

    def app():
        region = yield from host.alloc(8 * MB)
        yield from host.free(region)

    run(env, app())


def test_host_cannot_switch_tenants():
    env, pool = make_pool(qos=TENANTS)
    pool.host("h0", tenant="gold")
    with pytest.raises(CXLError, match="already attached"):
        pool.host("h0", tenant="best-effort")


def test_shaping_isolates_port_serialization():
    """Unshaped, two tenants serialize on one port; shaped, each runs on
    its own slice — the victim's wait drops, the aggressor pays its
    reserved (smaller) rate."""

    def contention(shaped):
        env, pool = make_pool(qos=TENANTS)
        if shaped:
            pool.enable_shaping()
        gold = pool.host("h0", tenant="gold")
        noisy = pool.host("h1", tenant="best-effort")
        out = {}

        def app():
            mine = yield from gold.alloc(64 * 1024)
            theirs = yield from noisy.alloc(64 * 1024)

            def flood():
                for _ in range(50):
                    yield from noisy.store(theirs, 0, b"\xaa" * 4096)

            env.process(flood())
            yield env.timeout(200)
            _, latency = yield from gold.load(mine, 0, 64)
            out["latency"] = latency

        env.run(until=env.process(app()))
        return out["latency"]

    assert contention(shaped=True) < contention(shaped=False)


def test_backend_tenant_comes_from_params():
    from dataclasses import replace

    from repro.params import BackendParams

    params = replace(ClioParams.prototype(), qos=TENANTS,
                     backend=BackendParams(name="cxl", tenant="gold"))
    backend = CXLBackend(params=params)

    def app():
        yield from backend.setup()
        handle = yield from backend.alloc(4096)
        yield from backend.write(handle, 0, b"\x01" * 64)
        yield from backend.free(handle)

    backend.run_process(app())
    assert backend._host.tenant == "gold"


def test_pool_metrics_registered():
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    from dataclasses import replace
    params = replace(ClioParams.prototype(), qos=TENANTS)
    env = Environment()
    pool = CXLPool(env, params, capacity=16 * MB, registry=registry)
    host = pool.host("h0", tenant="gold")

    def app():
        region = yield from host.alloc(4096)
        yield from host.store(region, 0, b"\x02" * 64)

    env.run(until=env.process(app()))
    snapshot = registry.snapshot()
    assert snapshot["cxl.pool.stores"] == 1
    assert snapshot["cxl.tenant.gold.used_bytes"] == 4096
    assert snapshot["cxl.tenant.gold.bytes_moved"] == 64
    assert "cxl.tenant.best-effort.used_bytes" in snapshot

"""MemoryBackend conformance: one workload, every backend, pinned timing.

The protocol's whole point is that nothing outside a backend class needs
to know its native API — so the conformance workload here is written
once against :class:`repro.baselines.api.MemoryBackend` and must behave
identically (same bytes, zero-filled cold ranges, bounds errors) on all
seven backends.  Latencies differ by design; the pinned fingerprints
keep each backend's latency model from drifting silently.
"""

import warnings

import pytest

from repro.baselines.api import (
    BACKEND_NAMES,
    BACKENDS,
    BackendCapability,
    ClioBackend,
    CloverBackend,
    HERDBackend,
    MemoryBackend,
    RDMABackend,
    create_backend,
)
from repro.params import BackendParams, ClioParams

MB = 1 << 20


def run_conformance(name: str, seed: int = 11):
    """The shared workload; returns (read64_ns, write1k_ns)."""
    backend = create_backend(name, seed=seed)
    out = {}

    def app():
        yield from backend.setup()
        handle = yield from backend.alloc(1 * MB)
        yield from backend.write(handle, 0, bytes(range(64)))
        data, read_ns = yield from backend.read(handle, 0, 64)
        assert data == bytes(range(64)), f"{name}: readback mismatch"
        out["read64_ns"] = read_ns
        out["write1k_ns"] = (yield from backend.write(
            handle, 4096, b"\x5a" * 1024))
        blob, _ = yield from backend.read(handle, 4096, 1024)
        assert blob == b"\x5a" * 1024, f"{name}: 1KB readback mismatch"
        # A never-written range reads as zeros on every backend.
        zeros, _ = yield from backend.read(handle, 64 * 1024, 256)
        assert zeros == bytes(256), f"{name}: cold range not zero-filled"
        yield from backend.free(handle)

    backend.run_process(app())
    return out["read64_ns"], out["write1k_ns"]


#: Per-backend (64B-read ns, 1KB-write ns) under the conformance
#: workload, seed 11, prototype params.  Pinned 2026-08 with the
#: MemoryBackend protocol; move one only with a deliberate re-pin of
#: that backend's latency model.
CONFORMANCE_FINGERPRINTS = {
    "clio": (2519, 3536),
    "cxl": (468, 1138),
    "rdma": (2058, 2601),
    "legoos": (4775, 4939),
    "clover": (2936, 8464),
    "herd": (2535, 3419),
    "herd-bf": (6259, 7835),
}


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_conformance_semantics_and_fingerprint(name):
    assert run_conformance(name) == CONFORMANCE_FINGERPRINTS[name]


def test_every_backend_name_is_pinned():
    assert set(CONFORMANCE_FINGERPRINTS) == set(BACKEND_NAMES)


def test_cxl_wins_sub_line_reads():
    """The headline trade-off: no RPC framing means a 64B load beats
    every RPC-shaped system on the hot path."""
    cxl_read, _ = CONFORMANCE_FINGERPRINTS["cxl"]
    for name, (read_ns, _) in CONFORMANCE_FINGERPRINTS.items():
        if name != "cxl":
            assert cxl_read < read_ns


def test_capability_flags():
    cxl = create_backend("cxl")
    assert BackendCapability.LOAD_STORE in cxl.capabilities
    assert BackendCapability.MULTI_TENANT in cxl.capabilities
    assert BackendCapability.RPC_FRAMING not in cxl.capabilities
    clio = BACKENDS["clio"]
    assert BackendCapability.RPC_FRAMING in clio.capabilities
    assert BackendCapability.REMOTE_ALLOC in clio.capabilities
    assert BackendCapability.KV_NATIVE in CloverBackend.capabilities
    assert BackendCapability.LOAD_STORE not in RDMABackend.capabilities


def test_create_backend_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("nvme-of")


def test_backends_are_memorybackends():
    for name in BACKEND_NAMES:
        backend = create_backend(name)
        assert isinstance(backend, MemoryBackend)
        assert backend.name == name


def test_ops_before_setup_raise():
    backend = create_backend("herd")
    with pytest.raises(RuntimeError, match="setup"):
        backend.run_process(backend.alloc(4096))


def test_out_of_bounds_read_raises():
    backend = create_backend("rdma")

    def app():
        yield from backend.setup()
        handle = yield from backend.alloc(4096)
        with pytest.raises(ValueError, match="out of bounds|outside"):
            yield from backend.read(handle, 4000, 200)

    backend.run_process(app())


# -- BackendParams routing and the deprecated direct-kwarg paths --------------


def test_backend_params_route_capacity():
    params = ClioParams.prototype()
    small = ClioParams(
        **{**params.__dict__, "backend": BackendParams(dram_capacity=64 * MB)})
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        backend = create_backend("herd", params=small)
    assert backend.server.dram.capacity == 64 * MB


def test_direct_kwargs_warn_but_work():
    from repro.baselines.herd import HERDServer
    from repro.baselines.legoos import LegoOSMemoryNode
    from repro.baselines.rdma import RDMAMemoryNode
    from repro.sim import Environment

    params = ClioParams.prototype()
    with pytest.warns(DeprecationWarning, match="dram_capacity"):
        node = RDMAMemoryNode(Environment(), params, dram_capacity=32 * MB)
    assert node.dram.capacity == 32 * MB
    with pytest.warns(DeprecationWarning, match="dram_capacity"):
        LegoOSMemoryNode(Environment(), params, dram_capacity=32 * MB)
    with pytest.warns(DeprecationWarning, match="server_cores"):
        HERDServer(Environment(), params, server_cores=2)


def test_clover_setup_kwarg_warns():
    from repro.baselines.clover import CloverStore
    from repro.sim import Environment

    env = Environment()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        store = CloverStore(env, ClioParams.prototype())
    with pytest.warns(DeprecationWarning, match="capacity_slots"):
        env.run(until=env.process(store.setup(capacity_slots=1 << 10)))


def test_legacy_classes_importable_from_package():
    from repro.baselines import (  # noqa: F401
        CloverStore,
        HERDServer,
        LegoOSMemoryNode,
        RDMAMemoryNode,
    )


def test_clio_backend_shares_existing_cluster():
    from repro.cluster import ClioCluster

    cluster = ClioCluster(params=ClioParams.prototype(), seed=3,
                          mn_capacity=256 * MB)
    backend = ClioBackend(seed=3, cluster=cluster)
    assert backend.cluster is cluster


def test_herd_bf_is_slower_than_herd():
    herd_read, _ = CONFORMANCE_FINGERPRINTS["herd"]
    bf_read, _ = CONFORMANCE_FINGERPRINTS["herd-bf"]
    assert bf_read > herd_read

"""Tests for the LegoOS, Clover, and HERD baseline models."""

import pytest

from repro.baselines.clover import CloverStore
from repro.baselines.herd import HERDServer
from repro.baselines.legoos import LegoOSMemoryNode
from repro.params import BackendParams, ClioParams
from repro.sim import Environment

MB = 1 << 20


def run(env, generator):
    return env.run(until=env.process(generator))


# -- LegoOS ----------------------------------------------------------------------


def params_256mb():
    from dataclasses import replace
    return replace(ClioParams.prototype(),
                   backend=BackendParams(dram_capacity=256 * MB))


def make_legoos():
    env = Environment()
    node = LegoOSMemoryNode(env, params_256mb())
    return env, node


def test_legoos_roundtrip():
    env, node = make_legoos()
    node.map_range(pid=1, va=0, size=MB)
    run(env, node.write(1, 100, b"lego"))
    data, latency = run(env, node.read(1, 100, 4))
    assert data == b"lego"
    assert latency > 0


def test_legoos_unmapped_access_fails():
    env, node = make_legoos()
    with pytest.raises(KeyError):
        run(env, node.read(1, 0, 4))


def test_legoos_software_overhead_dominates_small_requests():
    """Paper: LegoOS latency ~2x Clio at small sizes, from MN software."""
    env, node = make_legoos()
    node.map_range(pid=1, va=0, size=MB)
    _, latency = run(env, node.read(1, 0, 16))
    software = node.params.legoos.software_handling_ns
    assert latency >= software + node.params.rdma.base_read_rtt_ns


def test_legoos_thread_pool_saturates():
    env, node = make_legoos()
    node.map_range(pid=1, va=0, size=MB)
    finish = []

    def client(index):
        yield from node.read(1, index * 64, 16)
        finish.append(env.now)

    procs = [env.process(client(i)) for i in range(32)]
    env.run(until=env.all_of(procs))
    # 32 requests through an 8-thread pool: at least 4 completion waves.
    assert len(set(finish)) >= 4


def test_legoos_tracks_cpu_busy_time():
    env, node = make_legoos()
    node.map_range(pid=1, va=0, size=MB)
    run(env, node.read(1, 0, 16))
    assert node.mn_cpu_busy_ns > 0


# -- Clover ----------------------------------------------------------------------


def make_clover():
    env = Environment()
    store = CloverStore(env, params_256mb())
    run(env, store.setup())
    return env, store


def test_clover_put_get_roundtrip():
    env, store = make_clover()
    run(env, store.put(b"key1", b"value-1"))
    value, _ = run(env, store.get(b"key1"))
    assert value[:7] == b"value-1"


def test_clover_missing_key():
    env, store = make_clover()
    value, _ = run(env, store.get(b"ghost"))
    assert value is None


def test_clover_write_needs_at_least_two_rtts():
    env, store = make_clover()
    write_latency = run(env, store.put(b"k", b"v" * 64))
    _, read_latency = run(env, store.get(b"k"))
    # Writes pay >= 2 RTTs vs reads' 1 RTT (plus occasional chases).
    assert write_latency > read_latency * 1.4


def test_clover_cn_side_management_accounted():
    env, store = make_clover()
    run(env, store.put(b"k", b"v"))
    run(env, store.get(b"k"))
    assert store.cn_mgmt_busy_ns >= 2 * store.clover.metadata_lookup_ns


def test_clover_oversized_value_rejected():
    env, store = make_clover()
    with pytest.raises(ValueError):
        run(env, store.put(b"k", b"x" * (CloverStore.VALUE_SLOT + 1)))


# -- HERD ----------------------------------------------------------------------


def make_herd(on_bluefield=False):
    env = Environment()
    server = HERDServer(env, params_256mb(), on_bluefield=on_bluefield)
    return env, server


def test_herd_put_get_roundtrip():
    env, server = make_herd()
    run(env, server.put(b"key", b"herd-value"))
    value, _ = run(env, server.get(b"key"))
    assert value[:10] == b"herd-value"


def test_herd_update_overwrites():
    env, server = make_herd()
    run(env, server.put(b"key", b"v1"))
    run(env, server.put(b"key", b"v2"))
    value, _ = run(env, server.get(b"key"))
    assert value[:2] == b"v2"


def test_herd_bluefield_slower_than_cpu():
    """Paper: HERD-BF latency much higher due to chip-to-chip crossing."""
    env_cpu, cpu = make_herd(on_bluefield=False)
    env_bf, bf = make_herd(on_bluefield=True)
    run(env_cpu, cpu.put(b"k", b"v" * 64))
    run(env_bf, bf.put(b"k", b"v" * 64))
    _, cpu_latency = run(env_cpu, cpu.get(b"k"))
    _, bf_latency = run(env_bf, bf.get(b"k"))
    assert bf_latency > cpu_latency + 2 * bf.herd.bluefield_crossing_ns // 2


def test_herd_missing_key():
    env, server = make_herd()
    value, _ = run(env, server.get(b"nope"))
    assert value is None


def test_herd_tracks_cpu_busy_time():
    env, server = make_herd()
    run(env, server.put(b"k", b"v"))
    assert server.mn_cpu_busy_ns > 0


def test_herd_raw_read_write():
    env, server = make_herd()
    run(env, server.raw_write(4096, b"raw-bytes"))
    data, latency = run(env, server.raw_read(4096, 9))
    assert data == b"raw-bytes"
    assert latency > 0

"""Tests for the RDMA baseline model."""

import pytest

from dataclasses import replace

from repro.baselines.rdma import MRRegistrationError, RDMAMemoryNode
from repro.params import BackendParams, ClioParams, MS, US
from repro.sim import Environment

MB = 1 << 20


def make_node(**overrides):
    env = Environment()
    params = ClioParams.prototype()
    if overrides:
        params = replace(params, rdma=replace(params.rdma, **overrides))
    params = replace(params, backend=BackendParams(dram_capacity=256 * MB))
    node = RDMAMemoryNode(env, params)
    return env, node


def run(env, generator):
    return env.run(until=env.process(generator))


def register(env, node, size=MB, pinned=True):
    return run(env, node.register_mr(size, pinned=pinned))


def test_read_write_roundtrip():
    env, node = make_node()
    region = register(env, node)
    qp = node.create_qp()
    run(env, node.write(qp, region, 100, b"rdma-data"))
    data, latency = run(env, node.read(qp, region, 100, 9))
    assert data == b"rdma-data"
    assert latency > 0


def test_access_outside_mr_rejected():
    env, node = make_node()
    region = register(env, node, size=4096)
    qp = node.create_qp()
    with pytest.raises(ValueError):
        run(env, node.read(qp, region, 4090, 16))


def test_pinned_access_never_faults():
    env, node = make_node()
    region = register(env, node)
    qp = node.create_qp()
    run(env, node.write(qp, region, 0, b"x" * 64))
    assert node.page_faults == 0


def test_odp_first_touch_faults_16_8_ms():
    env, node = make_node()
    region = register(env, node, pinned=False)
    qp = node.create_qp()
    start = env.now
    run(env, node.write(qp, region, 0, b"x" * 64))
    first_touch = env.now - start
    start = env.now
    run(env, node.write(qp, region, 0, b"y" * 64))
    warm = env.now - start
    assert node.page_faults == 1
    assert first_touch >= 16_800 * US
    # Paper: a faulting access is ~14100x slower than a no-fault access.
    assert first_touch / warm > 1000


def test_mr_registration_cost_scales_with_pages():
    env, node = make_node()
    t0 = env.now
    register(env, node, size=4096)
    small = env.now - t0
    t0 = env.now
    register(env, node, size=64 * MB)
    big = env.now - t0
    assert big > small * 100


def test_odp_registration_skips_pinning_cost():
    env, node = make_node()
    t0 = env.now
    register(env, node, size=64 * MB, pinned=True)
    pinned_cost = env.now - t0
    t0 = env.now
    register(env, node, size=64 * MB, pinned=False)
    odp_cost = env.now - t0
    assert odp_cost < pinned_cost


def test_mr_limit_enforced():
    env, node = make_node(max_mrs=4)
    for _ in range(4):
        register(env, node, size=4096)
    with pytest.raises(MRRegistrationError):
        register(env, node, size=4096)


def test_qp_cache_thrash_degrades_latency():
    """Figure 4's mechanism: more active QPs than cache -> PCIe fetches."""
    env, node = make_node(qp_cache_entries=8)
    region = register(env, node)
    few_qps = [node.create_qp() for _ in range(4)]
    many_qps = [node.create_qp() for _ in range(64)]

    def average_latency(qps, rounds=6):
        total = 0
        count = 0
        for _ in range(rounds):
            for qp in qps:
                _, latency = run(env, node.read(qp, region, 0, 16))
                total += latency
                count += 1
        return total / count

    fast = average_latency(few_qps)
    slow = average_latency(many_qps)
    assert slow > fast * 1.2


def test_pte_cache_thrash_degrades_latency():
    """Figure 5's mechanism: working set beyond the MTT cache."""
    env, node = make_node(pte_cache_entries=32)
    region = register(env, node, size=64 * MB)
    qp = node.create_qp()
    page = 4096

    def average_latency(pages, rounds=4):
        total = 0
        count = 0
        for _ in range(rounds):
            for index in range(pages):
                _, latency = run(env, node.read(qp, region, index * page, 16))
                total += latency
                count += 1
        return total / count

    small_set = average_latency(8)
    large_set = average_latency(512)
    assert large_set > small_set * 1.2


def test_latency_has_heavy_tail():
    env, node = make_node()
    region = register(env, node)
    qp = node.create_qp()
    latencies = []
    for _ in range(4000):
        _, latency = run(env, node.read(qp, region, 0, 16))
        latencies.append(latency)
    latencies.sort()
    median = latencies[len(latencies) // 2]
    p999 = latencies[int(len(latencies) * 0.999)]
    assert p999 > median * 5   # long tail, unlike Clio


def test_atomic_cas():
    env, node = make_node()
    region = register(env, node)
    qp = node.create_qp()
    old, ok, _ = run(env, node.atomic_cas(qp, region, 0, 0, 42))
    assert ok and old == 0
    old, ok, _ = run(env, node.atomic_cas(qp, region, 0, 0, 43))
    assert not ok and old == 42

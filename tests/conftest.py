"""Shared pytest configuration: deterministic Hypothesis profiles.

CI must be reproducible: a stateful test that fails on one run and
passes the next is worse than no test.  The ``deterministic`` profile
(the default) derandomizes example generation so the same examples run
every time; set ``HYPOTHESIS_PROFILE=random`` locally to explore fresh
examples when hunting for new counterexamples.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "deterministic",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "random",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "deterministic"))

"""Unit tests for the shadow-memory oracle.

Driven with a fake clock rather than a full cluster: every rule in the
acceptability model (committed / pending / ghost / atomic / window
history / taint / epoch) gets exercised in isolation.
"""

from repro.core.sync import AtomicOp, AtomicResult
from repro.verify import ShadowOracle


class FakeEnv:
    def __init__(self):
        self.now = 0


def make():
    env = FakeEnv()
    return env, ShadowOracle(env)


def ack_write(oracle, mn, pid, va, data, retries=0):
    token = oracle.write_begin(mn, pid, va, data)
    oracle.write_acked(token, retries=retries)
    return token


def check_read(oracle, mn, pid, va, data, start_at=None, retries=0):
    token = oracle.read_begin(mn, pid, va, len(data))
    if start_at is not None:
        token.started_ns = start_at
    oracle.read_checked(token, data, retries=retries)
    return token


# -- committed values ----------------------------------------------------------


def test_read_your_write():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"hello")
    env.now = 100
    check_read(oracle, "mn0", 1, 0x1000, b"hello")
    assert oracle.ok
    assert oracle.bytes_checked == 5


def test_untouched_memory_reads_zero():
    env, oracle = make()
    check_read(oracle, "mn0", 1, 0x2000, b"\x00" * 8)
    assert oracle.ok
    check_read(oracle, "mn0", 1, 0x2000, b"\x00\x07")
    assert not oracle.ok
    assert oracle.total_mismatches == 1
    assert oracle.mismatches[0].va == 0x2001
    assert oracle.mismatches[0].observed == 0x07


def test_stale_read_flagged():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"\xaa")
    env.now = 50
    ack_write(oracle, "mn0", 1, 0x1000, b"\xbb")
    env.now = 100
    # Read started after the second commit: 0xaa is no longer legal.
    check_read(oracle, "mn0", 1, 0x1000, b"\xaa", start_at=60)
    assert oracle.total_mismatches == 1
    detail = oracle.mismatches[0].describe()
    assert "0xaa" in detail and "mn0" in detail


def test_spaces_are_isolated_per_mn_and_pid():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"\xaa")
    check_read(oracle, "mn1", 1, 0x1000, b"\x00")   # other board: zero
    check_read(oracle, "mn0", 2, 0x1000, b"\x00")   # other pid: zero
    assert oracle.ok


# -- concurrency windows -------------------------------------------------------


def test_commit_inside_read_window_old_and_new_both_legal():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"\x01")
    env.now = 100
    read = oracle.read_begin("mn0", 1, 0x1000, 1)
    env.now = 150
    ack_write(oracle, "mn0", 1, 0x1000, b"\x02")   # lands mid-read
    env.now = 200
    oracle.read_checked(read, b"\x01")              # served before it
    read2 = oracle.read_begin("mn0", 1, 0x1000, 1)
    oracle.read_checked(read2, b"\x02")             # or after
    assert oracle.ok
    # But a value that was never committed stays illegal.
    check_read(oracle, "mn0", 1, 0x1000, b"\x03", start_at=100)
    assert oracle.total_mismatches == 1


def test_inflight_write_may_or_may_not_be_visible():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"\x01")
    env.now = 100
    pending = oracle.write_begin("mn0", 1, 0x1000, b"\x02")  # never acked
    check_read(oracle, "mn0", 1, 0x1000, b"\x01")
    check_read(oracle, "mn0", 1, 0x1000, b"\x02")
    assert oracle.ok
    # Once acked, only the new value survives.
    env.now = 200
    oracle.write_acked(pending)
    check_read(oracle, "mn0", 1, 0x1000, b"\x01", start_at=300)
    assert oracle.total_mismatches == 1


def test_failed_write_ghost_acceptable_until_next_commit():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"\x01")
    env.now = 100
    doomed = oracle.write_begin("mn0", 1, 0x1000, b"\x05")
    env.now = 150
    oracle.write_failed(doomed)
    check_read(oracle, "mn0", 1, 0x1000, b"\x05", start_at=200)  # ghost
    check_read(oracle, "mn0", 1, 0x1000, b"\x01", start_at=200)  # or not
    assert oracle.ok
    env.now = 300
    ack_write(oracle, "mn0", 1, 0x1000, b"\x07")   # commit clears ghosts
    check_read(oracle, "mn0", 1, 0x1000, b"\x05", start_at=400)
    assert oracle.total_mismatches == 1


def test_ghost_cap_taints_instead_of_growing():
    env, oracle = make()
    for value in range(ShadowOracle.GHOST_CAP + 2):
        doomed = oracle.write_begin("mn0", 1, 0x1000, bytes([value + 1]))
        oracle.write_failed(doomed)
    # Tainted byte: anything goes, counted unchecked, no mismatch.
    check_read(oracle, "mn0", 1, 0x1000, b"\xff")
    assert oracle.ok
    assert oracle.unchecked_bytes == 1


def test_history_eviction_counts_unchecked_not_mismatch():
    env, oracle = make()
    read = oracle.read_begin("mn0", 1, 0x1000, 1)   # starts at t=0
    # Push far more commits than HISTORY_DEPTH inside the read window.
    for step in range(ShadowOracle.HISTORY_DEPTH + 5):
        env.now = 10 + step
        ack_write(oracle, "mn0", 1, 0x1000, bytes([step + 1]))
    env.now = 1000
    # The pre-window value (0) was evicted: unknowable, not wrong.
    oracle.read_checked(read, b"\x00")
    assert oracle.ok
    assert oracle.unchecked_bytes == 1


# -- atomics -------------------------------------------------------------------


def test_atomic_updates_mirror_word():
    env, oracle = make()
    token = oracle.atomic_begin("mn0", 1, 0x1000, AtomicOp("faa", value=5))
    env.now = 10
    oracle.atomic_acked(token, AtomicResult(old_value=0, success=True))
    env.now = 20
    check_read(oracle, "mn0", 1, 0x1000,
               (5).to_bytes(8, "little"), start_at=15)
    assert oracle.ok
    assert oracle.atomics_tracked == 1


def test_double_applied_faa_diverges_from_mirror():
    env, oracle = make()
    token = oracle.atomic_begin("mn0", 1, 0x1000, AtomicOp("faa", value=1))
    env.now = 10
    oracle.atomic_acked(token, AtomicResult(old_value=0, success=True))
    # A dedup bug applied the faa twice: DRAM holds 2, the mirror holds 1.
    env.now = 20
    check_read(oracle, "mn0", 1, 0x1000,
               (2).to_bytes(8, "little"), start_at=15)
    assert oracle.total_mismatches == 1


def test_failed_atomic_taints_word():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, (7).to_bytes(8, "little"))
    env.now = 10
    token = oracle.atomic_begin("mn0", 1, 0x1000, AtomicOp("faa", value=1))
    oracle.atomic_failed(token)
    env.now = 20
    # 7 or 8 would both be fine — and so is garbage: the word is tainted.
    check_read(oracle, "mn0", 1, 0x1000, (99).to_bytes(8, "little"),
               start_at=15)
    assert oracle.ok
    assert oracle.unchecked_bytes == 8


# -- lifecycle -----------------------------------------------------------------


def test_region_cleared_resets_to_zero_fill():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"\xaa\xbb")
    oracle.region_cleared("mn0", 1, 0x1000, 4096)
    env.now = 100
    check_read(oracle, "mn0", 1, 0x1000, b"\x00\x00", start_at=50)
    assert oracle.ok


def test_region_remapped_moves_mirror():
    env, oracle = make()
    ack_write(oracle, "mn0", 7, 0x1000, b"data")
    oracle.region_remapped(7, "mn0", 0x1000, "mn1", 0x9000, 4096)
    env.now = 100
    check_read(oracle, "mn1", 7, 0x9000, b"data", start_at=50)
    check_read(oracle, "mn0", 7, 0x1000, b"\x00" * 4, start_at=50)
    assert oracle.ok


# -- epoch fencing -------------------------------------------------------------


def test_zero_retry_ack_across_crash_window_flagged():
    env, oracle = make()
    token = oracle.write_begin("mn0", 1, 0x1000, b"\x01")
    env.now = 100
    oracle.on_board_crash("mn0")
    env.now = 200
    oracle.on_board_restart("mn0")
    env.now = 300
    oracle.write_acked(token, retries=0)
    assert len(oracle.epoch_violations) == 1
    violation = oracle.epoch_violations[0]
    assert (violation.crash_ns, violation.restart_ns) == (100, 200)
    assert "post-fence" in violation.describe()


def test_retransmitted_ack_across_crash_window_is_legal():
    env, oracle = make()
    token = oracle.write_begin("mn0", 1, 0x1000, b"\x01")
    env.now = 100
    oracle.on_board_crash("mn0")
    env.now = 200
    oracle.on_board_restart("mn0")
    env.now = 300
    oracle.write_acked(token, retries=2)   # the retry explains the ack
    assert not oracle.epoch_violations


def test_ack_before_restart_is_legal():
    env, oracle = make()
    token = oracle.write_begin("mn0", 1, 0x1000, b"\x01")
    env.now = 100
    oracle.on_board_crash("mn0")
    env.now = 150
    oracle.write_acked(token, retries=0)   # board still down: no window
    assert not oracle.epoch_violations


def test_crash_on_other_board_ignored():
    env, oracle = make()
    token = oracle.write_begin("mn0", 1, 0x1000, b"\x01")
    env.now = 100
    oracle.on_board_crash("mn1")
    env.now = 200
    oracle.on_board_restart("mn1")
    env.now = 300
    oracle.write_acked(token, retries=0)
    assert not oracle.epoch_violations


def test_report_shape():
    env, oracle = make()
    ack_write(oracle, "mn0", 1, 0x1000, b"\x01")
    check_read(oracle, "mn0", 1, 0x1000, b"\x01", start_at=0)
    report = oracle.report()
    assert report["writes_tracked"] == 1
    assert report["reads_checked"] == 1
    assert report["read_mismatches"] == 0
    assert report["mismatch_details"] == []

"""Unit tests for the invariant predicates.

Each test drives a real cluster into a healthy state, asserts the sweep
is clean, then corrupts one structure directly and asserts exactly the
matching invariant fires.  Corruptions are undone where later asserts
need a sane board again.
"""

from repro.cluster import ClioCluster
from repro.params import MB
from repro.verify import (
    check_board,
    check_cluster,
    check_transport,
    quick_check_board,
)


def make_cluster(**kwargs):
    kwargs.setdefault("num_cns", 1)
    kwargs.setdefault("mn_capacity", 64 * MB)
    return ClioCluster(**kwargs)


def run_workload(cluster, pid=6001, io=64):
    """Alloc + write + read so every structure has live entries."""
    result = {}

    def app():
        thread = cluster.cn(0).process("mn0", pid=pid).thread()
        va = yield from thread.ralloc(4096)
        yield from thread.rwrite(va, b"\x42" * io)
        result["data"] = yield from thread.rread(va, io)
        result["va"] = va

    cluster.run(until=cluster.env.process(app()))
    return result


def names(violations):
    return sorted({v.invariant for v in violations})


def test_healthy_cluster_is_clean():
    cluster = make_cluster()
    run_workload(cluster)
    assert check_cluster(cluster) == []
    assert quick_check_board(cluster.mn) == []


def test_pa_conservation_detects_leaked_page():
    cluster = make_cluster()
    run_workload(cluster)
    board = cluster.mn
    board.pa_allocator._reserved -= 1   # a page vanishes from the world
    violations = check_board(board)
    assert names(violations) == ["pa-conservation"]
    assert "free=" in violations[0].describe()
    board.pa_allocator._reserved += 1
    assert check_board(board) == []


def test_pa_free_while_mapped_detected():
    cluster = make_cluster()
    run_workload(cluster)
    board = cluster.mn
    mapped = next(e.ppn for e in board.page_table._index.values()
                  if e.present)
    board.pa_allocator._free.append(mapped)
    violations = check_board(board)
    assert "pa-free-while-mapped" in names(violations)


def test_tlb_coherence_detects_stale_entry():
    cluster = make_cluster()
    run_workload(cluster, pid=6002)
    board = cluster.mn
    assert board.tlb._entries, "workload should have warmed the TLB"
    key = next(iter(board.tlb._entries))
    ppn, permission = board.tlb._entries[key]
    board.tlb._entries[key] = (ppn + 1, permission)   # stale translation
    violations = check_board(board)
    assert "tlb-coherence" in names(violations)
    board.tlb._entries[key] = (ppn, permission)
    # An entry for a page the table never mapped is also incoherent.
    board.tlb._entries[(9999, 0)] = (ppn, permission)
    assert "tlb-coherence" in names(check_board(board))


def test_sync_mutual_exclusion_watermark():
    cluster = make_cluster()
    board = cluster.mn
    board.atomic_unit.max_active = 2
    assert names(check_board(board)) == ["sync-mutual-exclusion"]
    assert names(quick_check_board(board)) == ["sync-mutual-exclusion"]


def test_inflight_negative_detected():
    cluster = make_cluster()
    board = cluster.mn
    board._inflight = -1
    assert "inflight" in names(quick_check_board(board))
    assert "inflight" in names(check_board(board))


def test_transport_window_mismatch_detected():
    cluster = make_cluster()
    run_workload(cluster, pid=6003)
    node = cluster.cn(0)
    assert check_transport(node) == []
    controller = next(iter(node.transport._congestion.values()))
    controller.outstanding += 1   # phantom in-flight request
    violations = check_transport(node)
    assert names(violations) == ["transport-window"]
    controller.outstanding -= 2   # now negative
    assert "transport-window" in names(check_transport(node))


def test_transport_conservation_detected():
    cluster = make_cluster()
    run_workload(cluster, pid=6004)
    node = cluster.cn(0)
    node.transport.requests_completed += 5   # settled more than issued
    assert "transport-conservation" in names(check_transport(node))


def test_violation_describe_mentions_subject_and_time():
    cluster = make_cluster()
    board = cluster.mn
    board.atomic_unit.max_active = 3
    violation = check_board(board)[0]
    text = violation.describe()
    assert "mn0" in text and "sync-mutual-exclusion" in text
    assert f"t={cluster.env.now}" in text

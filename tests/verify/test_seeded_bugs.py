"""Seeded-bug detection: prove every checker can actually fail.

A checker that has never caught a bug is indistinguishable from one that
checks nothing.  Each test plants one specific defect — broken atomic
serialization, silent DRAM corruption, defeated epoch fencing, a
double-applied atomic — and asserts the matching layer reports it.
"""

from dataclasses import replace

from repro.cluster import ClioCluster
from repro.params import MB, MS, US, ClioParams
from repro.sim import Resource
from repro.verify import (
    AtomicWordModel,
    HistoryOp,
    check_history,
    run_sync_linearizability,
)


def test_mutated_atomic_unit_capacity_detected():
    """Seeded bug: the 'single' atomic unit admits two ops at once.

    The quick per-request invariant check must catch the broken
    mutual-exclusion watermark during the standard sync workload.
    """

    def mutate(cluster):
        unit = cluster.mn.atomic_unit
        unit._unit = Resource(cluster.env, capacity=2)

    result = run_sync_linearizability(seed=0, crash=False, trace=False,
                                      mutate=mutate)
    assert not result.ok
    assert any(v.invariant == "sync-mutual-exclusion"
               for v in result.violations), result.problems()

    # Control: the unmutated run is clean.
    clean = run_sync_linearizability(seed=0, crash=False, trace=False)
    assert clean.ok, clean.problems()


def test_dram_corruption_detected_by_oracle():
    """Seeded bug: a byte flips in board DRAM behind the protocol's back.

    No write acknowledged the new bytes, so the next read must trip the
    shadow oracle with the corrupted values.
    """
    cluster = ClioCluster(num_cns=1, mn_capacity=64 * MB, seed=7)
    verifier = cluster.enable_verification()
    env = cluster.env
    board = cluster.mn

    def app():
        thread = cluster.cn(0).process("mn0", pid=4141).thread()
        va = yield from thread.ralloc(4096)
        yield from thread.rwrite(va, b"\xaa" * 64)
        page = board.page_spec.page_size
        entry = board.page_table.lookup(4141, va // page)
        board.dram.write(entry.ppn * page + (va % page), b"\xee" * 8)
        yield from thread.rread(va, 64)

    cluster.run(until=env.process(app()))
    report = verifier.report()
    assert report["read_mismatches"] == 8
    detail = report["mismatch_details"][0]
    assert "0xee" in detail and "pid4141" in detail


def test_broken_epoch_fencing_detected_end_to_end():
    """Seeded bug: the crash 'forgets' to advance the epoch.

    An atomic parked behind a long holder spans a full crash+restart;
    with fencing defeated, its pre-crash handler completes and the
    response escapes — acknowledged with zero retries across the crash
    window, exactly what the oracle's epoch rule flags.  The control run
    (fencing intact) forces a retransmission instead and stays clean.
    """
    params = ClioParams.prototype()
    params = replace(params, clib=replace(params.clib, timeout_ns=5 * MS,
                                          slow_timeout_ns=10 * MS,
                                          max_retries=3))

    def run(seeded_bug):
        cluster = ClioCluster(params=params, num_cns=1,
                              mn_capacity=64 * MB, seed=3)
        verifier = cluster.enable_verification()
        env = cluster.env
        board = cluster.mn

        def holder():
            request = board.atomic_unit._unit.request()
            yield request
            yield env.timeout(500 * US)
            board.atomic_unit._unit.release(request)

        def app():
            thread = cluster.cn(0).process("mn0", pid=5252).thread()
            va = yield from thread.ralloc(4096)
            env.process(holder())
            yield env.timeout(10 * US)
            yield from thread.rfaa(va, 1)

        def crash_it():
            board.crash()
            if seeded_bug:
                board._epoch -= 1   # fencing defeated

        done = env.process(app())
        env.schedule_callback(150 * US, crash_it)
        env.schedule_callback(300 * US, board.restart)
        cluster.run(until=done)
        return verifier.report()

    buggy = run(seeded_bug=True)
    assert buggy["epoch_violations"] == 1
    assert "post-fence" in buggy["epoch_details"][0]

    fenced = run(seeded_bug=False)
    assert fenced["epoch_violations"] == 0
    assert fenced["read_mismatches"] == 0


def test_double_applied_atomic_rejected_by_checker():
    """Seeded bug: dedup failure double-applies a retried faa.

    Both increments report old=0 — a history only a broken retry ring
    can produce; the linearizability checker must prove it impossible.
    """
    history = [
        HistoryOp(client="cn0", action=("faa", 1), result=(0, True),
                  start_ns=0, end_ns=100),
        HistoryOp(client="cn1", action=("faa", 1), result=(0, True),
                  start_ns=10, end_ns=90),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is False

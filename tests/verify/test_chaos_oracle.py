"""Chaos under the oracle: every fault scenario, zero unexplained reads.

Two claims are pinned here:

* **Soundness under faults** — running the full checking stack through
  every canned chaos scenario yields zero read mismatches, zero epoch
  violations, and zero invariant violations.  Crashes, link flaps, loss
  bursts, and ARM stalls must all be *masked* by retransmission and the
  epoch fence, never surfaced as wrong data.
* **Passivity** — verification is observation only.  A verified run's
  fingerprint (timestamps, op outcomes, counters) is bit-identical to an
  unverified one, and the verified no-fault run still matches the golden
  fingerprint captured before the verify subsystem existed.
"""

import pytest

from repro.cluster import ClioCluster
from repro.faults.scenarios import SCENARIOS, run_chaos
from repro.params import MB
from tests.faults.test_chaos import GOLDEN_NO_FAULT, no_fault_fingerprint


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_scenario_has_zero_unexplained_reads(scenario):
    report = run_chaos(scenario, seed=1234, ops_per_worker=400, verify=True)
    verification = report.verification
    assert verification is not None
    assert verification["read_mismatches"] == 0, \
        verification["mismatch_details"]
    assert verification["epoch_violations"] == 0, \
        verification["epoch_details"]
    assert verification["invariant_violations"] == 0, \
        verification["violations"]
    assert report.check_invariants() == []
    # The oracle actually watched the run, it didn't sit idle.
    assert verification["reads_checked"] > 0
    assert verification["writes_tracked"] > 0
    assert verification["bytes_checked"] > 0


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_verification_is_passive(scenario):
    verified = run_chaos(scenario, seed=4321, ops_per_worker=300,
                         verify=True)
    plain = run_chaos(scenario, seed=4321, ops_per_worker=300)
    assert verified.fingerprint() == plain.fingerprint()


def test_verified_no_fault_run_matches_golden_fingerprint():
    # Same workload as tests/faults/test_chaos.py, but with the verifier
    # attached: the golden fingerprint must still hold bit-for-bit.
    cluster = ClioCluster(seed=1234, num_cns=2, mn_capacity=256 * MB)
    cluster.enable_verification()
    # no_fault_fingerprint builds its own cluster; replay its workload
    # here against the verified one by reusing the helper's core loop.
    from repro.core.addr import Permission
    from repro.net.packet import PacketType

    done = []

    def worker(cn_index, pid):
        transport = cluster.cn(cn_index).transport
        outcome = yield from transport.request(
            "mn0", PacketType.ALLOC, pid=pid,
            payload=(8 * MB, Permission.READ_WRITE, None))
        va = outcome.body.value.va
        for index in range(120):
            offset = (index * 4096) % (4 * MB)
            yield from transport.request(
                "mn0", PacketType.WRITE, pid=pid, va=va + offset, size=64,
                data=bytes([index % 256]) * 64)
            yield from transport.request(
                "mn0", PacketType.READ, pid=pid, va=va + offset, size=64)
        done.append(cluster.env.now)

    procs = [cluster.env.process(worker(0, 9001)),
             cluster.env.process(worker(1, 9002))]
    cluster.run(until=cluster.env.all_of(procs))
    fingerprint = (cluster.env.now, tuple(sorted(done)),
                   cluster.mn.requests_served,
                   tuple(cn.transport.requests_completed
                         for cn in cluster.cns),
                   tuple(cn.transport.total_retries for cn in cluster.cns))
    assert fingerprint == GOLDEN_NO_FAULT == no_fault_fingerprint()


def test_verified_runs_are_bit_identical_across_repeats():
    a = run_chaos("board-crash", seed=99, ops_per_worker=300, verify=True)
    b = run_chaos("board-crash", seed=99, ops_per_worker=300, verify=True)
    assert a.fingerprint() == b.fingerprint()
    assert a.verification["bytes_checked"] == b.verification["bytes_checked"]


def test_unverified_report_has_no_verification_block():
    report = run_chaos("link-flap", seed=5, ops_per_worker=100)
    assert report.verification is None
    assert report.check_invariants() == []


def test_enable_verification_is_idempotent_and_detachable():
    cluster = ClioCluster(num_cns=1, mn_capacity=64 * MB)
    verifier = cluster.enable_verification()
    assert cluster.enable_verification() is verifier
    assert cluster.mn.verifier is verifier
    assert cluster.cn(0).verifier is verifier
    cluster.disable_verification()
    assert cluster.verifier is None
    assert cluster.mn.verifier is None
    assert cluster.cn(0).verifier is None

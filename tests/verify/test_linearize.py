"""Unit tests for the Wing–Gong linearizability checker.

The checker is itself a trusted oracle, so it gets adversarial tests:
known-linearizable histories must pass, known-impossible ones must fail
with ``ok is False`` (not merely undecided), and indeterminate ops must
be allowed to either take effect or vanish.
"""

from repro.verify import (
    AtomicWordModel,
    HistoryOp,
    KVModel,
    check_history,
)


def op(client, action, result, start, end, completed=True):
    return HistoryOp(client=client, action=action, result=result,
                     start_ns=start, end_ns=end, completed=completed)


# -- atomic word ---------------------------------------------------------------


def test_empty_history_is_linearizable():
    result = check_history([], AtomicWordModel)
    assert result.ok is True


def test_sequential_faa_chain():
    history = [
        op("a", ("faa", 1), (0, True), 0, 10),
        op("a", ("faa", 1), (1, True), 20, 30),
        op("a", ("faa", 5), (2, True), 40, 50),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is True
    assert [o.result[0] for o in result.order] == [0, 1, 2]


def test_concurrent_faa_both_orders_explored():
    # Two overlapping faa(+1): the observed old values force the order
    # b-then-a even though a started first.
    history = [
        op("a", ("faa", 1), (1, True), 0, 100),
        op("b", ("faa", 1), (0, True), 10, 90),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is True
    assert result.order[0].client == "b"


def test_double_applied_faa_rejected():
    # The crash double-apply hazard: two successful faa(+1) both claiming
    # old=0 cannot be linearized — one of them must have seen 1.
    history = [
        op("a", ("faa", 1), (0, True), 0, 100),
        op("b", ("faa", 1), (0, True), 10, 90),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is False
    assert "no linearization" in result.reason


def test_real_time_order_enforced():
    # a completed strictly before b started, so a must precede b; but the
    # observed old values only work in the order b-then-a.  Not
    # linearizable even though a pure value order exists.
    history = [
        op("a", ("faa", 1), (1, True), 0, 10),
        op("b", ("faa", 1), (0, True), 20, 30),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is False


def test_tas_and_cas_semantics():
    history = [
        op("a", ("tas",), (0, True), 0, 10),      # 0 -> 1
        op("b", ("tas",), (1, False), 20, 30),    # stays 1
        op("a", ("cas", 1, 7), (1, True), 40, 50),
        op("b", ("cas", 1, 9), (7, False), 60, 70),
        op("a", ("store", 0), (7, True), 80, 90),
        op("b", ("tas",), (0, True), 100, 110),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is True


def test_indeterminate_op_may_take_effect():
    # The timed-out faa must have applied for b's observation to hold.
    history = [
        op("a", ("faa", 1), None, 0, None, completed=False),
        op("b", ("faa", 1), (1, True), 50, 60),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is True


def test_indeterminate_op_may_vanish():
    # ...or it may never have reached the board.
    history = [
        op("a", ("faa", 1), None, 0, None, completed=False),
        op("b", ("faa", 1), (0, True), 50, 60),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is True


def test_indeterminate_cannot_rescue_impossible_history():
    # Even with the indeterminate op free to land anywhere (or nowhere),
    # two successful tas from value 0 cannot both be first.
    history = [
        op("x", ("store", 5), None, 0, None, completed=False),
        op("a", ("tas",), (0, True), 100, 110),
        op("b", ("tas",), (0, True), 120, 130),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is False


def test_word_wraps_at_64_bits():
    history = [
        op("a", ("store", (1 << 64) - 1), (0, True), 0, 10),
        op("a", ("faa", 1), ((1 << 64) - 1, True), 20, 30),
        op("a", ("read",), 0, 40, 50),
    ]
    result = check_history(history, AtomicWordModel)
    assert result.ok is True


def test_state_budget_reports_undecided():
    # Fully-overlapping successful stores of distinct values: a dense
    # search space.  A tiny budget must yield None, never a verdict.
    history = [
        op(f"c{i}", ("store", i), (None, None), 0, 1000, completed=False)
        for i in range(20)
    ]
    history.append(op("r", ("read",), 7, 500, 600))
    result = check_history(history, AtomicWordModel, max_states=5)
    assert result.ok is None
    assert "budget" in result.reason
    assert bool(result) is False


def test_oversized_history_is_undecided_not_crash():
    history = [op("a", ("faa", 1), (i, True), i * 10, i * 10 + 5)
               for i in range(1300)]
    result = check_history(history, AtomicWordModel)
    assert result.ok is None


# -- KV model ------------------------------------------------------------------


def test_kv_sequential_put_get():
    history = [
        op("a", ("put", "k", b"1"), "ok", 0, 10),
        op("b", ("get", "k"), b"1", 20, 30),
        op("a", ("put", "k", b"2"), "ok", 40, 50),
        op("b", ("get", "k"), b"2", 60, 70),
        op("b", ("get", "missing"), None, 80, 90),
    ]
    result = check_history(history, KVModel)
    assert result.ok is True


def test_kv_stale_read_rejected():
    # get returned the old value after the put provably completed.
    history = [
        op("a", ("put", "k", b"new"), "ok", 0, 10),
        op("b", ("get", "k"), None, 20, 30),
    ]
    result = check_history(history, KVModel)
    assert result.ok is False


def test_kv_concurrent_put_get_either_value():
    history = [
        op("a", ("put", "k", b"x"), "ok", 0, 100),
        op("b", ("get", "k"), None, 10, 20),   # linearizes before the put
    ]
    result = check_history(history, KVModel)
    assert result.ok is True


def test_kv_delete_result_checked():
    history = [
        op("a", ("put", "k", b"1"), "ok", 0, 10),
        op("a", ("delete", "k"), True, 20, 30),
        op("a", ("delete", "k"), False, 40, 50),
        op("a", ("get", "k"), None, 60, 70),
    ]
    result = check_history(history, KVModel)
    assert result.ok is True

"""End-to-end verification harness runs at seed — everything must pass.

These are the acceptance runs: the MN atomic unit and Clio-KV produce
linearizable histories (including crash-spanning ones), the oracle sees
no unexplained bytes, and the ``repro verify`` CLI reports a clean bill.
"""

import pytest

from repro.cli import main
from repro.verify import (
    run_kv_linearizability,
    run_sync_linearizability,
    run_verified_chaos,
)


@pytest.mark.parametrize("crash", [False, True],
                         ids=["steady", "crash-spanning"])
def test_sync_unit_history_linearizable(crash):
    result = run_sync_linearizability(seed=0, crash=crash, trace=False)
    assert result.ok, result.problems()
    assert result.lin.ok is True
    assert result.history_len > 0
    assert result.report["atomics_tracked"] > 0
    assert result.violations == []


def test_sync_unit_histories_from_other_seeds():
    for seed in (1, 2):
        result = run_sync_linearizability(seed=seed, crash=True,
                                          ops_per_client=20, trace=False)
        assert result.ok, (seed, result.problems())


@pytest.mark.parametrize("crash", [False, True],
                         ids=["steady", "crash-spanning"])
def test_kv_history_linearizable(crash):
    result = run_kv_linearizability(seed=0, crash=crash, trace=False)
    assert result.ok, result.problems()
    assert result.lin.ok is True
    assert result.history_len > 0


def test_crash_run_actually_spans_a_crash():
    result = run_sync_linearizability(seed=0, crash=True, trace=False)
    assert "crash" in " ".join(result.notes).lower()
    # Some ops must be indeterminate (in flight when the board died) for
    # the crash case to exercise the checker's drop-or-keep branch —
    # or at least the run recorded the crash window.
    assert result.report["atomics_tracked"] > 0


def test_verified_chaos_wrapper():
    report = run_verified_chaos("board-crash", seed=1234,
                                ops_per_worker=200)
    assert report.verification is not None
    assert report.check_invariants() == []


def test_cli_verify_clean(capsys):
    assert main(["verify", "--ops", "12", "--clients", "2"]) == 0
    out = capsys.readouterr().out
    assert "sync-unit" in out
    assert "clio-kv" in out
    assert "oracle clean" in out


def test_cli_verify_no_crash(capsys):
    assert main(["verify", "--ops", "8", "--clients", "2",
                 "--no-crash"]) == 0

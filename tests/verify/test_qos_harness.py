"""QoS acceptance: noisy-neighbor isolation + golden invariance.

Two properties ride on the noisy-neighbor harness scenario:

* isolation — with shaping the victim's p99 inflation stays under the
  1.5x bar; without it the same aggressors blow the victim's tail
  several-fold (the leak the bar exists to document);
* determinism — the scenario's op-log digest is bit-identical flat vs
  partitioned, and merely *configuring* tenants (without enabling
  shaping) moves none of the pre-existing golden fingerprints.
"""

import pytest

from repro.verify import run_qos_noisy_neighbor


@pytest.fixture(scope="module")
def shaped():
    return run_qos_noisy_neighbor(seed=7, shaping=True)


@pytest.fixture(scope="module")
def unshaped():
    return run_qos_noisy_neighbor(seed=7, shaping=False)


def test_oracle_and_invariants_clean(shaped, unshaped):
    assert shaped.ok, shaped.problems()
    assert unshaped.ok, unshaped.problems()


def test_shaping_holds_the_isolation_bar(shaped):
    assert shaped.extras["victim_p99_inflation"] <= 1.5


def test_unshaped_victim_tail_blows_up(unshaped):
    assert unshaped.extras["victim_p99_inflation"] >= 2.0


def test_shaper_actually_shaped(shaped):
    stats = shaped.extras["shapers"]["mn0"]["tenants"]
    assert stats["aggressor"]["shaped"] > 0
    assert stats["victim"]["shaped"] == 0


def test_unshaped_run_has_no_shapers(unshaped):
    assert unshaped.extras["shapers"] == {}


def test_flat_matches_partitioned(shaped):
    partitioned = run_qos_noisy_neighbor(seed=7, shaping=True,
                                         partitioned=True)
    assert partitioned.extras["fingerprint"] == shaped.extras["fingerprint"]
    assert partitioned.ok


# -- golden invariance: configured-but-disabled QoS is inert ------------------


def test_configured_qos_keeps_no_fault_golden():
    """A cluster whose params carry tenants (but never enable_qos) must
    reproduce the pre-QoS golden bit-for-bit: configuration alone
    schedules no events and draws no RNG."""
    from dataclasses import replace

    from repro.core.addr import Permission
    from repro.cluster import ClioCluster
    from repro.net.packet import PacketType
    from repro.params import ClioParams, MB, QoSParams, TenantConfig
    from tests.faults.test_chaos import GOLDEN_NO_FAULT

    params = replace(ClioParams.prototype(), qos=QoSParams(tenants=(
        TenantConfig(name="a", clients=("cn0",), share=0.5),
        TenantConfig(name="b", clients=("cn1",), share=0.5),
    )))
    cluster = ClioCluster(params=params, seed=1234, num_cns=2,
                          mn_capacity=256 * MB)
    done = []

    def worker(cn_index, pid):
        transport = cluster.cn(cn_index).transport
        outcome = yield from transport.request(
            "mn0", PacketType.ALLOC, pid=pid,
            payload=(8 * MB, Permission.READ_WRITE, None))
        va = outcome.body.value.va
        for index in range(120):
            offset = (index * 4096) % (4 * MB)
            yield from transport.request(
                "mn0", PacketType.WRITE, pid=pid, va=va + offset, size=64,
                data=bytes([index % 256]) * 64)
            yield from transport.request(
                "mn0", PacketType.READ, pid=pid, va=va + offset, size=64)
        done.append(cluster.env.now)

    procs = [cluster.env.process(worker(0, 9001)),
             cluster.env.process(worker(1, 9002))]
    cluster.run(until=cluster.env.all_of(procs))
    fingerprint = (cluster.env.now, tuple(sorted(done)),
                   cluster.mn.requests_served,
                   tuple(cn.transport.requests_completed
                         for cn in cluster.cns),
                   tuple(cn.transport.total_retries for cn in cluster.cns))
    assert fingerprint == GOLDEN_NO_FAULT


def test_goldens_unchanged_with_qos_types_in_tree():
    """The imported goldens themselves: already covered by their own
    test files, re-asserted here so a QoS regression that moves one
    fails in the QoS suite too."""
    from tests.cache.test_cache import GOLDEN_CACHED, cached_fingerprint
    from tests.clib.test_batching import GOLDEN_BATCHED, batched_fingerprint

    assert batched_fingerprint() == GOLDEN_BATCHED
    assert cached_fingerprint() == GOLDEN_CACHED

"""Model-based testing: the Clio radix tree versus a plain dict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.radix_tree import ClioRadixTree, register_chase_offload
from repro.cluster import ClioCluster

MB = 1 << 20

keys = st.binary(min_size=1, max_size=6)
operation = st.one_of(
    st.tuples(st.just("insert"), keys,
              st.integers(min_value=1, max_value=2 ** 32)),
    st.tuples(st.just("search"), keys),
)


@given(st.lists(operation, min_size=1, max_size=25))
@settings(max_examples=20, deadline=None)
def test_radix_tree_matches_dict(ops):
    cluster = ClioCluster(mn_capacity=512 * MB)
    register_chase_offload(cluster.mn.extend_path)
    thread = cluster.cn(0).process("mn0").thread()
    tree = ClioRadixTree(thread)
    reference: dict[bytes, int] = {}
    observations = []

    def app():
        yield from tree.setup(capacity_nodes=4096)
        for op in ops:
            if op[0] == "insert":
                _, key, value = op
                yield from tree.insert(key, value)
                reference[key] = value
            else:
                _, key = op
                got = yield from tree.search(key)
                observations.append((key, got, reference.get(key)))
        # Final sweep over every key ever inserted plus a probe miss.
        for key in list(reference):
            got = yield from tree.search(key)
            observations.append((key, got, reference[key]))
        got = yield from tree.search(b"\xff-definitely-absent")
        observations.append((b"absent", got, None))

    cluster.run(until=cluster.env.process(app()))
    for key, got, expected in observations:
        assert got == expected, key

"""Tests for Clio-KV (the offloaded key-value store)."""

import pytest

from repro.apps.kv_store import ClioKV, register_kv_offload
from repro.cluster import ClioCluster

MB = 1 << 20


def make_kv(num_cns=1, buckets=64):
    cluster = ClioCluster(num_cns=num_cns, mn_capacity=512 * MB)
    register_kv_offload(cluster.mn.extend_path, buckets=buckets,
                        capacity=16 * MB)
    threads = [cluster.cn(index).process("mn0").thread()
               for index in range(num_cns)]
    return cluster, [ClioKV(thread) for thread in threads]


def test_put_get_roundtrip():
    cluster, (kv,) = make_kv()
    result = {}

    def app():
        status = yield from kv.put(b"alpha", b"value-alpha")
        result["status"] = status
        result["value"] = yield from kv.get(b"alpha")

    cluster.run(until=cluster.env.process(app()))
    assert result["status"] == "created"
    assert result["value"] == b"value-alpha"


def test_get_missing_returns_none():
    cluster, (kv,) = make_kv()
    result = {}

    def app():
        result["value"] = yield from kv.get(b"ghost")

    cluster.run(until=cluster.env.process(app()))
    assert result["value"] is None


def test_update_in_place_and_grow():
    cluster, (kv,) = make_kv()
    result = {}

    def app():
        yield from kv.put(b"k", b"aaaa")
        result["update"] = yield from kv.put(b"k", b"bb")     # shrink fits
        result["short"] = yield from kv.get(b"k")
        result["grow"] = yield from kv.put(b"k", b"cccccccccc")  # re-create
        result["long"] = yield from kv.get(b"k")

    cluster.run(until=cluster.env.process(app()))
    assert result["update"] == "updated"
    assert result["short"] == b"bb"
    assert result["grow"] == "created"
    assert result["long"] == b"cccccccccc"


def test_delete_head_and_middle_of_chain():
    # One bucket forces chaining: deletes must relink correctly.
    cluster, (kv,) = make_kv(buckets=1)
    result = {}

    def app():
        yield from kv.put(b"a", b"1")
        yield from kv.put(b"b", b"2")
        yield from kv.put(b"c", b"3")
        result["del_b"] = yield from kv.delete(b"b")   # middle
        result["del_c"] = yield from kv.delete(b"c")   # head (LIFO chain)
        result["a"] = yield from kv.get(b"a")
        result["b"] = yield from kv.get(b"b")
        result["c"] = yield from kv.get(b"c")
        result["del_ghost"] = yield from kv.delete(b"zz")

    cluster.run(until=cluster.env.process(app()))
    assert result["del_b"] and result["del_c"]
    assert result["a"] == b"1"
    assert result["b"] is None and result["c"] is None
    assert not result["del_ghost"]


def test_collisions_in_one_bucket_all_retrievable():
    cluster, (kv,) = make_kv(buckets=1)
    keys = [f"key{index}".encode() for index in range(12)]
    result = {}

    def app():
        for index, key in enumerate(keys):
            yield from kv.put(key, b"v%d" % index)
        got = {}
        for index, key in enumerate(keys):
            got[key] = yield from kv.get(key)
        result["got"] = got

    cluster.run(until=cluster.env.process(app()))
    for index, key in enumerate(keys):
        assert result["got"][key] == b"v%d" % index


def test_concurrent_clients_from_two_cns():
    cluster, (kv0, kv1) = make_kv(num_cns=2)
    result = {}

    def client0():
        for index in range(10):
            yield from kv0.put(b"cn0-%d" % index, b"x%d" % index)

    def client1():
        for index in range(10):
            yield from kv1.put(b"cn1-%d" % index, b"y%d" % index)

    p0 = cluster.env.process(client0())
    p1 = cluster.env.process(client1())
    cluster.run(until=cluster.env.all_of([p0, p1]))

    def verify():
        values = []
        for index in range(10):
            values.append((yield from kv0.get(b"cn1-%d" % index)))
            values.append((yield from kv1.get(b"cn0-%d" % index)))
        result["values"] = values

    cluster.run(until=cluster.env.process(verify()))
    assert None not in result["values"]


def test_concurrent_writes_to_same_key_end_committed():
    """Atomic writes: the final value is one of the writers', not a blend."""
    cluster, (kv0, kv1) = make_kv(num_cns=2)
    result = {}

    def writer(kv, payload):
        for _ in range(5):
            yield from kv.put(b"contended", payload)

    p0 = cluster.env.process(writer(kv0, b"A" * 64))
    p1 = cluster.env.process(writer(kv1, b"B" * 64))
    cluster.run(until=cluster.env.all_of([p0, p1]))

    def read_back():
        result["value"] = yield from kv0.get(b"contended")

    cluster.run(until=cluster.env.process(read_back()))
    assert result["value"] in (b"A" * 64, b"B" * 64)


def test_empty_key_rejected():
    cluster, (kv,) = make_kv()

    def app():
        with pytest.raises(ValueError):
            yield from kv.put(b"", b"v")

    cluster.run(until=cluster.env.process(app()))

"""Tests for the radix tree and its pointer-chasing offload."""

import pytest

from repro.apps.radix_tree import (
    NODE_BYTES,
    ClioRadixTree,
    RDMARadixTree,
    pack_node,
    register_chase_offload,
    unpack_node,
)
from repro.baselines.rdma import RDMAMemoryNode
from repro.cluster import ClioCluster
from repro.params import BackendParams, ClioParams
from repro.sim import Environment

MB = 1 << 20


def test_node_pack_unpack_roundtrip():
    blob = pack_node(0x41, 123456, 789, 42)
    assert unpack_node(blob) == (0x41, 123456, 789, 42)
    with pytest.raises(ValueError):
        unpack_node(b"short")


def make_clio_tree():
    cluster = ClioCluster(mn_capacity=512 * MB)
    register_chase_offload(cluster.mn.extend_path)
    thread = cluster.cn(0).process("mn0").thread()
    tree = ClioRadixTree(thread)
    return cluster, tree


def test_clio_insert_and_search():
    cluster, tree = make_clio_tree()
    result = {}

    def app():
        yield from tree.setup(capacity_nodes=4096)
        yield from tree.insert(b"cat", 1)
        yield from tree.insert(b"car", 2)
        yield from tree.insert(b"dog", 3)
        result["cat"] = yield from tree.search(b"cat")
        result["car"] = yield from tree.search(b"car")
        result["dog"] = yield from tree.search(b"dog")
        result["cow"] = yield from tree.search(b"cow")
        result["ca"] = yield from tree.search(b"ca")

    cluster.run(until=cluster.env.process(app()))
    assert result == {"cat": 1, "car": 2, "dog": 3, "cow": None, "ca": None}


def test_clio_update_existing_key():
    cluster, tree = make_clio_tree()
    result = {}

    def app():
        yield from tree.setup(capacity_nodes=1024)
        yield from tree.insert(b"key", 10)
        yield from tree.insert(b"key", 20)
        result["value"] = yield from tree.search(b"key")

    cluster.run(until=cluster.env.process(app()))
    assert result["value"] == 20


def test_clio_search_uses_one_offload_rtt_per_level():
    cluster, tree = make_clio_tree()
    invocations_before = cluster.mn.extend_path.invocations

    def app():
        yield from tree.setup(capacity_nodes=1024)
        yield from tree.insert(b"abc", 7)
        value = yield from tree.search(b"abc")
        assert value == 7

    cluster.run(until=cluster.env.process(app()))
    # Exactly one pointer-chase invocation per key byte.
    assert cluster.mn.extend_path.invocations - invocations_before == 3


def test_clio_rejects_reserved_value_and_empty_key():
    cluster, tree = make_clio_tree()

    def app():
        yield from tree.setup(capacity_nodes=64)
        with pytest.raises(ValueError):
            yield from tree.insert(b"k", 0)
        with pytest.raises(ValueError):
            yield from tree.insert(b"", 5)

    cluster.run(until=cluster.env.process(app()))


def make_rdma_tree():
    env = Environment()
    from dataclasses import replace
    node = RDMAMemoryNode(env, replace(
        ClioParams.prototype(), backend=BackendParams(dram_capacity=512 * MB)))
    tree = RDMARadixTree(env, node, capacity_nodes=4096)
    return env, node, tree


def test_rdma_tree_semantics_match():
    env, node, tree = make_rdma_tree()
    result = {}

    def app():
        yield from tree.setup()
        yield from tree.insert(b"cat", 1)
        yield from tree.insert(b"car", 2)
        result["cat"] = yield from tree.search(b"cat")
        result["car"] = yield from tree.search(b"car")
        result["missing"] = yield from tree.search(b"cow")

    env.run(until=env.process(app()))
    assert result == {"cat": 1, "car": 2, "missing": None}


def test_rdma_search_pays_rtt_per_node():
    """RDMA walks node-by-node over the network — many more verb ops than
    Clio's one offload call per level."""
    env, node, tree = make_rdma_tree()

    def app():
        yield from tree.setup()
        for index in range(8):
            yield from tree.insert(bytes([65 + index]) + b"xy", index + 1)
        ops_before = node.ops
        value = yield from tree.search(b"Hxy")
        assert value == 8
        return node.ops - ops_before

    verb_ops = env.run(until=env.process(app()))
    # Walking to the 8th sibling plus two levels: well above 3 reads.
    assert verb_ops >= 8


def test_trees_agree_on_larger_key_set():
    cluster, clio_tree = make_clio_tree()
    env, node, rdma_tree = make_rdma_tree()
    keys = [f"k{index:03d}".encode() for index in range(40)]

    def build_clio():
        yield from clio_tree.setup(capacity_nodes=8192)
        for index, key in enumerate(keys):
            yield from clio_tree.insert(key, index + 1)
        values = []
        for key in keys:
            values.append((yield from clio_tree.search(key)))
        return values

    def build_rdma():
        yield from rdma_tree.setup()
        for index, key in enumerate(keys):
            yield from rdma_tree.insert(key, index + 1)
        values = []
        for key in keys:
            values.append((yield from rdma_tree.search(key)))
        return values

    clio_values = cluster.run(until=cluster.env.process(build_clio()))
    rdma_values = env.run(until=env.process(build_rdma()))
    expected = list(range(1, 41))
    assert clio_values == expected
    assert rdma_values == expected

"""Tests for the image compression application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.image_compression import (
    ImageCompressionClient,
    RDMAImageCompressionClient,
    rle_compress,
    rle_decompress,
    synthetic_image,
)
from repro.baselines.rdma import RDMAMemoryNode
from repro.cluster import ClioCluster
from repro.params import BackendParams, ClioParams
from repro.sim import Environment
from repro.sim.rng import RandomStream

MB = 1 << 20


def test_rle_roundtrip_simple():
    data = b"aaaabbbcc"
    assert rle_decompress(rle_compress(data)) == data


def test_rle_empty():
    assert rle_compress(b"") == b""
    assert rle_decompress(b"") == b""


def test_rle_long_runs_split_at_255():
    data = b"x" * 600
    compressed = rle_compress(data)
    assert rle_decompress(compressed) == data
    assert len(compressed) == 6   # 255+255+90 -> three pairs


def test_rle_compresses_runs():
    image = synthetic_image(RandomStream(1, "img"), side=64)
    compressed = rle_compress(image)
    assert len(compressed) < len(image)


def test_rle_odd_stream_rejected():
    with pytest.raises(ValueError):
        rle_decompress(b"\x01")


@given(st.binary(min_size=0, max_size=2000))
@settings(max_examples=100)
def test_rle_roundtrip_property(data):
    assert rle_decompress(rle_compress(data)) == data


def test_synthetic_image_shape_and_determinism():
    a = synthetic_image(RandomStream(5, "img"), side=32)
    b = synthetic_image(RandomStream(5, "img"), side=32)
    assert len(a) == 32 * 32
    assert a == b


def test_clio_client_compress_decompress_verifies():
    cluster = ClioCluster(mn_capacity=512 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    client = ImageCompressionClient(thread, RandomStream(2, "photos"),
                                    image_side=32, slots=2)
    result = {}

    def app():
        yield from client.setup()
        size = yield from client.compress_one(0)
        result["compressed_size"] = size
        image = yield from client.decompress_one(0)
        result["image"] = image
        original = yield from thread.rread(client.original_va,
                                           client.image_bytes)
        result["original"] = original

    cluster.run(until=cluster.env.process(app()))
    assert result["image"] == result["original"]
    assert 0 < result["compressed_size"] < client.image_bytes


def test_clio_workload_counts_operations():
    cluster = ClioCluster(mn_capacity=512 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    client = ImageCompressionClient(thread, RandomStream(3, "photos"),
                                    image_side=32, slots=2)

    def app():
        yield from client.setup()
        runtime = yield from client.run_workload(4)
        assert runtime > 0

    cluster.run(until=cluster.env.process(app()))
    assert client.images_processed == 8   # 4 compress + 4 decompress


def test_rdma_client_matches_content_semantics():
    env = Environment()
    from dataclasses import replace
    node = RDMAMemoryNode(env, replace(
        ClioParams.prototype(), backend=BackendParams(dram_capacity=512 * MB)))
    client = RDMAImageCompressionClient(env, node, RandomStream(4, "photos"),
                                        image_side=32, slots=2)
    result = {}

    def app():
        yield from client.setup()
        yield from client.compress_one(0)
        image = yield from client.decompress_one(0)
        original, _ = yield from node.read(client.qp, client.region, 0,
                                           client.image_bytes)
        result["match"] = image == original

    env.run(until=env.process(app()))
    assert result["match"]


def test_each_rdma_client_needs_its_own_mr():
    env = Environment()
    from dataclasses import replace
    node = RDMAMemoryNode(env, replace(
        ClioParams.prototype(), backend=BackendParams(dram_capacity=512 * MB)))
    clients = [
        RDMAImageCompressionClient(env, node, RandomStream(index, "photos"),
                                   image_side=32, slots=1)
        for index in range(3)
    ]

    def setup_all():
        for client in clients:
            yield from client.setup()

    env.run(until=env.process(setup_all()))
    mr_ids = {client.region.mr_id for client in clients}
    assert len(mr_ids) == 3

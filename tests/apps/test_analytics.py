"""Tests for the columnar analytics kernels."""

import pytest

from repro.apps.analytics import RemoteColumnTable
from repro.cluster import ClioCluster
from repro.sim.rng import RandomStream

MB = 1 << 20


def make_table(chunk_rows=64, pipeline_depth=4):
    cluster = ClioCluster(mn_capacity=512 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    return cluster, RemoteColumnTable(thread, chunk_rows=chunk_rows,
                                      pipeline_depth=pipeline_depth)


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def sample_data(rows=500, seed=3):
    rng = RandomStream(seed, "analytics")
    return {
        "price": [rng.uniform_int(-100, 1000) for _ in range(rows)],
        "qty": [rng.uniform_int(0, 50) for _ in range(rows)],
    }


@pytest.mark.parametrize("asynchronous", [False, True])
def test_scan_roundtrip(asynchronous):
    cluster, table = make_table()
    data = sample_data()
    result = {}

    def app():
        yield from table.load(data)
        result["price"] = yield from table.scan(
            "price", asynchronous=asynchronous)

    run_app(cluster, app())
    assert result["price"] == data["price"]


def test_scan_handles_negative_values():
    cluster, table = make_table()
    values = [-1, -(1 << 40), 0, 1 << 40]
    result = {}

    def app():
        yield from table.load({"col": values})
        result["col"] = yield from table.scan("col")

    run_app(cluster, app())
    assert result["col"] == values


def test_filter_aggregate_matches_python():
    cluster, table = make_table()
    data = sample_data()
    expected_matches = sum(1 for value in data["price"] if value > 500)
    expected_total = sum(qty for price, qty in zip(data["price"],
                                                   data["qty"])
                         if price > 500)
    result = {}

    def app():
        yield from table.load(data)
        result["out"] = yield from table.filter_aggregate(
            "price", lambda value: value > 500, aggregate_column="qty")

    run_app(cluster, app())
    assert result["out"] == (expected_matches, expected_total)


def test_minmax():
    cluster, table = make_table()
    data = sample_data()
    result = {}

    def app():
        yield from table.load(data)
        result["mm"] = yield from table.column_minmax("price")

    run_app(cluster, app())
    assert result["mm"] == (min(data["price"]), max(data["price"]))


def test_update_rows_visible_to_scan():
    cluster, table = make_table()
    data = {"col": list(range(100))}
    result = {}

    def app():
        yield from table.load(data)
        yield from table.update_rows("col", {0: -7, 99: 12345})
        result["col"] = yield from table.scan("col")

    run_app(cluster, app())
    assert result["col"][0] == -7
    assert result["col"][99] == 12345
    assert result["col"][1:99] == list(range(1, 99))


def test_async_scan_is_faster():
    data = sample_data(rows=2000)

    def timed(asynchronous):
        cluster, table = make_table(chunk_rows=128, pipeline_depth=8)
        start = {}

        def app():
            yield from table.load(data)
            start["t"] = cluster.env.now
            yield from table.scan("price", asynchronous=asynchronous)

        run_app(cluster, app())
        return cluster.env.now - start["t"]

    assert timed(True) < timed(False) * 0.6


def test_errors():
    cluster, table = make_table()

    def app():
        with pytest.raises(ValueError):
            yield from table.load({})
        with pytest.raises(ValueError):
            yield from table.load({"a": [1], "b": [1, 2]})
        yield from table.load({"a": [1, 2, 3]})
        with pytest.raises(KeyError):
            yield from table.scan("ghost")
        with pytest.raises(ValueError):
            yield from table.update_rows("a", {5: 1})

    run_app(cluster, app())
    with pytest.raises(ValueError):
        RemoteColumnTable(cluster.cn(0).process("mn0").thread(),
                          chunk_rows=0)

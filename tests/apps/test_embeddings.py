"""Tests for the remote embedding table (deep-learning workload)."""

import struct

import pytest

from repro.apps.embeddings import (
    RemoteEmbeddingTable,
    register_gather_offload,
)
from repro.cluster import ClioCluster
from repro.sim.rng import RandomStream

MB = 1 << 20


def make_table(rows=64, dim=16):
    cluster = ClioCluster(mn_capacity=512 * MB)
    register_gather_offload(cluster.mn.extend_path)
    thread = cluster.cn(0).process("mn0").thread()
    table = RemoteEmbeddingTable(thread, rows=rows, dim=dim)
    return cluster, table


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def init(cluster, table, seed=1):
    def app():
        yield from table.initialize(RandomStream(seed, "emb"))

    run_app(cluster, app())


@pytest.mark.parametrize("strategy", ["sync", "async", "offload"])
def test_gather_strategies_agree(strategy):
    cluster, table = make_table()
    init(cluster, table)
    rows = [0, 7, 63, 7, 31]
    result = {}

    def app():
        result["got"] = yield from table.gather(rows, strategy=strategy)
        result["reference"] = yield from table.gather(rows, strategy="sync")

    run_app(cluster, app())
    assert result["got"] == result["reference"]
    assert len(result["got"]) == len(rows)
    for blob in result["got"]:
        values = table.unpack_row(blob)
        assert len(values) == table.dim
        assert all(-1.0 <= value <= 1.0 for value in values)


def test_offload_gather_is_one_round_trip():
    cluster, table = make_table(rows=128, dim=32)
    init(cluster, table)
    rows = list(range(0, 128, 4))   # 32-row batch
    timings = {}

    def app():
        for strategy in ("sync", "async", "offload"):
            start = cluster.env.now
            yield from table.gather(rows, strategy=strategy)
            timings[strategy] = cluster.env.now - start

    run_app(cluster, app())
    # One network round trip beats 32 sequential ones decisively...
    assert timings["offload"] < timings["sync"] / 5
    # ...and also beats the overlapped client-side variant (the response
    # is one packed transfer instead of 32 response packets).
    assert timings["offload"] < timings["async"]


def test_update_row_visible_to_all_strategies():
    cluster, table = make_table()
    init(cluster, table)
    new_row = struct.pack(f"<{table.dim}f", *([0.5] * table.dim))
    result = {}

    def app():
        yield from table.update_row(9, new_row)
        for strategy in ("sync", "async", "offload"):
            (blob,) = yield from table.gather([9], strategy=strategy)
            result[strategy] = blob

    run_app(cluster, app())
    for strategy, blob in result.items():
        assert blob == new_row, strategy


def test_zipf_batches_are_skewed_and_valid():
    cluster, table = make_table(rows=1000)
    rng = RandomStream(5, "batch")
    batch = table.batch_of(500, rng)
    assert all(0 <= row < 1000 for row in batch)
    hot = sum(1 for row in batch if row < 20)
    assert hot > 75   # the head dominates under zipf(0.9)


def test_errors():
    cluster, table = make_table()

    def app():
        with pytest.raises(RuntimeError):
            yield from table.gather([0])
        yield from table.initialize(RandomStream(1, "emb"))
        with pytest.raises(ValueError):
            yield from table.gather([table.rows])
        with pytest.raises(ValueError):
            yield from table.gather([0], strategy="teleport")
        with pytest.raises(ValueError):
            yield from table.update_row(0, b"short")

    run_app(cluster, app())
    with pytest.raises(ValueError):
        RemoteEmbeddingTable(cluster.cn(0).process("mn0").thread(),
                             rows=0, dim=4)

"""Tests for graph processing over disaggregated memory."""

import pytest

from repro.apps.graph import RemoteGraph, random_graph, reference_bfs
from repro.cluster import ClioCluster
from repro.sim.rng import RandomStream

MB = 1 << 20


def make_graph_cluster():
    cluster = ClioCluster(mn_capacity=512 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    return cluster, RemoteGraph(thread)


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_random_graph_shape():
    adjacency = random_graph(50, avg_degree=4, rng=RandomStream(1, "g"))
    assert len(adjacency) == 50
    for vertex, neighbors in enumerate(adjacency):
        assert vertex not in neighbors           # no self loops
        assert all(0 <= n < 50 for n in neighbors)
        assert neighbors == sorted(set(neighbors))


def test_random_graph_deterministic():
    a = random_graph(30, 3, RandomStream(2, "g"))
    b = random_graph(30, 3, RandomStream(2, "g"))
    assert a == b


def test_random_graph_rejects_bad_args():
    with pytest.raises(ValueError):
        random_graph(0, 3, RandomStream(1, "g"))
    with pytest.raises(ValueError):
        random_graph(3, -1, RandomStream(1, "g"))


def test_neighbors_roundtrip():
    cluster, graph = make_graph_cluster()
    adjacency = [[1, 2], [2], [], [0]]
    result = {}

    def app():
        yield from graph.load(adjacency)
        result["n0"] = yield from graph.neighbors(0)
        result["n2"] = yield from graph.neighbors(2)
        result["batch"] = yield from graph.neighbors_batch([3, 1])

    run_app(cluster, app())
    assert result["n0"] == [1, 2]
    assert result["n2"] == []
    assert result["batch"] == [[0], [2]]
    assert graph.num_edges == 4


def test_neighbors_out_of_range():
    cluster, graph = make_graph_cluster()

    def app():
        yield from graph.load([[1], []])
        with pytest.raises(ValueError):
            yield from graph.neighbors(2)

    run_app(cluster, app())


@pytest.mark.parametrize("asynchronous", [False, True])
def test_bfs_matches_reference(asynchronous):
    cluster, graph = make_graph_cluster()
    adjacency = random_graph(80, avg_degree=3, rng=RandomStream(7, "bfs"))
    result = {}

    def app():
        yield from graph.load(adjacency)
        result["levels"] = yield from graph.bfs(0,
                                                asynchronous=asynchronous)

    run_app(cluster, app())
    assert result["levels"] == reference_bfs(adjacency, 0)


def test_async_bfs_is_faster_on_wide_frontiers():
    adjacency = random_graph(120, avg_degree=6, rng=RandomStream(9, "wide"))
    # Start from the highest-degree vertex so the traversal covers a
    # large component (an isolated source would finish instantly).
    source = max(range(len(adjacency)), key=lambda v: len(adjacency[v]))

    def timed(asynchronous):
        cluster, graph = make_graph_cluster()
        start = {}

        def app():
            yield from graph.load(adjacency)
            start["t"] = cluster.env.now
            levels = yield from graph.bfs(source,
                                          asynchronous=asynchronous)
            assert sum(1 for level in levels if level >= 0) > 20

        run_app(cluster, app())
        return cluster.env.now - start["t"]

    sync_ns = timed(False)
    async_ns = timed(True)
    assert async_ns < sync_ns * 0.7   # overlapped round trips


def test_degree_histogram_local():
    cluster, graph = make_graph_cluster()
    adjacency = [[1, 2], [2], [], [0]]

    def app():
        yield from graph.load(adjacency)

    run_app(cluster, app())
    fetched_before = graph.bytes_fetched
    histogram = graph.degree_histogram()
    assert histogram == {2: 1, 1: 2, 0: 1}
    assert graph.bytes_fetched == fetched_before   # no remote traffic


def test_disconnected_vertices_unreachable():
    cluster, graph = make_graph_cluster()

    def app():
        yield from graph.load([[1], [], [3], [2]])
        return (yield from graph.bfs(0))

    levels = run_app(cluster, app())
    assert levels == [0, 1, -1, -1]

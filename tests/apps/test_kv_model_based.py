"""Model-based testing: Clio-KV versus a plain dict reference.

Random operation sequences (put/get/delete over a small key universe,
variable value sizes) must leave Clio-KV observably identical to a dict
executing the same sequence — the gold-standard check for a store with
in-place updates, chain relinking, and heap reuse.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kv_store import ClioKV, register_kv_offload
from repro.cluster import ClioCluster

MB = 1 << 20

KEYS = [b"alpha", b"beta", b"gamma", b"delta", b"user0001", b"user0002"]

operation = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS),
              st.binary(min_size=1, max_size=200)),
    st.tuples(st.just("get"), st.sampled_from(KEYS)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
)


@given(st.lists(operation, min_size=1, max_size=40))
@settings(max_examples=25, deadline=None)
def test_kv_matches_dict_reference(ops):
    cluster = ClioCluster(mn_capacity=512 * MB)
    register_kv_offload(cluster.mn.extend_path, buckets=4, capacity=8 * MB)
    kv = ClioKV(cluster.cn(0).process("mn0").thread())
    reference: dict[bytes, bytes] = {}
    observations = []

    def app():
        for op in ops:
            if op[0] == "put":
                _, key, value = op
                yield from kv.put(key, value)
                reference[key] = value
            elif op[0] == "get":
                _, key = op
                got = yield from kv.get(key)
                observations.append(("get", key, got, reference.get(key)))
            else:
                _, key = op
                removed = yield from kv.delete(key)
                observations.append(
                    ("delete", key, removed, key in reference))
                reference.pop(key, None)
        # Final sweep: every key's visible state must match the dict.
        for key in KEYS:
            got = yield from kv.get(key)
            observations.append(("final", key, got, reference.get(key)))

    cluster.run(until=cluster.env.process(app()))
    for kind, key, got, expected in observations:
        assert got == expected, (kind, key, got, expected)

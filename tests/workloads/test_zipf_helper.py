"""The shared zipfian_keys() helper: pinned distribution + determinism.

Every skewed workload (YCSB, embedding batches, the cache bench) draws
through this one helper, so these tests pin the draw protocol: change
it and every golden downstream moves.
"""

import pytest

from repro.sim.rng import RandomStream, ZipfTable
from repro.workloads import zipfian_keys
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload


def take(gen, n):
    return [next(gen) for _ in range(n)]


def test_same_seed_same_keys():
    a = take(zipfian_keys(RandomStream(7, "z"), 1000), 50)
    b = take(zipfian_keys(RandomStream(7, "z"), 1000), 50)
    assert a == b


def test_different_seeds_diverge():
    a = take(zipfian_keys(RandomStream(7, "z"), 1000), 50)
    b = take(zipfian_keys(RandomStream(8, "z"), 1000), 50)
    assert a != b


def test_pinned_draw_sequence():
    # The draw protocol itself (one rng.uniform() per key, CDF binary
    # search) is a compatibility surface: this exact sequence feeds the
    # pinned YCSB/batch/cache goldens.
    assert take(zipfian_keys(RandomStream(1234, "pin"), 100), 12) == [
        2, 1, 17, 3, 93, 1, 23, 2, 49, 1, 0, 0]


def test_skew_shape():
    # Zipf(0.99) over 1000 keys: the hot key dominates, the top decile
    # takes the bulk of the draws.
    keys = take(zipfian_keys(RandomStream(42, "shape"), 1000), 5000)
    hot = keys.count(0) / len(keys)
    top_decile = sum(1 for k in keys if k < 100) / len(keys)
    assert 0.10 < hot < 0.22
    assert top_decile > 0.60
    assert max(keys) < 1000 and min(keys) >= 0


def test_shared_table_matches_private_table():
    table = ZipfTable(500, 0.99)
    shared = take(zipfian_keys(RandomStream(3, "t"), 500, table=table), 40)
    private = take(zipfian_keys(RandomStream(3, "t"), 500), 40)
    assert shared == private


def test_mismatched_table_rejected():
    with pytest.raises(ValueError):
        next(zipfian_keys(RandomStream(0, "x"), 100,
                          table=ZipfTable(200, 0.99)))
    with pytest.raises(ValueError):
        next(zipfian_keys(RandomStream(0, "x"), 100, theta=0.5,
                          table=ZipfTable(100, 0.99)))
    with pytest.raises(ValueError):
        next(zipfian_keys(RandomStream(0, "x"), 0))


def test_ycsb_draw_order_unchanged():
    # YCSB pulls its keys through the helper; interleaved set/get
    # decisions must see exactly the draws the inline code used to make.
    workload = YCSBWorkload(YCSB_WORKLOADS["A"], RandomStream(9, "y"),
                            num_keys=200, value_size=32)
    ops = list(workload.operations(30))
    rng = RandomStream(9, "y")
    table = ZipfTable(200, 0.99)
    for op in ops:
        index = table.draw(rng.uniform())
        is_set = rng.chance(0.5)
        assert op[0] == ("set" if is_set else "get")
        assert op[1] == b"user%012d" % index

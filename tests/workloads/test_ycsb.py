"""Tests for the YCSB workload generator."""

import pytest

from repro.sim.rng import RandomStream, ZipfTable
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBConfig, YCSBWorkload


def make_workload(name="A", **kwargs):
    kwargs.setdefault("num_keys", 1000)
    kwargs.setdefault("value_size", 64)
    return YCSBWorkload(YCSB_WORKLOADS[name], RandomStream(1, "ycsb"),
                        **kwargs)


def test_paper_mixes_defined():
    assert YCSB_WORKLOADS["A"].set_fraction == 0.50
    assert YCSB_WORKLOADS["B"].set_fraction == 0.05
    assert YCSB_WORKLOADS["C"].set_fraction == 0.00


def test_bad_mix_rejected():
    with pytest.raises(ValueError):
        YCSBConfig(name="X", set_fraction=1.5)


def test_load_phase_covers_all_keys():
    workload = make_workload()
    pairs = list(workload.load_phase())
    assert len(pairs) == 1000
    assert len({key for key, _ in pairs}) == 1000


def test_values_have_configured_size():
    workload = make_workload(value_size=256)
    _, value = next(workload.load_phase())
    assert len(value) == 256


def test_workload_c_is_read_only():
    workload = make_workload("C")
    ops = list(workload.operations(2000))
    assert all(op[0] == "get" for op in ops)


def test_workload_a_is_half_sets():
    workload = make_workload("A")
    ops = list(workload.operations(4000))
    sets = sum(1 for op in ops if op[0] == "set")
    assert 0.42 < sets / len(ops) < 0.58


def test_workload_b_is_mostly_gets():
    workload = make_workload("B")
    ops = list(workload.operations(4000))
    sets = sum(1 for op in ops if op[0] == "set")
    assert 0.01 < sets / len(ops) < 0.10


def test_keys_are_zipf_skewed():
    workload = make_workload("C")
    ops = list(workload.operations(5000))
    head_keys = {workload.key(index) for index in range(10)}
    head_hits = sum(1 for op in ops if op[1] in head_keys)
    assert head_hits > 1000   # top-10 of 1000 keys dominate at theta=.99


def test_deterministic_given_seed():
    a = list(make_workload("A").operations(100))
    b = list(make_workload("A").operations(100))
    assert a == b


def test_shared_zipf_table_accepted():
    table = ZipfTable(1000, 0.99)
    workload = YCSBWorkload(YCSB_WORKLOADS["C"], RandomStream(2, "t"),
                            num_keys=1000, value_size=64, zipf_table=table)
    assert list(workload.operations(10))


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        make_workload(num_keys=0)
    with pytest.raises(ValueError):
        make_workload(value_size=0)
    with pytest.raises(ValueError):
        list(make_workload().operations(0))

"""Tests for the microbenchmark access-pattern driver."""

import pytest

from repro.sim.rng import RandomStream
from repro.workloads.microbench import AccessPattern, MicrobenchDriver


def test_same_address_pattern():
    driver = MicrobenchDriver(AccessPattern.SAME_ADDRESS, 1 << 20, 16)
    assert driver.offsets(10) == [0] * 10


def test_sequential_pattern_strides_and_wraps():
    driver = MicrobenchDriver(AccessPattern.SEQUENTIAL, 256, 16,
                              alignment=64)
    offsets = driver.offsets(8)
    assert offsets[:4] == [0, 64, 128, 192]
    assert offsets[4] == 0   # wrapped


def test_uniform_pattern_within_region():
    driver = MicrobenchDriver(AccessPattern.UNIFORM, 1 << 20, 64,
                              rng=RandomStream(1, "mb"))
    for offset in driver.offsets(500):
        assert 0 <= offset <= (1 << 20) - 64
        assert offset % 64 == 0


def test_uniform_pattern_deterministic():
    a = MicrobenchDriver(AccessPattern.UNIFORM, 1 << 20, 64,
                         rng=RandomStream(7, "mb")).offsets(50)
    b = MicrobenchDriver(AccessPattern.UNIFORM, 1 << 20, 64,
                         rng=RandomStream(7, "mb")).offsets(50)
    assert a == b


def test_invalid_construction():
    with pytest.raises(ValueError):
        MicrobenchDriver(AccessPattern.UNIFORM, 8, 16)
    with pytest.raises(ValueError):
        MicrobenchDriver(AccessPattern.UNIFORM, 64, 16, alignment=0)

"""Model-based testing: TransparentMemory versus a flat bytearray.

Random interleavings of cached reads, writes, flushes, and (implicitly)
evictions must be observably identical to a plain local buffer — and
after a flush, the raw remote content must match the buffer too.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clib.transparent import TransparentMemory
from repro.cluster import ClioCluster

KB = 1 << 10
MB = 1 << 20
REGION = 256 * KB   # small region, tiny cache: lots of evictions

operation = st.one_of(
    st.tuples(st.just("write"),
              st.integers(min_value=0, max_value=REGION - 64),
              st.binary(min_size=1, max_size=64)),
    st.tuples(st.just("read"),
              st.integers(min_value=0, max_value=REGION - 64),
              st.integers(min_value=1, max_value=64)),
    st.tuples(st.just("flush")),
)


@given(st.lists(operation, min_size=1, max_size=30))
@settings(max_examples=20, deadline=None)
def test_transparent_memory_matches_buffer(ops):
    cluster = ClioCluster(mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    tmem = TransparentMemory(thread, REGION, cache_pages=2,
                             cache_page_size=16 * KB)
    reference = bytearray(REGION)
    observations = []

    def app():
        yield from tmem.attach()
        for op in ops:
            if op[0] == "write":
                _, addr, data = op
                yield from tmem.write(addr, data)
                reference[addr:addr + len(data)] = data
            elif op[0] == "read":
                _, addr, size = op
                got = yield from tmem.read(addr, size)
                observations.append(
                    ("read", addr, got, bytes(reference[addr:addr + size])))
            else:
                yield from tmem.flush()
        # Final flush, then verify the *remote* content uncached.
        yield from tmem.flush()
        raw = yield from thread.rread(tmem._base_va, REGION)
        observations.append(("remote", 0, raw, bytes(reference)))

    cluster.run(until=cluster.env.process(app()))
    for kind, addr, got, expected in observations:
        assert got == expected, (kind, addr)

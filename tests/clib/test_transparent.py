"""Tests for the transparent (cached) remote-memory interface."""

import pytest

from repro.clib.transparent import TransparentMemory
from repro.cluster import ClioCluster

KB = 1 << 10
MB = 1 << 20


def make_tmem(size=4 * MB, cache_pages=4, cache_page_size=64 * KB):
    cluster = ClioCluster(mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    tmem = TransparentMemory(thread, size, cache_pages=cache_pages,
                             cache_page_size=cache_page_size)
    return cluster, tmem


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_write_read_roundtrip_through_cache():
    cluster, tmem = make_tmem()
    result = {}

    def app():
        yield from tmem.attach()
        yield from tmem.write(1000, b"transparent!")
        result["data"] = yield from tmem.read(1000, 12)

    run_app(cluster, app())
    assert result["data"] == b"transparent!"


def test_unattached_access_rejected():
    cluster, tmem = make_tmem()

    def app():
        with pytest.raises(RuntimeError):
            yield from tmem.read(0, 4)
        yield from tmem.attach()
        with pytest.raises(RuntimeError):
            yield from tmem.attach()

    run_app(cluster, app())


def test_out_of_region_access_rejected():
    cluster, tmem = make_tmem(size=1 * MB)

    def app():
        yield from tmem.attach()
        with pytest.raises(ValueError):
            yield from tmem.read(1 * MB - 2, 4)
        with pytest.raises(ValueError):
            yield from tmem.write(-1, b"x")

    run_app(cluster, app())


def test_repeat_access_hits_locally():
    cluster, tmem = make_tmem()

    def app():
        yield from tmem.attach()
        yield from tmem.read(0, 64)        # miss, fetches the page
        t0 = cluster.env.now
        yield from tmem.read(100, 64)      # same cache page: local
        assert cluster.env.now - t0 < 1000  # no network round trip
        yield from tmem.read(200, 64)

    run_app(cluster, app())
    assert tmem.misses == 1
    assert tmem.hits == 2
    assert tmem.hit_rate == pytest.approx(2 / 3)


def test_eviction_writes_back_dirty_pages():
    cluster, tmem = make_tmem(cache_pages=2, cache_page_size=64 * KB)
    result = {}

    def app():
        yield from tmem.attach()
        yield from tmem.write(0, b"dirty-page-0")
        # Touch pages 1 and 2: page 0 (LRU, dirty) gets written back.
        yield from tmem.read(64 * KB, 16)
        yield from tmem.read(128 * KB, 16)
        assert tmem.writebacks == 1
        # Re-reading page 0 must fetch the written-back content.
        result["data"] = yield from tmem.read(0, 12)

    run_app(cluster, app())
    assert result["data"] == b"dirty-page-0"


def test_clean_eviction_skips_writeback():
    cluster, tmem = make_tmem(cache_pages=1)

    def app():
        yield from tmem.attach()
        yield from tmem.read(0, 16)
        yield from tmem.read(64 * KB, 16)   # evicts clean page 0

    run_app(cluster, app())
    assert tmem.writebacks == 0


def test_flush_persists_to_remote():
    cluster, tmem = make_tmem()
    result = {}

    def app():
        yield from tmem.attach()
        yield from tmem.write(500, b"durable")
        yield from tmem.flush()
        # Read through a *fresh* uncached path to verify remote content.
        raw = yield from tmem.thread.rread(tmem._base_va + 500, 7)
        result["raw"] = raw

    run_app(cluster, app())
    assert result["raw"] == b"durable"


def test_access_spanning_cache_pages():
    cluster, tmem = make_tmem(cache_page_size=64 * KB)
    result = {}

    def app():
        yield from tmem.attach()
        blob = bytes(range(256)) * 2
        yield from tmem.write(64 * KB - 256, blob)
        result["data"] = yield from tmem.read(64 * KB - 256, len(blob))

    run_app(cluster, app())
    assert result["data"] == bytes(range(256)) * 2


def test_detach_flushes_and_frees():
    cluster, tmem = make_tmem()

    def app():
        yield from tmem.attach()
        yield from tmem.write(0, b"bye")
        yield from tmem.detach()
        assert tmem._base_va is None
        assert tmem.cached_bytes == 0

    run_app(cluster, app())


def test_cache_bounded():
    cluster, tmem = make_tmem(cache_pages=3, cache_page_size=64 * KB)

    def app():
        yield from tmem.attach()
        for page in range(10):
            yield from tmem.read(page * 64 * KB, 8)

    run_app(cluster, app())
    assert tmem.cached_bytes <= 3 * 64 * KB


def test_invalid_construction():
    cluster = ClioCluster(mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    with pytest.raises(ValueError):
        TransparentMemory(thread, 0)
    with pytest.raises(ValueError):
        TransparentMemory(thread, 1024, cache_pages=0)
    with pytest.raises(ValueError):
        TransparentMemory(thread, 1024, cache_page_size=3000)

"""Integration tests for the CLib API (the paper's Figure 1 semantics)."""

import pytest

from repro.clib.client import RemoteAccessError
from repro.cluster import ClioCluster
from repro.core.pipeline import Status

MB = 1 << 20
PAGE = 4 * MB


def make_cluster(**kwargs):
    kwargs.setdefault("mn_capacity", 256 * MB)
    return ClioCluster(**kwargs)


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_figure1_example_flow():
    """The paper's Figure 1: alloc a page, locked async writes, sync read."""
    cluster = make_cluster(num_cns=2)
    process = cluster.cn(0).process("mn0")
    writer = process.thread()
    reader = process.thread()
    state = {}

    def setup():
        remote_addr = yield from writer.ralloc(PAGE)
        lock_va = yield from writer.ralloc(8)
        state["addr"] = remote_addr
        state["lock"] = lock_va

    run_app(cluster, setup())
    length = 64
    wbuf1, wbuf2 = b"A" * length, b"B" * length

    def thread1():
        yield from writer.rlock(state["lock"])
        e0 = yield from writer.rwrite_async(state["addr"], wbuf1)
        e1 = yield from writer.rwrite_async(state["addr"] + length, wbuf2)
        yield from writer.runlock(state["lock"])
        yield from writer.rpoll([e0, e1])

    def thread2():
        yield from reader.rlock(state["lock"])
        data = yield from reader.rread(state["addr"], 2 * length)
        yield from reader.runlock(state["lock"])
        state["read"] = data

    p1 = cluster.env.process(thread1())
    p2 = cluster.env.process(thread2())
    cluster.run(until=cluster.env.all_of([p1, p2]))
    # The lock guarantees atomicity: the reader saw either nothing or both
    # writes, never a partial update.
    assert state["read"] in (bytes(2 * length), wbuf1 + wbuf2)

    # After both threads finish, the data is durably visible.
    def verify():
        state["final"] = yield from reader.rread(state["addr"], 2 * length)

    run_app(cluster, verify())
    assert state["final"] == wbuf1 + wbuf2


def test_ralloc_rwrite_rread_roundtrip():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(1024)
        yield from thread.rwrite(va, b"clio")
        result["data"] = yield from thread.rread(va, 4)

    run_app(cluster, app())
    assert result["data"] == b"clio"


def test_byte_granular_access_within_allocation():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(PAGE)
        yield from thread.rwrite(va + 1001, b"xyz")
        result["data"] = yield from thread.rread(va + 1000, 5)

    run_app(cluster, app())
    assert result["data"] == b"\x00xyz\x00"


def test_rfree_then_access_raises():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    errors = []

    def app():
        va = yield from thread.ralloc(64)
        yield from thread.rwrite(va, b"temp")
        yield from thread.rfree(va)
        try:
            yield from thread.rread(va, 4)
        except RemoteAccessError as exc:
            errors.append(exc.status)

    run_app(cluster, app())
    assert errors == [Status.INVALID_VA]


def test_processes_have_isolated_rases():
    """R5: one process cannot read another's memory via the same VA."""
    cluster = make_cluster(num_cns=2)
    thread_a = cluster.cn(0).process("mn0").thread()
    thread_b = cluster.cn(1).process("mn0").thread()
    outcome = {}

    def app_a():
        va = yield from thread_a.ralloc(64)
        yield from thread_a.rwrite(va, b"private!")
        outcome["va"] = va

    run_app(cluster, app_a())

    def app_b():
        try:
            yield from thread_b.rread(outcome["va"], 8)
            outcome["leak"] = True
        except RemoteAccessError as exc:
            outcome["status"] = exc.status

    run_app(cluster, app_b())
    assert "leak" not in outcome
    assert outcome["status"] is Status.INVALID_VA


def test_shared_ras_across_cns():
    """Processes sharing a PID's RAS see each other's writes (section 3.1).

    Sharing is modeled by threads of the same ClioProcess driven from
    different CN transports in real Clio; here both threads come from the
    same process object."""
    cluster = make_cluster()
    process = cluster.cn(0).process("mn0")
    t1, t2 = process.thread(), process.thread()
    result = {}

    def app():
        va = yield from t1.ralloc(64)
        yield from t1.rwrite(va, b"shared")
        result["data"] = yield from t2.rread(va, 6)

    run_app(cluster, app())
    assert result["data"] == b"shared"


def test_async_write_returns_handle_then_rpoll():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(1024)
        handle = yield from thread.rwrite_async(va, b"async-payload")
        assert not handle.complete or True   # may complete quickly
        yield from thread.rpoll([handle])
        assert handle.complete
        result["data"] = yield from thread.rread(va, 13)

    run_app(cluster, app())
    assert result["data"] == b"async-payload"


def test_async_read_result_via_handle():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(64)
        yield from thread.rwrite(va, b"deferred")
        handle = yield from thread.rread_async(va, 8)
        (completion,) = yield from thread.rpoll([handle])
        result["data"] = completion.result
        result["kind"] = completion.kind
        result["ok"] = completion.ok
        result["handle_result"] = handle.result

    run_app(cluster, app())
    assert result["data"] == b"deferred"
    assert result["handle_result"] == b"deferred"
    assert result["kind"] == "read"
    assert result["ok"] is True


def test_touching_incomplete_handle_raises():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    seen = {}

    def app():
        va = yield from thread.ralloc(64)
        handle = yield from thread.rwrite_async(va, b"x" * 64)
        try:
            _ = handle.result
            seen["early"] = True
        except RuntimeError:
            seen["raised"] = True
        yield from thread.rpoll([handle])

    run_app(cluster, app())
    assert seen.get("raised")


def test_waw_dependency_orders_async_writes():
    """Two async writes to the same page must apply in program order."""
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(64)
        h1 = yield from thread.rwrite_async(va, b"first___")
        h2 = yield from thread.rwrite_async(va, b"second__")
        yield from thread.rpoll([h1, h2])
        result["data"] = yield from thread.rread(va, 8)

    run_app(cluster, app())
    assert result["data"] == b"second__"
    assert thread.tracker.blocked_count >= 1


def test_raw_dependency_read_sees_prior_async_write():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(64)
        handle = yield from thread.rwrite_async(va, b"ordered!")
        data = yield from thread.rread(va, 8)   # must wait for the write
        result["data"] = data
        yield from thread.rpoll([handle])

    run_app(cluster, app())
    assert result["data"] == b"ordered!"


def test_independent_pages_run_concurrently():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        va = yield from thread.ralloc(2 * PAGE)
        h1 = yield from thread.rwrite_async(va, b"a" * 64)
        h2 = yield from thread.rwrite_async(va + PAGE, b"b" * 64)
        yield from thread.rpoll([h1, h2])

    run_app(cluster, app())
    assert thread.tracker.blocked_count == 0


def test_rlock_mutual_exclusion_across_cns():
    cluster = make_cluster(num_cns=2)
    process = cluster.cn(0).process("mn0")
    t1 = process.thread()
    # Second CN thread shares the process RAS through its own transport.
    from repro.clib.client import ClioThread

    class CrossThread(ClioThread):
        pass

    t2 = CrossThread(process)
    t2._transport = cluster.cn(1).transport
    state = {"lock": None, "log": []}

    def setup():
        state["lock"] = yield from t1.ralloc(8)

    run_app(cluster, setup())

    def critical(thread, tag):
        yield from thread.rlock(state["lock"])
        state["log"].append((tag, "in"))
        yield cluster.env.timeout(2000)
        state["log"].append((tag, "out"))
        yield from thread.runlock(state["lock"])

    p1 = cluster.env.process(critical(t1, "t1"))
    p2 = cluster.env.process(critical(t2, "t2"))
    cluster.run(until=cluster.env.all_of([p1, p2]))
    log = state["log"]
    assert len(log) == 4
    # No interleaving: each "in" is immediately followed by its own "out".
    assert log[0][0] == log[1][0] and log[2][0] == log[3][0]


def test_rfaa_and_rcas():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(8)
        old0 = yield from thread.rfaa(va, 10)
        old1 = yield from thread.rfaa(va, 5)
        old2, ok = yield from thread.rcas(va, 15, 100)
        _, bad = yield from thread.rcas(va, 15, 200)
        result.update(old0=old0, old1=old1, old2=old2, ok=ok, bad=bad)

    run_app(cluster, app())
    assert result == {"old0": 0, "old1": 10, "old2": 15,
                      "ok": True, "bad": False}


def test_rfence_completes_after_async_ops():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(PAGE)
        handles = []
        for index in range(4):
            handle = yield from thread.rwrite_async(
                va + index * 128, bytes([index]) * 64)
            handles.append(handle)
        yield from thread.rfence()
        # Release semantics: all writes visible after the fence.
        result["all_done"] = all(handle.complete for handle in handles)

    run_app(cluster, app())
    assert result["all_done"]


def test_empty_write_rejected():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        va = yield from thread.ralloc(64)
        with pytest.raises(ValueError):
            yield from thread.rwrite(va, b"")

    run_app(cluster, app())


def test_pids_are_globally_unique():
    cluster = make_cluster(num_cns=2)
    pids = {cluster.cn(i % 2).process("mn0").pid for i in range(10)}
    assert len(pids) == 10

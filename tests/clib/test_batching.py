"""The batched data path: vector ops, the adaptive batcher, determinism.

Covers the repro.batch acceptance bar from the CLib side:

* ``rwritev``/``rreadv`` scatter/gather correctness, including per-op
  rejection statuses inside an otherwise-successful frame;
* the opt-in per-thread batcher's flush policy (count, byte budget,
  window timer) and its counters at every layer (batcher, transport,
  CBoard);
* batched runs are deterministic (same-seed bit-identical) and the
  canonical batched workload is pinned under its own golden key —
  batching *off* stays covered by the pre-existing no-fault golden
  fingerprint in ``tests/faults/test_chaos.py``, which this PR must not
  move.
"""

import pytest

from repro.clib.client import RemoteAccessError
from repro.cluster import ClioCluster
from repro.core.pipeline import Status

MB = 1 << 20

#: Golden fingerprint of the canonical *batched* workload (new key: this
#: run did not exist before repro.batch).  Same seed + params must stay
#: bit-identical; move it only with a deliberate re-pin.
GOLDEN_BATCHED = (125245, (120527, 125245), 86, 512,
                  (43, 43), (256, 256), (0, 0))


def make_cluster(**kwargs):
    kwargs.setdefault("mn_capacity", 256 * MB)
    return ClioCluster(**kwargs)


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def byte_thread(cluster, cn=0, pid=None):
    """Byte-granular ordering so disjoint ops in one page can batch."""
    process = (cluster.cn(cn).process("mn0", pid=pid) if pid
               else cluster.cn(cn).process("mn0"))
    return process.thread(ordering_granularity="byte")


# -- vector ops --------------------------------------------------------------------


def test_rwritev_rreadv_roundtrip():
    cluster = make_cluster()
    thread = byte_thread(cluster)
    chunks = [bytes([index]) * (16 + 8 * index) for index in range(20)]
    result = {}

    def app():
        va = yield from thread.ralloc(1 * MB)
        offsets = []
        cursor = va
        for chunk in chunks:
            offsets.append(cursor)
            cursor += len(chunk) + 32     # gaps: true scatter, not one blob
        yield from thread.rwritev(list(zip(offsets, chunks)))
        result["read"] = yield from thread.rreadv(
            [(offset, len(chunk)) for offset, chunk in zip(offsets, chunks)])

    run_app(cluster, app())
    assert result["read"] == chunks
    # The whole exchange rode multi-op frames, not 40 lone requests.
    transport = cluster.cn(0).transport
    assert transport.batches_issued > 0
    assert transport.batch_subops_completed == 40
    assert cluster.mn.batch_subops_served == 40
    assert transport.requests_completed < 40 + 2  # frames + alloc


def test_rreadv_results_keep_list_order():
    cluster = make_cluster()
    thread = byte_thread(cluster)
    result = {}

    def app():
        va = yield from thread.ralloc(64 * 1024)
        pairs = [(va + 1000 * index, bytes([index + 1]) * 48)
                 for index in range(12)]
        yield from thread.rwritev(pairs)
        # Read back in *reverse* order: results must follow request order.
        result["read"] = yield from thread.rreadv(
            [(addr, 48) for addr, _ in reversed(pairs)])

    run_app(cluster, app())
    assert result["read"] == [bytes([12 - index]) * 48 for index in range(12)]


def test_vector_per_op_rejection_statuses():
    """One bad sub-op fails alone; its frame-mates still succeed."""
    cluster = make_cluster()
    thread = byte_thread(cluster)
    state = {}

    def app():
        va = yield from thread.ralloc(64 * 1024)
        yield from thread.rwrite(va, b"x" * 256)
        handles = yield from thread.rreadv_async([
            (va, 64),
            (va + 512 * MB, 64),          # far outside the region
            (va + 128, 64),
        ])
        state["completions"] = yield from thread.rpoll(handles)

    run_app(cluster, app())
    good0, bad, good1 = state["completions"]
    assert good0.ok and good0.result == b"x" * 64
    assert good1.ok and len(good1.result) == 64
    assert not bad.ok
    with pytest.raises(RemoteAccessError) as excinfo:
        bad.result
    assert excinfo.value.status in (Status.INVALID_VA, Status.PERMISSION)


def test_rwritev_surfaces_failures_synchronously():
    cluster = make_cluster()
    thread = byte_thread(cluster)

    def app():
        va = yield from thread.ralloc(4096)
        with pytest.raises(RemoteAccessError):
            yield from thread.rwritev([(va, b"ok" * 8),
                                       (va + 512 * MB, b"bad" * 8)])

    run_app(cluster, app())


def test_vector_ops_validate_inputs():
    cluster = make_cluster()
    thread = byte_thread(cluster)

    def app():
        va = yield from thread.ralloc(4096)
        with pytest.raises(ValueError):
            yield from thread.rreadv([])
        with pytest.raises(ValueError):
            yield from thread.rwritev([(va, b"")])

    run_app(cluster, app())


def test_oversized_vector_op_falls_back_to_classic_path():
    """A write too big for any frame still lands, via the per-op path."""
    cluster = make_cluster()
    thread = byte_thread(cluster)
    mtu = cluster.params.network.mtu
    big = b"B" * (2 * mtu)
    result = {}

    def app():
        va = yield from thread.ralloc(8 * mtu)
        yield from thread.rwritev([(va, b"a" * 64), (va + 4 * mtu, big),
                                   (va + 64, b"c" * 64)])
        result["big"] = yield from thread.rread(va + 4 * mtu, len(big))
        result["small"] = yield from thread.rread(va, 128)

    run_app(cluster, app())
    assert result["big"] == big
    assert result["small"] == b"a" * 64 + b"c" * 64


def test_vector_ops_respect_intra_thread_ordering():
    """Overlapping ops in one vector serialize write-then-read correctly."""
    cluster = make_cluster()
    thread = byte_thread(cluster)
    result = {}

    def app():
        va = yield from thread.ralloc(4096)
        yield from thread.rwrite(va, b"0" * 64)
        yield from thread.rwritev([(va, b"1" * 64), (va, b"2" * 64)])
        result["read"] = yield from thread.rread(va, 64)

    run_app(cluster, app())
    # Last write in list order wins — WAW order held despite batching.
    assert result["read"] == b"2" * 64


# -- the adaptive batcher ----------------------------------------------------------


def test_batcher_coalesces_by_count():
    cluster = make_cluster()
    thread = byte_thread(cluster)
    state = {}

    def app():
        va = yield from thread.ralloc(64 * 1024)
        yield from thread.rwrite(va, b"z" * 1024)
        batcher = thread.enable_batching(max_ops=8, window_ns=500)
        handles = []
        for index in range(10):
            handle = yield from thread.rread_async(va + 64 * index, 64)
            handles.append(handle)
        completions = yield from thread.rpoll(handles)
        state["data"] = [c.result for c in completions]
        state["frames"] = batcher.frames_issued
        state["subops"] = batcher.subops_batched

    run_app(cluster, app())
    assert state["frames"] == 2          # 8 by count, 2 by window timer
    assert state["subops"] == 10
    assert all(len(blob) == 64 for blob in state["data"])
    assert cluster.mn.batch_subops_served == 10


def test_batcher_window_timer_flushes_partial_frame():
    cluster = make_cluster()
    thread = byte_thread(cluster)
    state = {}

    def app():
        va = yield from thread.ralloc(4096)
        yield from thread.rwrite(va, b"y" * 256)
        batcher = thread.enable_batching(max_ops=64, window_ns=300)
        handle = yield from thread.rread_async(va, 64)
        # Nothing reaches max_ops; only the timer can flush.
        (completion,) = yield from thread.rpoll([handle])
        state["data"] = completion.result
        state["frames"] = batcher.frames_issued

    run_app(cluster, app())
    assert state["data"] == b"y" * 64
    assert state["frames"] == 1


def test_batcher_byte_budget_splits_frames():
    cluster = make_cluster()
    thread = byte_thread(cluster)
    net = cluster.params.network
    # Three writes whose payloads don't fit one frame together.
    size = net.mtu // 2
    state = {}

    def app():
        va = yield from thread.ralloc(8 * MB)
        batcher = thread.enable_batching(max_ops=64, window_ns=500)
        handles = []
        for index in range(3):
            handle = yield from thread.rwrite_async(
                va + size * index, bytes([index + 1]) * size)
            handles.append(handle)
        for completion in (yield from thread.rpoll(handles)):
            completion.result
        state["frames"] = batcher.frames_issued
        state["read"] = yield from thread.rread(va, 3 * size)

    run_app(cluster, app())
    assert state["frames"] >= 2
    assert state["read"] == b"".join(bytes([i + 1]) * size for i in range(3))


def test_disable_batching_flushes_and_detaches():
    cluster = make_cluster()
    thread = byte_thread(cluster)
    state = {}

    def app():
        va = yield from thread.ralloc(4096)
        yield from thread.rwrite(va, b"w" * 128)
        thread.enable_batching(max_ops=64, window_ns=10_000_000)
        handle = yield from thread.rread_async(va, 64)
        thread.disable_batching()          # must flush the pending frame
        (completion,) = yield from thread.rpoll([handle])
        state["data"] = completion.result
        # After disabling, async ops take the classic path again.
        before = cluster.cn(0).transport.batches_issued
        handle2 = yield from thread.rread_async(va, 64)
        (completion2,) = yield from thread.rpoll([handle2])
        completion2.result
        state["batches_delta"] = (cluster.cn(0).transport.batches_issued
                                  - before)

    run_app(cluster, app())
    assert state["data"] == b"w" * 64
    assert state["batches_delta"] == 0
    assert thread.batcher is None


def test_sync_barriers_flush_pending_batches():
    """rfence must not deadlock on (or reorder around) a pending frame."""
    cluster = make_cluster()
    thread = byte_thread(cluster)
    state = {}

    def app():
        va = yield from thread.ralloc(4096)
        thread.enable_batching(max_ops=64, window_ns=10_000_000)
        handle = yield from thread.rwrite_async(va, b"f" * 64)
        yield from thread.rfence()
        assert handle.complete
        state["read"] = yield from thread.rread(va, 64)

    run_app(cluster, app())
    assert state["read"] == b"f" * 64


# -- determinism & the golden batched fingerprint ----------------------------------


def batched_fingerprint(seed=1234):
    """The canonical batched workload: 2 CNs, pinned PIDs, mixed ops."""
    cluster = make_cluster(seed=seed, num_cns=2)
    done = []

    def worker(cn_index, pid):
        thread = byte_thread(cluster, cn=cn_index, pid=pid)
        va = yield from thread.ralloc(8 * MB)
        thread.enable_batching(max_ops=8, window_ns=400)
        for round_index in range(10):
            base = va + 8192 * round_index
            yield from thread.rwritev(
                [(base + 96 * index, bytes([index]) * 96)
                 for index in range(12)])
            blobs = yield from thread.rreadv(
                [(base + 96 * index, 96) for index in range(12)])
            assert blobs == [bytes([index]) * 96 for index in range(12)]
        handles = []
        for index in range(16):
            handle = yield from thread.rread_async(va + 64 * index, 64)
            handles.append(handle)
        for completion in (yield from thread.rpoll(handles)):
            completion.result
        done.append(cluster.env.now)

    procs = [cluster.env.process(worker(0, 9001)),
             cluster.env.process(worker(1, 9002))]
    cluster.run(until=cluster.env.all_of(procs))
    return (cluster.env.now, tuple(sorted(done)),
            cluster.mn.requests_served,
            cluster.mn.batch_subops_served,
            tuple(cn.transport.requests_completed for cn in cluster.cns),
            tuple(cn.transport.batch_subops_completed for cn in cluster.cns),
            tuple(cn.transport.total_retries for cn in cluster.cns))


def test_batched_run_is_bit_identical():
    assert batched_fingerprint(seed=77) == batched_fingerprint(seed=77)
    assert batched_fingerprint(seed=77) != batched_fingerprint(seed=78)


def test_batched_run_matches_golden_fingerprint():
    assert batched_fingerprint() == GOLDEN_BATCHED

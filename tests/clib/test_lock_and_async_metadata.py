"""Tests for RemoteLock and asynchronous ralloc/rfree."""

import pytest

from repro.clib.client import RemoteAccessError
from repro.clib.lock import LockNotHeldError, RemoteLock
from repro.cluster import ClioCluster
from repro.core.pipeline import Status

MB = 1 << 20
PAGE = 4 * MB


def make_cluster(num_cns=1):
    return ClioCluster(num_cns=num_cns, mn_capacity=512 * MB)


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


# -- RemoteLock ---------------------------------------------------------------------


def test_lock_create_acquire_release():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        lock = yield from RemoteLock.create(thread)
        attempts = yield from lock.acquire()
        result["attempts"] = attempts
        result["locked"] = yield from lock.locked()
        yield from lock.release()
        result["unlocked"] = yield from lock.locked()

    run_app(cluster, app())
    assert result["attempts"] == 1
    assert result["locked"] is True
    assert result["unlocked"] is False


def test_lock_misuse_rejected():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        lock = yield from RemoteLock.create(thread)
        with pytest.raises(LockNotHeldError):
            yield from lock.release()
        yield from lock.acquire()
        with pytest.raises(LockNotHeldError):
            yield from lock.acquire()
        yield from lock.release()

    run_app(cluster, app())


def test_lock_mutual_exclusion_via_handles():
    cluster = make_cluster(num_cns=2)
    process = cluster.cn(0).process("mn0")
    t1 = process.thread()
    t2 = process.thread()
    t2._transport = cluster.cn(1).transport
    log = []

    def setup_and_race():
        lock = yield from RemoteLock.create(t1)
        other = lock.handle_for(t2)

        def critical(tag, handle):
            yield from handle.acquire()
            log.append((tag, "in"))
            yield cluster.env.timeout(1500)
            log.append((tag, "out"))
            yield from handle.release()

        p1 = cluster.env.process(critical("a", lock))
        p2 = cluster.env.process(critical("b", other))
        yield cluster.env.all_of([p1, p2])

    run_app(cluster, setup_and_race())
    assert len(log) == 4
    assert log[0][0] == log[1][0] and log[2][0] == log[3][0]


def test_with_lock_releases_on_return_and_raise():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        lock = yield from RemoteLock.create(thread)

        def section():
            result["inside"] = yield from lock.locked()
            return 42

        result["value"] = yield from lock.with_lock(section)
        result["after"] = yield from lock.locked()

        class Boom(Exception):
            pass

        def bad_section():
            yield cluster.env.timeout(1)
            raise Boom

        with pytest.raises(Boom):
            yield from lock.with_lock(bad_section)
        result["after_raise"] = yield from lock.locked()

    run_app(cluster, app())
    assert result["value"] == 42
    assert result["inside"] is True
    assert result["after"] is False
    assert result["after_raise"] is False


def test_contention_counters():
    cluster = make_cluster()
    thread_a = cluster.cn(0).process("mn0").thread()

    def app():
        lock = yield from RemoteLock.create(thread_a)
        yield from lock.acquire()

        # A second handle spins while we hold it.
        other = lock.handle_for(thread_a.process.thread())

        def waiter():
            yield from other.acquire()
            yield from other.release()

        proc = cluster.env.process(waiter())
        yield cluster.env.timeout(20_000)
        yield from lock.release()
        yield proc

    run_app(cluster, app())


# -- async metadata -------------------------------------------------------------------


def test_ralloc_async_returns_va_via_handle():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        handle = yield from thread.ralloc_async(1 * MB)
        (completion,) = yield from thread.rpoll([handle])
        assert completion.kind == "alloc" and completion.ok
        va = completion.result
        result["va"] = va
        yield from thread.rwrite(va, b"async-allocated")
        result["data"] = yield from thread.rread(va, 15)

    run_app(cluster, app())
    assert result["va"] > 0
    assert result["data"] == b"async-allocated"


def test_two_async_rallocs_overlap():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        start = cluster.env.now
        h1 = yield from thread.ralloc_async(1 * MB)
        h2 = yield from thread.ralloc_async(1 * MB)
        completions = yield from thread.rpoll([h1, h2])
        result["elapsed"] = cluster.env.now - start
        result["vas"] = [c.result for c in completions]

    run_app(cluster, app())
    assert len(set(result["vas"])) == 2

    # Compare with two sequential allocs: overlap must be faster.
    cluster2 = make_cluster()
    thread2 = cluster2.cn(0).process("mn0").thread()
    result2 = {}

    def app2():
        start = cluster2.env.now
        yield from thread2.ralloc(1 * MB)
        yield from thread2.ralloc(1 * MB)
        result2["elapsed"] = cluster2.env.now - start

    run_app(cluster2, app2())
    assert result["elapsed"] < result2["elapsed"]


def test_rfree_async_blocks_conflicting_access():
    cluster = make_cluster()
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(PAGE)
        yield from thread.rwrite(va, b"doomed")
        handle = yield from thread.rfree_async(va, size_hint=PAGE)
        # The read is ordered after the in-flight free (metadata/data
        # consistency, section 3.1) and must therefore fail.
        try:
            yield from thread.rread(va, 6)
            result["read"] = "succeeded"
        except RemoteAccessError as exc:
            result["read"] = exc.status
        (completion,) = yield from thread.rpoll([handle])
        assert completion.kind == "free"
        result["freed"] = completion.result

    run_app(cluster, app())
    assert result["read"] is Status.INVALID_VA
    assert result["freed"] == 1

"""Tests for the energy, CapEx, and FPGA-utilization models."""

import pytest

from repro.energy.capex import MemoryMedia, compare_mn_options
from repro.energy.fpga_util import (
    FPGA_UTILIZATION,
    clio_components,
    clio_total,
    offload_headroom_pct,
    onchip_memory_budget_bytes,
)
from repro.energy.power import EnergyAccount, energy_of
from repro.params import EnergyParams, SEC


def test_energy_converts_busy_time_to_joules():
    params = EnergyParams()
    account = EnergyAccount(name="test", mn_cpu_busy_ns=SEC,
                            cn_busy_ns=2 * SEC)
    report = energy_of(account, params)
    assert report.mn_joules == pytest.approx(params.xeon_core_watt)
    assert report.cn_joules == pytest.approx(2 * params.cn_library_watt)
    assert report.total_joules == pytest.approx(
        params.xeon_core_watt + 2 * params.cn_library_watt)


def test_fpga_cheaper_than_cpu_for_same_busy_time():
    params = EnergyParams()
    cpu = energy_of(EnergyAccount(name="cpu", mn_cpu_busy_ns=SEC), params)
    fpga = energy_of(EnergyAccount(name="fpga", mn_fpga_busy_ns=SEC), params)
    assert fpga.mn_joules < cpu.mn_joules


def test_account_merge():
    a = EnergyAccount(name="a", mn_cpu_busy_ns=100, runtime_ns=50)
    b = EnergyAccount(name="b", mn_cpu_busy_ns=200, cn_busy_ns=10,
                      runtime_ns=80)
    a.merge(b)
    assert a.mn_cpu_busy_ns == 300
    assert a.cn_busy_ns == 10
    assert a.runtime_ns == 80


def test_capex_dram_ratios_match_paper_band():
    """Paper: server MN costs 1.1-1.5x and draws 1.9-2.7x vs CBoard (1TB DRAM)."""
    comparison = compare_mn_options(capacity_bytes=1 << 40,
                                    media=MemoryMedia.DRAM)
    assert 1.1 <= comparison.cost_ratio <= 1.5
    assert 1.9 <= comparison.power_ratio <= 2.7


def test_capex_optane_ratios_match_paper_band():
    """Paper: 1.4-2.5x cost and 5.1-8.6x power with Optane."""
    comparison = compare_mn_options(capacity_bytes=1 << 40,
                                    media=MemoryMedia.OPTANE)
    assert 1.4 <= comparison.cost_ratio <= 2.5
    assert 5.1 <= comparison.power_ratio <= 8.6


def test_fpga_utilization_rows_valid():
    assert len(FPGA_UTILIZATION) == 6
    for row in FPGA_UTILIZATION:
        assert 0 <= row.logic_pct <= 100
        assert 0 <= row.memory_pct <= 100


def test_clio_uses_less_than_prior_stacks():
    """Figure 19: Clio total below both StRoM and Tonic on both axes."""
    total = clio_total()
    others = [row for row in FPGA_UTILIZATION if "Clio" not in row.system]
    for other in others:
        assert total.logic_pct < other.logic_pct
        assert total.memory_pct < other.memory_pct


def test_components_are_small_fraction_of_total():
    total = clio_total()
    for component in clio_components():
        assert component.logic_pct < total.logic_pct
        assert component.memory_pct < total.memory_pct


def test_offload_headroom_over_two_thirds():
    """Paper: 'leaves most FPGA resources available for application offloads'."""
    assert offload_headroom_pct() >= 65.0


def test_onchip_memory_budget_near_paper_claim():
    """Paper: TBs + thousands of processes with only ~1.5 MB on-chip memory."""
    budget = onchip_memory_budget_bytes()
    assert budget < 2 * (1 << 20)

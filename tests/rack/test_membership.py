"""Tests for elastic rack membership: joins, drains, evictions, rejoins."""

import pytest

from repro.cluster import ClioCluster
from repro.params import MB, MS, US
from repro.rack import DrainError, RackConfig

PID = 4242
PAGE = 4 * MB


def make_rack(boards=4, spares=0, mn_capacity=64 * MB, partitioned=False,
              **overrides):
    config = RackConfig(boards=boards, tors=2, spares=spares,
                        lease_expiry_ns=overrides.pop("lease_expiry_ns",
                                                      200 * US),
                        sweep_interval_ns=overrides.pop("sweep_interval_ns",
                                                        50 * US),
                        **overrides)
    cluster = ClioCluster(num_cns=1, mn_capacity=mn_capacity, rack=config,
                          partitioned=partitioned)
    return cluster, cluster.rack


def threads_for(cluster):
    return {board.name: cluster.cn(0).process(board.name, pid=PID).thread()
            for board in cluster.mns}


def test_tier_places_regions_by_ring_and_validates_config():
    cluster, tier = make_rack(boards=4)
    result = {}

    def app():
        leases = []
        for _ in range(16):
            leases.append((yield from tier.controller.allocate(PID, PAGE)))
        result["leases"] = leases

    cluster.run(until=cluster.env.process(app()))
    ring = tier.ring
    for lease in result["leases"]:
        assert tier.ring.locate(lease.region_id) == lease.mn
    # An unconstrained allocation lands on the key's ring home.
    homes = sum(1 for lease in result["leases"]
                if ring.home(lease.region_id) == lease.mn)
    assert homes == len(result["leases"])
    with pytest.raises(ValueError):
        RackConfig(boards=0)
    with pytest.raises(ValueError):
        RackConfig(boards=4, tors=0)
    with pytest.raises(ValueError):
        RackConfig(boards=4, migration_batch=0)


def test_drain_migrates_data_and_deregisters_board():
    cluster, tier = make_rack(boards=4)
    controller, membership = tier.controller, tier.membership
    threads = threads_for(cluster)
    result = {}

    def app():
        leases = []
        for _ in range(16):
            leases.append((yield from controller.allocate(PID, PAGE)))
        victim = next(b for b in ("mn1", "mn2", "mn3")
                      if controller.regions_on(b))
        marked = next(l for l in leases if l.mn == victim)
        yield from threads[victim].rwrite(marked.va + 64, b"sticky")
        moved_off = len(controller.regions_on(victim))
        yield from membership.drain_board(victim)
        after = controller.lookup(marked.region_id)
        assert after.mn != victim
        data = yield from threads[after.mn].rread(after.va + 64, 6)
        result.update(victim=victim, moved_off=moved_off, data=data)

    cluster.run(until=cluster.env.process(app()))
    assert result["data"] == b"sticky"
    assert result["victim"] not in tier.controller._boards
    assert result["victim"] not in tier.ring
    assert tier.controller.migrations >= result["moved_off"]
    assert membership.drains == 1
    assert membership.epoch >= 2
    # Every surviving lease points at a live, registered board.
    for region_id in list(tier.controller._leases):
        assert tier.controller.lookup(region_id).mn != result["victim"]


def test_drain_without_capacity_raises_and_keeps_board():
    cluster, tier = make_rack(boards=2, mn_capacity=16 * MB)
    controller, membership = tier.controller, tier.membership
    result = {}

    def app():
        # Fill the rack solid (4 pages per board at 16MB): the preference
        # walk packs every page, leaving a drain nowhere to go.
        for _ in range(4):
            yield from controller.allocate(PID, 2 * PAGE)
        victim = next(b for b in ("mn0", "mn1")
                      if controller.regions_on(b))
        with pytest.raises(DrainError):
            yield from membership.drain_board(victim)
        result["victim"] = victim

    cluster.run(until=cluster.env.process(app()))
    assert result["victim"] in tier.controller._boards
    assert membership.drains == 0


def test_added_spare_takes_load_via_rebalance():
    cluster, tier = make_rack(boards=4, spares=1)
    controller, membership = tier.controller, tier.membership
    result = {}

    def app():
        for _ in range(24):
            yield from controller.allocate(PID, PAGE)
        spare = tier.spare(0)
        assert spare.name not in controller._boards
        moved = yield from membership.add_board(spare)
        result["moved"] = moved
        result["spare"] = spare.name

    cluster.run(until=cluster.env.process(app()))
    spare = result["spare"]
    assert spare in tier.controller._boards
    assert spare in tier.ring
    assert membership.joins == 1
    # The newcomer owns arcs, so rebalancing moved its regions home.
    assert result["moved"] >= 1
    assert result["moved"] == len(tier.controller.regions_on(spare))
    for region_id in tier.controller.regions_on(spare):
        assert tier.ring.home(region_id) == spare


def test_eviction_after_lease_expiry_then_rejoin_wipes_orphans():
    cluster, tier = make_rack(boards=4)
    tier.start(interval_ns=50 * US, miss_threshold=2)
    controller, membership = tier.controller, tier.membership
    threads = threads_for(cluster)
    env = cluster.env
    result = {}

    def app():
        leases = []
        for _ in range(12):
            leases.append((yield from controller.allocate(PID, PAGE)))
        victim = next(b for b in ("mn1", "mn2", "mn3")
                      if controller.regions_on(b))
        board = cluster.board(victim)
        marked = next(l for l in leases if l.mn == victim)
        yield from threads[victim].rwrite(marked.va + 64, b"doomed")
        lost = len(controller.regions_on(victim))
        gen_before = marked.generation
        entries_before_crash = board.page_table.entry_count
        board.crash()
        while membership.evictions < lost:
            yield env.timeout(50 * US)
        after = controller.lookup(marked.region_id)
        assert after.mn != victim
        assert after.generation > gen_before
        # Eviction is re-sharding, not migration: data restarts zeroed.
        data = yield from threads[after.mn].rread(after.va + 64, 6)
        assert data == b"\x00" * 6
        # The dead board's durable page table still holds the orphans.
        assert board.page_table.entry_count == entries_before_crash
        board.restart()
        while victim not in tier.ring:
            yield env.timeout(50 * US)
        result.update(victim=victim, lost=lost,
                      entries_after=board.page_table.entry_count,
                      entries_before=entries_before_crash)

    cluster.run(until=env.process(app()))
    tier.stop()
    assert membership.evictions == result["lost"]
    # The rejoin wiped every orphaned allocation before re-ringing.
    assert result["entries_after"] < result["entries_before"]
    assert result["victim"] not in membership._orphans
    assert membership.joins == 1


def test_draining_board_is_not_a_placement_target():
    cluster, tier = make_rack(boards=3)
    controller, membership = tier.controller, tier.membership
    env = cluster.env
    result = {}

    def app():
        for _ in range(6):
            yield from controller.allocate(PID, PAGE)
        victim = "mn1"
        drain = env.process(membership.drain_board(victim))
        yield env.timeout(1_000)   # drain underway, board still known
        fresh = yield from controller.allocate(PID, PAGE)
        result["fresh_mn"] = fresh.mn
        yield drain

    cluster.run(until=env.process(app()))
    assert result["fresh_mn"] != "mn1"


def test_same_seed_rack_membership_identical_flat_vs_partitioned():
    placements = []
    for partitioned in (False, True):
        cluster, tier = make_rack(boards=4, spares=1,
                                  partitioned=partitioned)
        controller, membership = tier.controller, tier.membership

        def app():
            for _ in range(12):
                yield from controller.allocate(PID, PAGE)
            yield from membership.drain_board("mn2")
            yield from membership.add_board(tier.spare(0))

        cluster.run(until=cluster.env.process(app()))
        placements.append((
            cluster.env.now,
            tuple(sorted((rid, lease.mn)
                         for rid, lease in controller._leases.items())),
            membership.epoch, controller.migrations,
        ))
    assert placements[0] == placements[1]

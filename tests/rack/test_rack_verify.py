"""End-to-end rack acceptance: zipfian YCSB under membership chaos.

Every run rides the full checking stack — shadow oracle on the data
path, linearizability on the shared sync word — so a pass here means
no lost updates, no stale reads, and a linearizable atomic history
across live migration, drains, crashes mid-migration, and lease-expiry
evictions.
"""

import os

import pytest

from repro.faults.scenarios import run_rack_chaos
from repro.verify import RACK_SCENARIOS, run_rack_ycsb


def test_rack_ycsb_clean_run_is_oracle_clean_and_linearizable():
    result = run_rack_ycsb(seed=2, clients=24, ops_per_client=4)
    assert result.ok, result.problems()
    assert result.extras["ops_ok"] == result.extras["ops_attempted"] == 96
    assert result.lin is not None and result.lin.ok
    assert result.history_len > 0


@pytest.mark.parametrize("scenario", RACK_SCENARIOS)
def test_rack_ycsb_survives_membership_chaos(scenario):
    result = run_rack_ycsb(seed=5, clients=24, ops_per_client=4,
                           scenario=scenario)
    assert result.ok, (scenario, result.problems())
    extras = result.extras
    if scenario in ("drain", "add", "crash-mid-migration"):
        # These scenarios move data; the copies must actually happen.
        assert extras["migrations"] + extras["aborted_migrations"] >= 1
    if scenario == "evict":
        assert extras["evictions"] >= 1
    if scenario == "crash-mid-migration":
        assert extras["aborted_migrations"] >= 1
    assert extras["epoch"] >= 1


@pytest.mark.parametrize("scenario", [None, "drain", "crash-mid-migration"])
def test_rack_ycsb_bit_identical_flat_vs_partitioned(scenario):
    flat = run_rack_ycsb(seed=11, clients=24, ops_per_client=4,
                         scenario=scenario)
    pdes = run_rack_ycsb(seed=11, clients=24, ops_per_client=4,
                         scenario=scenario, partitioned=True)
    assert flat.ok and pdes.ok
    assert flat.extras["fingerprint"] == pdes.extras["fingerprint"]
    assert flat.extras["placement"] == pdes.extras["placement"]


def test_rack_tail_recovers_after_drain():
    result = run_rack_ycsb(seed=0, boards=8, clients=128, ops_per_client=4,
                           scenario="drain")
    assert result.ok, result.problems()
    extras = result.extras
    assert extras["pre_p99_ns"] > 0 and extras["post_p99_ns"] > 0
    assert extras["post_p99_ns"] <= 1.5 * extras["pre_p99_ns"]


def test_rack_chaos_delegate_validates_scenarios():
    with pytest.raises(ValueError):
        run_rack_chaos(scenario="board-crash")
    result = run_rack_chaos(scenario="drain", seed=3, clients=16,
                            ops_per_client=4)
    assert result.ok


@pytest.mark.skipif(not os.environ.get("REPRO_RACK_64"),
                    reason="64-board acceptance run; set REPRO_RACK_64=1")
def test_rack_64_boards_1024_clients_acceptance():
    """The full-scale bar: 64 boards, 4 ToRs, 1024 zipfian clients, a
    drain mid-traffic, oracle-clean, linearizable, identical on both
    engines."""
    flat = run_rack_ycsb(seed=0, boards=64, tors=4, num_cns=8,
                         clients=1024, ops_per_client=2, scenario="drain")
    assert flat.ok, flat.problems()
    pdes = run_rack_ycsb(seed=0, boards=64, tors=4, num_cns=8,
                         clients=1024, ops_per_client=2, scenario="drain",
                         partitioned=True)
    assert pdes.ok, pdes.problems()
    assert flat.extras["fingerprint"] == pdes.extras["fingerprint"]

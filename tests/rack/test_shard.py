"""Tests for the consistent-hash shard ring and its override directory."""

import pytest

from repro.rack.shard import ShardRing


def ring_with(names, vnodes=32):
    ring = ShardRing(vnodes=vnodes)
    for name in names:
        ring.add_board(name)
    return ring


def test_empty_ring_rejects_lookups():
    ring = ShardRing()
    assert len(ring) == 0
    with pytest.raises(LookupError):
        ring.home(1)
    assert list(ring.preference(1)) == []


def test_membership_is_strict():
    ring = ring_with(["mn0"])
    with pytest.raises(ValueError):
        ring.add_board("mn0")
    with pytest.raises(KeyError):
        ring.remove_board("mn9")
    assert "mn0" in ring
    assert "mn9" not in ring
    with pytest.raises(ValueError):
        ShardRing(vnodes=0)


def test_layout_is_a_pure_function_of_membership():
    """Two rings with the same boards agree on every key, regardless of
    insertion order — layout depends on hashes, not history."""
    a = ring_with([f"mn{i}" for i in range(8)])
    b = ring_with([f"mn{i}" for i in reversed(range(8))])
    for key in range(500):
        assert a.home(key) == b.home(key)


def test_removal_only_remaps_the_departed_boards_keys():
    """The consistent-hashing contract: taking a board out moves only
    the keys it owned; everyone else's keys stay put."""
    ring = ring_with([f"mn{i}" for i in range(8)])
    before = {key: ring.home(key) for key in range(1000)}
    ring.remove_board("mn3")
    for key, owner in before.items():
        if owner == "mn3":
            assert ring.home(key) != "mn3"
        else:
            assert ring.home(key) == owner


def test_preference_walk_is_distinct_and_starts_at_home():
    ring = ring_with([f"mn{i}" for i in range(6)])
    for key in range(50):
        walk = list(ring.preference(key))
        assert walk[0] == ring.home(key)
        assert len(walk) == len(set(walk)) == 6
    excluded = {"mn0", "mn1"}
    for key in range(50):
        walk = list(ring.preference(key, exclude=excluded))
        assert excluded.isdisjoint(walk)
        assert len(walk) == 4


def test_override_directory_tracks_off_home_placements_only():
    ring = ring_with(["mn0", "mn1", "mn2"])
    key = 7
    home = ring.home(key)
    away = next(b for b in ring.boards if b != home)
    ring.record_placement(key, away)
    assert ring.override_for(key) == away
    assert ring.locate(key) == away
    # Landing back home erases the entry: the directory stays minimal.
    ring.record_placement(key, home)
    assert ring.override_for(key) is None
    assert ring.locate(key) == home
    ring.record_placement(key, away)
    ring.clear_override(key)
    assert ring.override_count == 0


def test_refresh_overrides_tracks_arc_moves():
    """Ring mutations move arcs; refresh recomputes exactly the off-home
    set from the authoritative placement map."""
    ring = ring_with([f"mn{i}" for i in range(4)])
    placements = {key: ring.home(key) for key in range(200)}
    assert ring.override_count == 0
    ring.remove_board("mn2")
    ring.refresh_overrides(placements)
    # Every region that lived on mn2 is now a stray; nobody else is.
    strays = {key for key, board in placements.items() if board == "mn2"}
    assert set(ring.overrides()) == strays
    assert all(board == "mn2" for board in ring.overrides().values())


def test_arc_share_sums_to_one_and_balances():
    ring = ring_with([f"mn{i}" for i in range(8)], vnodes=64)
    shares = ring.arc_share()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    # 64 vnodes per board keeps the spread loose but bounded.
    assert all(0.02 < share < 0.35 for share in shares.values())


def test_stats_shape():
    ring = ring_with(["mn0", "mn1"], vnodes=16)
    ring.record_placement(5, "mn0" if ring.home(5) != "mn0" else "mn1")
    stats = ring.stats()
    assert stats["boards"] == 2
    assert stats["points"] == 32
    assert stats["overrides"] == 1
    assert stats["membership_changes"] == 2

"""Tests for the multi-switch rack fabric: ToRs under a spine.

The satellite acceptance story: per-link FIFO holds across the full
ToR -> spine -> ToR path (with jitter pinned to zero — jitter exists to
reorder), lookahead is declared on every inter-switch edge so the
partitioned engine can actually overlap the fabric, same-ToR traffic
never touches the spine, and a two-ToR echo workload is bit-identical
flat vs partitioned.
"""

import hashlib

from repro.net.packet import ClioHeader, Packet, PacketType
from repro.net.rack import RackTopology
from repro.params import MB, NetworkParams
from repro.sim import Environment
from repro.sim.partition import PartitionedEnvironment
from repro.sim.rng import RandomStream


def quiet_params(**overrides):
    """No jitter, no loss: deterministic per-link ordering."""
    return NetworkParams(jitter_ns=0, loss_rate=0.0, corruption_rate=0.0,
                         **overrides)


def make_packet(src, dst, request_id, wire_bytes=256):
    header = ClioHeader(src=src, dst=dst, request_id=request_id,
                        packet_type=PacketType.READ)
    return Packet(header=header, wire_bytes=wire_bytes)


def build_rack(env, tors=2, nodes=("cn0", "cn1", "mn0", "mn1"),
               params=None, tor_envs=None, spine_env=None):
    topo = RackTopology(env, params or quiet_params(), tors=tors,
                        rng=RandomStream(7, "rack"),
                        tor_envs=tor_envs, spine_env=spine_env)
    inboxes = {name: [] for name in nodes}
    for name in nodes:
        topo.add_node(
            name,
            (lambda packet, _n=name: inboxes[_n].append(
                (packet.header.request_id, topo.env.now))),
            node_env=(tor_envs[topo.tor_index(name)]
                      if tor_envs is not None else None))
    return topo, inboxes


def test_node_placement_round_robins_on_trailing_digits():
    env = Environment()
    topo, _ = build_rack(env, tors=2)
    assert topo.tor_index("mn0") == 0
    assert topo.tor_index("mn1") == 1
    assert topo.tor_index("mn2") == 0
    assert topo.tor_index("cachedir") == 0   # digitless -> ToR 0


def test_cross_tor_path_keeps_per_link_fifo():
    """Ten packets cn0 (ToR 0) -> mn1 (ToR 1): four serialized hops,
    arrival order must equal send order with jitter off."""
    env = Environment()
    topo, inboxes = build_rack(env)
    for request_id in range(10):
        topo.send(make_packet("cn0", "mn1", request_id))
    env.run()
    assert [rid for rid, _ in inboxes["mn1"]] == list(range(10))
    # The path really went up the spine.
    assert topo.spine.packets_forwarded == 10
    assert topo.tor_switches[0].packets_forwarded == 10
    assert topo.tor_switches[1].packets_forwarded == 10


def test_same_tor_traffic_bypasses_the_spine():
    env = Environment()
    topo, inboxes = build_rack(env)
    for request_id in range(5):
        topo.send(make_packet("cn0", "mn0", request_id))   # both ToR 0
    env.run()
    assert [rid for rid, _ in inboxes["mn0"]] == list(range(5))
    assert topo.spine.packets_forwarded == 0
    assert topo.tor_switches[1].packets_forwarded == 0


def test_cross_tor_costs_two_more_forwarding_hops():
    params = quiet_params()
    env = Environment()
    topo, inboxes = build_rack(env, params=params)
    topo.send(make_packet("cn0", "mn0", 1))     # same ToR
    topo.send(make_packet("cn0", "mn1", 2))     # cross ToR
    env.run()
    local_at = inboxes["mn0"][0][1]
    remote_at = inboxes["mn1"][0][1]
    # Two extra store-and-forward hops: two switch delays, two link
    # propagations, two serializations — strictly slower, and by at
    # least the two forwarding delays alone.
    assert remote_at >= local_at + 2 * params.switch_forward_ns


def test_incast_queues_on_destination_tor_downlink():
    env = Environment()
    topo, inboxes = build_rack(env, nodes=("cn0", "cn1", "cn2", "mn1"))
    # cn0 (ToR 0), cn1 (ToR 1), cn2 (ToR 0) all blast mn1 (ToR 1).
    for request_id in range(12):
        for src in ("cn0", "cn1", "cn2"):
            topo.send(make_packet(src, "mn1", request_id, wire_bytes=4096))
    env.run(until=10_000)
    assert topo.downlink("mn1").queue_depth > 0
    env.run()
    assert len(inboxes["mn1"]) == 36


def test_unroutable_packets_count_instead_of_crashing():
    env = Environment()
    topo, _ = build_rack(env)
    topo.tor_switches[0].ingress(make_packet("cn0", "ghost", 1))
    env.run()
    assert topo.spine.unroutable == 1


def test_partitioned_rack_declares_lookahead_on_every_edge():
    env = PartitionedEnvironment()
    tor_envs = [env.partition("tor0"), env.partition("tor1")]
    spine_env = env.partition("spine")
    params = quiet_params()
    topo, _ = build_rack(env, tor_envs=tor_envs, spine_env=spine_env,
                         params=params)
    edges = env.lookahead_edges()
    expected = params.propagation_ns + 1
    # Every ToR <-> spine edge, both directions.
    for tor in ("tor0", "tor1"):
        assert edges[(tor, "spine")] == expected
        assert edges[("spine", tor)] == expected


def test_two_tor_echo_bit_identical_flat_vs_partitioned():
    """The golden echo: cn0 <-> mn1 across the spine, reply per request;
    the delivery log (request ids + timestamps) must be bit-identical
    on the flat and partitioned engines."""

    def run(partitioned):
        if partitioned:
            env = PartitionedEnvironment()
            tor_envs = [env.partition("tor0"), env.partition("tor1")]
            spine_env = env.partition("spine")
        else:
            env = Environment()
            tor_envs = spine_env = None
        topo = RackTopology(env, quiet_params(), tors=2,
                            rng=RandomStream(7, "rack"),
                            tor_envs=tor_envs, spine_env=spine_env)
        log = []

        def mn1_receive(packet):
            log.append(("mn1", packet.header.request_id, env.now))
            topo.send(make_packet("mn1", "cn0",
                                  packet.header.request_id + 100))

        def cn0_receive(packet):
            log.append(("cn0", packet.header.request_id, env.now))

        topo.add_node("cn0", cn0_receive,
                      node_env=tor_envs[0] if tor_envs else None)
        topo.add_node("mn1", mn1_receive,
                      node_env=tor_envs[1] if tor_envs else None)
        for request_id in range(20):
            topo.send(make_packet("cn0", "mn1", request_id))
        env.run()
        digest = hashlib.blake2b(repr(log).encode(),
                                 digest_size=16).hexdigest()
        return digest, log, topo.stats()

    flat_digest, flat_log, flat_stats = run(partitioned=False)
    pdes_digest, pdes_log, pdes_stats = run(partitioned=True)
    assert len(flat_log) == 40          # 20 requests + 20 echoes
    assert flat_digest == pdes_digest
    assert flat_stats == pdes_stats

"""Tests for links, the switch, and the star topology."""

import pytest

from repro.net.link import Link
from repro.net.packet import ClioHeader, Packet, PacketType
from repro.net.switch import Topology
from repro.params import GBPS, NetworkParams
from repro.sim import Environment
from repro.sim.rng import RandomStream


def make_packet(src="a", dst="b", wire_bytes=64, request_id=1):
    header = ClioHeader(src=src, dst=dst, request_id=request_id,
                        packet_type=PacketType.READ)
    return Packet(header=header, wire_bytes=wire_bytes)


def test_link_delivers_after_serialization_and_propagation():
    env = Environment()
    received = []
    link = Link(env, "l", rate_bps=10 * GBPS, propagation_ns=200,
                deliver=lambda p: received.append((p, env.now)))
    link.send(make_packet(wire_bytes=1250))   # 1250B at 10Gbps = 1000ns
    env.run()
    packet, when = received[0]
    assert when == 1000 + 200


def test_link_serializes_fifo():
    env = Environment()
    received = []
    link = Link(env, "l", rate_bps=10 * GBPS, propagation_ns=0,
                deliver=lambda p: received.append((p.header.request_id, env.now)))
    link.send(make_packet(wire_bytes=1250, request_id=1))
    link.send(make_packet(wire_bytes=1250, request_id=2))
    env.run()
    assert [r[0] for r in received] == [1, 2]
    assert received[1][1] - received[0][1] == 1000  # back-to-back serialization


def test_link_queue_builds_under_load():
    env = Environment()
    link = Link(env, "l", rate_bps=1 * GBPS, propagation_ns=0,
                deliver=lambda p: None)
    for index in range(10):
        link.send(make_packet(wire_bytes=1250, request_id=index))
    env.run(until=1)
    assert link.queue_depth > 0


def test_link_loss_drops_packets():
    env = Environment()
    received = []
    link = Link(env, "l", rate_bps=100 * GBPS, propagation_ns=0,
                deliver=received.append, rng=RandomStream(1, "lossy"),
                loss_rate=0.5)
    for index in range(200):
        link.send(make_packet(request_id=index))
    env.run()
    assert link.packets_dropped > 50
    assert len(received) == 200 - link.packets_dropped


def test_link_corruption_marks_packets():
    env = Environment()
    received = []
    link = Link(env, "l", rate_bps=100 * GBPS, propagation_ns=0,
                deliver=received.append, rng=RandomStream(2, "noisy"),
                corruption_rate=0.3)
    for index in range(200):
        link.send(make_packet(request_id=index))
    env.run()
    corrupt = [p for p in received if p.corrupt]
    assert len(corrupt) == link.packets_corrupted
    assert corrupt


def test_link_jitter_can_reorder_delivery():
    env = Environment()
    received = []
    link = Link(env, "l", rate_bps=100 * GBPS, propagation_ns=500,
                deliver=lambda p: received.append(p.header.request_id),
                rng=RandomStream(3, "jitter"), jitter_ns=2000)
    for index in range(50):
        link.send(make_packet(wire_bytes=64, request_id=index))
    env.run()
    assert received != sorted(received)   # out-of-order delivery occurred


def test_link_rejects_bad_construction():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, "l", rate_bps=0, propagation_ns=0, deliver=lambda p: None)
    with pytest.raises(ValueError):
        Link(env, "l", rate_bps=1, propagation_ns=-1, deliver=lambda p: None)


@pytest.mark.parametrize("kwargs", [
    {"loss_rate": -0.01},
    {"loss_rate": 1.01},
    {"corruption_rate": -0.5},
    {"corruption_rate": 2.0},
    {"jitter_ns": -1},
])
def test_link_rejects_bad_rates_and_jitter(kwargs):
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, "l", rate_bps=1 * GBPS, propagation_ns=0,
             deliver=lambda p: None, **kwargs)


@pytest.mark.parametrize("kwargs", [
    {"loss_rate": 0.0}, {"loss_rate": 1.0},
    {"corruption_rate": 0.0}, {"corruption_rate": 1.0},
    {"jitter_ns": 0},
])
def test_link_accepts_boundary_rates(kwargs):
    env = Environment()
    Link(env, "l", rate_bps=1 * GBPS, propagation_ns=0,
         deliver=lambda p: None, **kwargs)


def test_link_down_drops_silently_and_counts():
    env = Environment()
    received = []
    link = Link(env, "l", rate_bps=100 * GBPS, propagation_ns=0,
                deliver=received.append)
    link.send(make_packet(request_id=1))
    link.set_down()
    assert not link.up
    for index in range(5):
        link.send(make_packet(request_id=10 + index))
    link.set_up()
    link.send(make_packet(request_id=2))
    env.run()
    # Only the packets sent while up arrive; downed sends never schedule
    # a delivery and are counted separately from random loss.
    assert [p.header.request_id for p in received] == [1, 2]
    assert link.packets_dropped_down == 5
    assert link.packets_dropped == 0
    assert link.packets_sent == 2


def test_topology_set_node_up_covers_both_directions():
    env = Environment()
    params = NetworkParams(jitter_ns=0)
    topology = Topology(env, params)
    received = {"a": [], "b": []}
    topology.add_node("a", received["a"].append)
    topology.add_node("b", received["b"].append)
    topology.set_node_up("b", False)
    uplink, downlink = topology.links_for("b")
    assert not uplink.up and not downlink.up
    topology.send(make_packet(src="a", dst="b"))     # dropped at b's downlink
    topology.send(make_packet(src="b", dst="a"))     # dropped at b's uplink
    env.run()
    assert not received["a"] and not received["b"]
    topology.set_node_up("b", True)
    topology.send(make_packet(src="a", dst="b"))
    env.run()
    assert len(received["b"]) == 1


def test_topology_routes_between_nodes():
    env = Environment()
    params = NetworkParams(jitter_ns=0)
    topology = Topology(env, params)
    received = {"a": [], "b": []}
    topology.add_node("a", received["a"].append)
    topology.add_node("b", received["b"].append)
    topology.send(make_packet(src="a", dst="b"))
    env.run()
    assert len(received["b"]) == 1
    assert not received["a"]


def test_topology_unroutable_counted():
    env = Environment()
    topology = Topology(env, NetworkParams())
    topology.add_node("a", lambda p: None)
    topology.send(make_packet(src="a", dst="ghost"))
    env.run()
    assert topology.switch.unroutable == 1


def test_topology_unknown_source_rejected():
    env = Environment()
    topology = Topology(env, NetworkParams())
    with pytest.raises(KeyError):
        topology.send(make_packet(src="ghost", dst="a"))


def test_topology_duplicate_node_rejected():
    env = Environment()
    topology = Topology(env, NetworkParams())
    topology.add_node("a", lambda p: None)
    with pytest.raises(ValueError):
        topology.add_node("a", lambda p: None)


def test_slow_mn_port_is_bottleneck():
    """Traffic into a 10 Gbps MN port queues at the switch downlink."""
    env = Environment()
    params = NetworkParams(jitter_ns=0)
    topology = Topology(env, params)
    arrivals = []
    topology.add_node("cn", lambda p: None)                  # 40 Gbps
    topology.add_node("mn", lambda p: arrivals.append(env.now),
                      port_rate_bps=10 * GBPS)
    for index in range(10):
        topology.send(make_packet(src="cn", dst="mn", wire_bytes=1250,
                                  request_id=index))
    env.run()
    # At 10 Gbps each 1250B packet takes 1000ns; arrivals pace at >=1000ns.
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(gap >= 1000 for gap in gaps)

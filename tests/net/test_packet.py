"""Tests for packets, headers, and fragmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import ClioHeader, Packet, PacketType, fragment_payload


def test_fragment_small_request_single_packet():
    assert fragment_payload(100, 1500) == [(0, 100)]


def test_fragment_exact_mtu():
    assert fragment_payload(1500, 1500) == [(0, 1500)]


def test_fragment_large_request():
    fragments = fragment_payload(4000, 1500)
    assert fragments == [(0, 1500), (1500, 1500), (3000, 1000)]


def test_fragment_zero_size_control_packet():
    assert fragment_payload(0, 1500) == [(0, 0)]


def test_fragment_rejects_bad_args():
    with pytest.raises(ValueError):
        fragment_payload(-1, 1500)
    with pytest.raises(ValueError):
        fragment_payload(100, 0)


def test_header_is_self_describing():
    header = ClioHeader(src="cn0", dst="mn0", request_id=7,
                        packet_type=PacketType.WRITE, pid=3, va=4096,
                        size=100, total_size=3000, fragment=2, fragments=3)
    # Everything needed to process the fragment independently is present.
    assert header.va == 4096 and header.pid == 3
    assert header.fragment == 2 and header.fragments == 3


def test_packet_uids_unique():
    header = ClioHeader(src="a", dst="b", request_id=1,
                        packet_type=PacketType.READ)
    p1 = Packet(header=header)
    p2 = Packet(header=header)
    assert p1.uid != p2.uid


def test_packet_repr_mentions_type_and_route():
    header = ClioHeader(src="cn0", dst="mn0", request_id=1,
                        packet_type=PacketType.READ)
    text = repr(Packet(header=header, wire_bytes=64))
    assert "read" in text and "cn0->mn0" in text


@given(st.integers(min_value=1, max_value=100_000),
       st.integers(min_value=16, max_value=9000))
@settings(max_examples=200, deadline=None)
def test_fragments_cover_payload_exactly(total, mtu):
    fragments = fragment_payload(total, mtu)
    assert fragments[0][0] == 0
    covered = 0
    for offset, size in fragments:
        assert offset == covered
        assert 0 < size <= mtu
        covered += size
    assert covered == total

"""EgressShaper unit tests: GCRA conformance, FIFO release, metrics.

Packets go through a real :class:`~repro.net.link.Link` so released
traffic still pays serialization; the assertions pin the *shaper's*
decisions (passed/shaped counts, release spacing) which are pure
integer arithmetic with no RNG.
"""

import pytest

from repro.net.link import Link
from repro.net.packet import ClioHeader, Packet, PacketType
from repro.net.qos import EgressShaper
from repro.params import (
    KB,
    SEC,
    NetworkParams,
    QoSParams,
    TenantConfig,
)
from repro.sim import Environment
from repro.telemetry.metrics import MetricsRegistry

GBPS = 10 ** 9


def make_shaper(qos, rate_bps=10 * GBPS, registry=None):
    env = Environment()
    delivered = []
    link = Link(env, "tor->mn0", rate_bps, 500,
                deliver=delivered.append)
    shaper = EgressShaper(env, "mn0", link, qos, port_rate_bps=rate_bps,
                          registry=registry)
    return env, shaper, delivered


def packet(src, wire_bytes=1464, uid=0):
    header = ClioHeader(src=src, dst="mn0", request_id=uid,
                        packet_type=PacketType.WRITE, pid=1, va=0,
                        size=wire_bytes)
    return Packet(header=header, payload=None, wire_bytes=wire_bytes,
                  uid=uid)


QOS = QoSParams(tenants=(
    TenantConfig(name="victim", clients=("cn0",), share=0.7),
    TenantConfig(name="aggr", clients=("cn1", "cn2"), share=0.3),
), burst_bytes=3 * KB)


def test_burst_within_allowance_passes_immediately():
    env, shaper, delivered = make_shaper(QOS)
    for uid in range(2):          # 2 x 1464B < 3KB burst
        shaper.send(packet("cn1", uid=uid))
    queue = shaper._queues["aggr"]
    assert queue.passed == 2
    assert queue.shaped == 0
    env.run(until=100_000)
    assert len(delivered) == 2


def test_burst_beyond_allowance_is_shaped_and_spaced():
    env, shaper, delivered = make_shaper(QOS)
    for uid in range(16):
        shaper.send(packet("cn1", uid=uid))
    queue = shaper._queues["aggr"]
    assert queue.passed == 3       # tau admits the first 3 at t=0
    assert queue.shaped == 13
    assert shaper.backlog == 13
    env.run(until=100_000)
    assert len(delivered) == 16    # conservation: everything drains
    assert shaper.backlog == 0
    assert queue.shaped_delay_ns > 0
    # Releases pace at the reserved rate: one emission per packet.
    emission = queue.emission_ns(1464)
    assert emission == (1464 * 8 * SEC) // int(10 * GBPS * 0.3)


def test_release_order_is_fifo():
    env, shaper, delivered = make_shaper(QOS)
    for uid in range(8):
        shaper.send(packet("cn1", uid=uid))
    env.run(until=100_000)
    assert [p.uid for p in delivered] == list(range(8))


def test_tenants_do_not_shape_each_other():
    env, shaper, delivered = make_shaper(QOS)
    for uid in range(16):
        shaper.send(packet("cn1", uid=uid))     # aggr blows its bucket
    shaper.send(packet("cn0", uid=100))         # victim is untouched
    assert shaper._queues["victim"].passed == 1
    assert shaper._queues["victim"].shaped == 0


def test_unclassified_sources_bypass():
    env, shaper, delivered = make_shaper(QOS)
    shaper.send(packet("cn9", uid=1))
    assert shaper.unclassified == 1
    env.run(until=10_000)
    assert len(delivered) == 1


def test_shaper_metrics():
    registry = MetricsRegistry()
    env, shaper, _ = make_shaper(QOS, registry=registry)
    for uid in range(6):
        shaper.send(packet("cn1", uid=uid))
    snapshot = registry.snapshot()
    assert snapshot["qos.mn0.tenant.aggr.passed"] == 3
    assert snapshot["qos.mn0.tenant.aggr.shaped"] == 3
    assert snapshot["qos.mn0.tenant.aggr.queue_depth"] == 3
    assert snapshot["qos.mn0.backlog"] == 3
    assert snapshot["qos.mn0.tenant.victim.passed"] == 0


# -- QoSParams validation -----------------------------------------------------


def test_tenant_share_bounds():
    with pytest.raises(ValueError):
        TenantConfig(name="x", clients=("cn0",), share=0.0)
    with pytest.raises(ValueError):
        TenantConfig(name="x", clients=("cn0",), share=1.5)


def test_duplicate_tenant_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        QoSParams(tenants=(
            TenantConfig(name="a", clients=("cn0",), share=0.4),
            TenantConfig(name="a", clients=("cn1",), share=0.4),
        ))


def test_shares_must_not_oversubscribe():
    with pytest.raises(ValueError):
        QoSParams(tenants=(
            TenantConfig(name="a", clients=("cn0",), share=0.7),
            TenantConfig(name="b", clients=("cn1",), share=0.7),
        ))


def test_client_in_one_tenant_only():
    with pytest.raises(ValueError):
        QoSParams(tenants=(
            TenantConfig(name="a", clients=("cn0",), share=0.4),
            TenantConfig(name="b", clients=("cn0",), share=0.4),
        ))


def test_tenant_of_lookup():
    assert QOS.tenant_of("cn2").name == "aggr"
    assert QOS.tenant_of("cn0").name == "victim"
    assert QOS.tenant_of("mn0") is None


# -- cluster wiring -----------------------------------------------------------


def test_enable_qos_installs_and_disable_removes():
    from repro.cluster import ClioCluster
    from repro.params import ClioParams

    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          num_cns=2, mn_capacity=64 * (1 << 20))
    shapers = cluster.enable_qos(qos=QOS)
    assert set(shapers) == {"mn0"}
    switch = cluster.topology.switch
    assert switch.shaper_for("mn0") is shapers["mn0"]
    # Idempotent: a second call reinstalls the same shapers.
    assert cluster.enable_qos() is shapers
    cluster.disable_qos()
    assert switch.shaper_for("mn0") is None


def test_enable_qos_requires_tenants():
    from repro.cluster import ClioCluster
    from repro.params import ClioParams

    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          mn_capacity=64 * (1 << 20))
    with pytest.raises(ValueError, match="TenantConfig"):
        cluster.enable_qos()


def test_switch_exposes_per_egress_queue_depth():
    """The satellite fix: every attached egress queue has a depth gauge
    under the switch's scope, shaper backlog included."""
    from repro.cluster import ClioCluster
    from repro.params import ClioParams

    cluster = ClioCluster(params=ClioParams.prototype(), seed=0,
                          num_cns=2, mn_capacity=64 * (1 << 20))
    snapshot = cluster.metrics.snapshot()
    for node in ("cn0", "cn1", "mn0"):
        assert f"switch.tor.queue.{node}.depth" in snapshot
    cluster.enable_qos(qos=QOS)
    shaper = cluster.qos_shapers["mn0"]
    for uid in range(16):
        shaper.send(packet("cn1", uid=uid))
    depth = cluster.topology.switch.egress_queue_depth("mn0")
    assert depth >= shaper.backlog > 0
    assert cluster.metrics.snapshot()["switch.tor.queue.mn0.depth"] == depth

"""Tests for the Go-Back-N transport (the conventional design)."""

import pytest

from repro.net.gbn import (
    CONNECTION_FIXED_BYTES,
    GBNReceiver,
    GBNSender,
    connection_state_bytes,
)
from repro.sim import Environment


class Channel:
    """A toy channel wiring one sender to one receiver with a delay and a
    scriptable drop set."""

    def __init__(self, env, delay_ns=500, drop_seqs=()):
        self.env = env
        self.delay_ns = delay_ns
        self.drop_once = set(drop_seqs)
        self.delivered = []
        self.receiver = None
        self.sender = None

    def transmit(self, seq, payload):
        if seq in self.drop_once:
            self.drop_once.discard(seq)
            return

        def deliver():
            yield self.env.timeout(self.delay_ns)
            self.receiver.on_packet(seq, payload)

        self.env.process(deliver())

    def send_ack(self, cumulative):
        def deliver():
            yield self.env.timeout(self.delay_ns)
            self.sender.on_ack(cumulative)

        self.env.process(deliver())


def make_pair(window=4, timeout_ns=10_000, drop_seqs=()):
    env = Environment()
    channel = Channel(env, drop_seqs=drop_seqs)
    sender = GBNSender(env, window=window, timeout_ns=timeout_ns,
                       transmit=channel.transmit)
    receiver = GBNReceiver(deliver=channel.delivered.append,
                           send_ack=channel.send_ack)
    channel.sender = sender
    channel.receiver = receiver
    return env, channel, sender, receiver


def send_all(env, sender, payloads):
    def producer():
        for payload in payloads:
            yield from sender.send(payload)

    env.process(producer())


def test_in_order_delivery_no_loss():
    env, channel, sender, receiver = make_pair()
    payloads = [b"m%d" % index for index in range(10)]
    send_all(env, sender, payloads)
    env.run(until=10 ** 6)
    assert channel.delivered == payloads
    assert sender.retransmissions == 0
    assert sender.in_flight == 0


def test_window_blocks_sender():
    env, channel, sender, receiver = make_pair(window=2)
    # Break the ack path so the window can never reopen.
    channel.send_ack = lambda cumulative: None
    receiver.send_ack = lambda cumulative: None
    progress = []

    def producer():
        for index in range(4):
            yield from sender.send(b"x")
            progress.append(index)

    env.process(producer())
    env.run(until=5_000)   # before the first timeout fires
    assert progress == [0, 1]           # window of 2 admits two sends
    assert sender.in_flight == 2


def test_loss_recovered_by_go_back_n():
    env, channel, sender, receiver = make_pair(window=4, timeout_ns=5_000,
                                               drop_seqs={2})
    payloads = [b"p%d" % index for index in range(6)]
    send_all(env, sender, payloads)
    env.run(until=10 ** 6)
    assert channel.delivered == payloads
    # Dropping seq 2 forces retransmission of 2 and everything after it
    # that was in flight — the go-back-N inefficiency.
    assert sender.retransmissions >= 2
    assert receiver.discarded >= 1       # 3.. arrived early, discarded


def test_duplicates_discarded_and_reacked():
    env, channel, sender, receiver = make_pair()
    send_all(env, sender, [b"a"])
    env.run(until=10 ** 5)
    # Replay the same packet: discarded, ack repeated.
    receiver.on_packet(0, b"a")
    assert receiver.discarded == 1
    assert channel.delivered == [b"a"]


def test_ack_loss_heals_via_timeout():
    env, channel, sender, receiver = make_pair(window=2, timeout_ns=4_000)
    # Drop the first ack only.
    original_send_ack = channel.send_ack
    dropped = {"first": True}

    def flaky_ack(cumulative):
        if dropped["first"]:
            dropped["first"] = False
            return
        original_send_ack(cumulative)

    receiver.send_ack = flaky_ack
    send_all(env, sender, [b"only"])
    env.run(until=10 ** 6)
    assert channel.delivered[0] == b"only"
    assert sender.in_flight == 0
    assert sender.retransmissions >= 1


def test_state_grows_with_window():
    assert connection_state_bytes(64) > connection_state_bytes(8)
    assert connection_state_bytes(1) > CONNECTION_FIXED_BYTES


def test_invalid_construction():
    env = Environment()
    with pytest.raises(ValueError):
        GBNSender(env, window=0, timeout_ns=100, transmit=lambda s, p: None)
    with pytest.raises(ValueError):
        GBNSender(env, window=1, timeout_ns=0, transmit=lambda s, p: None)

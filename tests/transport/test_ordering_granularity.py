"""Tests for byte-granularity dependency tracking (paper future work)."""

import pytest

from repro.core.addr import PageSpec
from repro.sim import Environment
from repro.transport.ordering import DependencyTracker

MB = 1 << 20
PAGE = 4 * MB


def make_tracker(granularity):
    env = Environment()
    return env, DependencyTracker(env, PageSpec(PAGE),
                                  granularity=granularity)


def test_invalid_granularity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        DependencyTracker(env, PageSpec(PAGE), granularity="cacheline")


def test_byte_mode_allows_disjoint_same_page_writes():
    env, tracker = make_tracker("byte")
    tracker.register(0, 64, is_write=True)
    # Same page, disjoint bytes: NOT a conflict in byte mode.
    assert tracker.conflicts(1024, 64, is_write=True) == []


def test_page_mode_blocks_disjoint_same_page_writes():
    env, tracker = make_tracker("page")
    tracker.register(0, 64, is_write=True)
    assert len(tracker.conflicts(1024, 64, is_write=True)) == 1


def test_byte_mode_detects_true_overlap():
    env, tracker = make_tracker("byte")
    tracker.register(100, 64, is_write=True)
    assert len(tracker.conflicts(150, 64, is_write=False)) == 1  # RAW
    assert len(tracker.conflicts(163, 10, is_write=True)) == 1   # WAW edge
    assert tracker.conflicts(164, 10, is_write=True) == []       # adjacent


def test_byte_mode_boundary_semantics():
    env, tracker = make_tracker("byte")
    tracker.register(0, 100, is_write=True)
    # [100, 110) starts exactly at the old end: no overlap.
    assert tracker.conflicts(100, 10, is_write=True) == []
    # [99, 109) overlaps by one byte.
    assert len(tracker.conflicts(99, 10, is_write=True)) == 1


def test_byte_mode_reads_never_conflict():
    env, tracker = make_tracker("byte")
    tracker.register(0, 1024, is_write=False)
    assert tracker.conflicts(0, 1024, is_write=False) == []


def test_byte_mode_release_still_drains_everything():
    env, tracker = make_tracker("byte")
    done_a = tracker.register(0, 64, is_write=True)
    done_b = tracker.register(10 * PAGE, 64, is_write=False)
    log = []

    def releaser():
        yield from tracker.drain()
        log.append(env.now)

    def completer():
        yield env.timeout(100)
        done_a.succeed()
        yield env.timeout(100)
        done_b.succeed()

    env.process(releaser())
    env.process(completer())
    env.run()
    assert log == [200]


def test_end_to_end_byte_granularity_thread():
    """A byte-tracking thread overlaps same-page disjoint async writes."""
    from repro.cluster import ClioCluster
    cluster = ClioCluster(mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread(
        ordering_granularity="byte")
    result = {}

    def app():
        va = yield from thread.ralloc(PAGE)
        yield from thread.rwrite(va, b"\0" * 64)
        h1 = yield from thread.rwrite_async(va, b"A" * 64)
        h2 = yield from thread.rwrite_async(va + 1024, b"B" * 64)
        yield from thread.rpoll([h1, h2])
        result["a"] = yield from thread.rread(va, 64)
        result["b"] = yield from thread.rread(va + 1024, 64)

    cluster.run(until=cluster.env.process(app()))
    assert result["a"] == b"A" * 64
    assert result["b"] == b"B" * 64
    assert thread.tracker.blocked_count == 0   # no false dependency

"""Integration tests for the CLib transport against a real CBoard."""

import pytest

from dataclasses import replace

from repro.cluster import ClioCluster
from repro.core.addr import Permission
from repro.core.pipeline import Status
from repro.net.packet import PacketType
from repro.params import ClioParams, NetworkParams
from repro.transport.clib_transport import RequestFailed, RequestFailedError

MB = 1 << 20


def lossy_params(loss=0.0, corruption=0.0, max_retries=8):
    """Params with fault injection; retries raised because a request
    crosses four lossy links (two hops each way)."""
    base = ClioParams.prototype()
    return replace(base,
                   network=replace(base.network, loss_rate=loss,
                                   corruption_rate=corruption),
                   clib=replace(base.clib, max_retries=max_retries))


def run_request(cluster, **kwargs):
    transport = cluster.cn(0).transport
    holder = {}

    def driver():
        outcome = yield from transport.request("mn0", **kwargs)
        holder["outcome"] = outcome

    cluster.run(until=cluster.env.process(driver()))
    return holder["outcome"]


def alloc(cluster, pid=1, size=MB):
    outcome = run_request(cluster, packet_type=PacketType.ALLOC, pid=pid,
                          payload=(size, Permission.READ_WRITE, None))
    assert outcome.body.status is Status.OK
    return outcome.body.value.va


def test_request_response_roundtrip():
    cluster = ClioCluster(mn_capacity=256 * MB)
    va = alloc(cluster)
    write = run_request(cluster, packet_type=PacketType.WRITE, pid=1,
                        va=va, size=4, data=b"ping")
    assert write.body.status is Status.OK
    read = run_request(cluster, packet_type=PacketType.READ, pid=1,
                       va=va, size=4)
    assert read.data == b"ping"
    assert read.retries == 0


def test_large_write_fragments_and_acks_once():
    cluster = ClioCluster(mn_capacity=256 * MB)
    va = alloc(cluster)
    data = bytes(range(256)) * 16   # 4096B -> 3 fragments
    write = run_request(cluster, packet_type=PacketType.WRITE, pid=1,
                        va=va, size=len(data), data=data)
    assert write.body.status is Status.OK
    read = run_request(cluster, packet_type=PacketType.READ, pid=1,
                       va=va, size=len(data))
    assert read.data == data


def test_corrupted_request_nacked_and_retried():
    cluster = ClioCluster(params=lossy_params(corruption=0.2), seed=11,
                          mn_capacity=256 * MB)
    va = alloc(cluster)
    transport = cluster.cn(0).transport
    completed = []

    def driver():
        for index in range(40):
            outcome = yield from transport.request(
                "mn0", PacketType.WRITE, pid=1, va=va, size=4,
                data=index.to_bytes(4, "little"))
            completed.append(outcome)

    cluster.run(until=cluster.env.process(driver()))
    assert len(completed) == 40
    assert sum(outcome.retries for outcome in completed) > 0
    assert cluster.mn.nacks_sent > 0


def test_lost_packets_recovered_by_timeout_retry():
    cluster = ClioCluster(params=lossy_params(loss=0.15), seed=7,
                          mn_capacity=256 * MB)
    va = alloc(cluster)
    transport = cluster.cn(0).transport
    completed = []

    def driver():
        for index in range(30):
            outcome = yield from transport.request(
                "mn0", PacketType.WRITE, pid=1, va=va, size=4,
                data=index.to_bytes(4, "little"))
            completed.append(outcome)

    cluster.run(until=cluster.env.process(driver()))
    assert len(completed) == 30
    assert sum(outcome.retries for outcome in completed) > 0


def test_total_loss_raises_request_failed():
    cluster = ClioCluster(params=lossy_params(loss=1.0, max_retries=2),
                          mn_capacity=256 * MB)
    transport = cluster.cn(0).transport
    failures = []

    def driver():
        try:
            yield from transport.request("mn0", PacketType.READ, pid=1,
                                         va=4 * MB, size=4)
        except RequestFailedError as exc:
            failures.append(exc)

    cluster.run(until=cluster.env.process(driver()))
    assert failures
    # Original + max_retries attempts were all made.
    assert cluster.cn(0).transport.total_retries == \
        cluster.params.clib.max_retries


def test_request_failed_carries_typed_metadata():
    cluster = ClioCluster(params=lossy_params(loss=1.0, max_retries=3),
                          mn_capacity=256 * MB)
    transport = cluster.cn(0).transport
    failures = []

    def driver():
        try:
            yield from transport.request("mn0", PacketType.READ, pid=1,
                                         va=4 * MB, size=4)
        except RequestFailed as exc:
            failures.append(exc)

    cluster.run(until=cluster.env.process(driver()))
    exc = failures[0]
    assert exc.mn == "mn0"
    assert exc.packet_type is PacketType.READ
    assert exc.va == 4 * MB
    assert exc.attempts == cluster.params.clib.max_retries + 1
    assert exc.reason == "timeout"
    # The typed error and the legacy alias are the same class.
    assert RequestFailed is RequestFailedError


def test_attempts_hard_capped_and_counted():
    """Against a black-holed MN the transport makes exactly
    ``max_retries + 1`` attempts per request, then fails typed — the
    failure counters balance against issued/completed."""
    cluster = ClioCluster(params=lossy_params(loss=1.0, max_retries=2),
                          mn_capacity=256 * MB)
    transport = cluster.cn(0).transport
    failures = []

    def driver():
        for _ in range(3):
            try:
                yield from transport.request("mn0", PacketType.READ, pid=1,
                                             va=4 * MB, size=4)
            except RequestFailed as exc:
                failures.append(exc)

    cluster.run(until=cluster.env.process(driver()))
    assert len(failures) == 3
    assert all(exc.attempts == 3 for exc in failures)
    assert transport.requests_issued == 3
    assert transport.requests_failed == 3
    assert transport.requests_completed == 0
    assert transport.total_retries == 3 * 2


def test_clib_params_validate_retry_settings():
    from repro.params import CLibParams
    with pytest.raises(ValueError):
        CLibParams(max_retries=-1)
    with pytest.raises(ValueError):
        CLibParams(timeout_ns=0)
    with pytest.raises(ValueError):
        CLibParams(timeout_ns=1000, slow_timeout_ns=500)
    CLibParams(max_retries=0, timeout_ns=1000, slow_timeout_ns=1000)


def test_counters_balance_on_success():
    cluster = ClioCluster(mn_capacity=256 * MB)
    va = alloc(cluster)
    transport = cluster.cn(0).transport
    issued_before = transport.requests_issued

    def driver():
        for index in range(10):
            yield from transport.request("mn0", PacketType.WRITE, pid=1,
                                         va=va, size=4,
                                         data=index.to_bytes(4, "little"))

    cluster.run(until=cluster.env.process(driver()))
    assert transport.requests_issued - issued_before == 10
    assert transport.requests_issued == \
        transport.requests_completed + transport.requests_failed


def test_stale_response_after_timeout_is_dropped():
    """A response arriving after its request timed out must be discarded
    (its ID is no longer pending) and counted as stale."""
    from repro.params import CLibParams
    base = ClioParams.prototype()
    # Timeout far below the actual RTT: first attempt always times out.
    params = replace(base, clib=replace(base.clib, timeout_ns=400,
                                        max_retries=10))
    cluster = ClioCluster(params=params, mn_capacity=256 * MB)
    transport = cluster.cn(0).transport
    outcomes = []

    def driver():
        try:
            outcome = yield from transport.request("mn0", PacketType.READ,
                                                   pid=1, va=4 * MB, size=4)
            outcomes.append(outcome)
        except RequestFailedError:
            outcomes.append(None)

    cluster.run(until=cluster.env.process(driver()))
    # Drain any late responses still in flight.
    cluster.run(until=cluster.env.now + 10 ** 8)
    assert transport.stale_responses > 0


def test_congestion_window_grows_under_light_load():
    cluster = ClioCluster(mn_capacity=256 * MB)
    va = alloc(cluster)
    transport = cluster.cn(0).transport
    initial = transport.congestion("mn0").cwnd

    def driver():
        for _ in range(50):
            yield from transport.request("mn0", PacketType.READ, pid=1,
                                         va=va, size=16)

    # Prime the page first so reads succeed.
    run_request(cluster, packet_type=PacketType.WRITE, pid=1, va=va,
                size=16, data=b"z" * 16)
    cluster.run(until=cluster.env.process(driver()))
    assert transport.congestion("mn0").cwnd > initial


def test_outstanding_limited_by_cwnd():
    cluster = ClioCluster(mn_capacity=256 * MB)
    va = alloc(cluster)
    run_request(cluster, packet_type=PacketType.WRITE, pid=1, va=va,
                size=16, data=b"z" * 16)
    transport = cluster.cn(0).transport
    congestion = transport.congestion("mn0")
    max_outstanding = 0
    procs = []

    def one_read():
        yield from transport.request("mn0", PacketType.READ, pid=1,
                                     va=va, size=16)

    def monitor():
        nonlocal max_outstanding
        for _ in range(4000):
            max_outstanding = max(max_outstanding, congestion.outstanding)
            yield cluster.env.timeout(50)

    for _ in range(64):
        procs.append(cluster.env.process(one_read()))
    cluster.env.process(monitor())
    cluster.run(until=cluster.env.all_of(procs))
    assert max_outstanding <= int(cluster.params.clib.cwnd_max)
    assert max_outstanding >= 1

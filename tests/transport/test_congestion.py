"""Tests for delay-based AIMD congestion and incast control."""

import pytest

from repro.params import CLibParams
from repro.transport.congestion import CongestionController, IncastController

US = 1000


def make_cc(**overrides):
    params = CLibParams(**overrides) if overrides else CLibParams()
    return CongestionController(params), params


def test_window_admits_up_to_cwnd():
    cc, params = make_cc()
    admitted = 0
    while cc.can_send(0, -10 ** 9):
        cc.on_send()
        admitted += 1
    assert admitted == int(params.cwnd_init)


def test_low_rtt_grows_window_additively():
    cc, params = make_cc()
    before = cc.cwnd
    cc.on_send()
    cc.on_ack(rtt_ns=params.target_rtt_ns // 2)
    assert cc.cwnd > before


def test_high_rtt_shrinks_window_multiplicatively():
    cc, params = make_cc()
    before = cc.cwnd
    cc.on_send()
    cc.on_ack(rtt_ns=params.target_rtt_ns * 4)
    assert cc.cwnd == pytest.approx(
        before * params.cwnd_multiplicative_decrease)


def test_timeout_is_a_double_decrease():
    cc, params = make_cc()
    before = cc.cwnd
    cc.on_send()
    cc.on_timeout()
    assert cc.cwnd == pytest.approx(
        before * params.cwnd_multiplicative_decrease ** 2)


def test_cwnd_bounded_between_min_and_max():
    cc, params = make_cc()
    for _ in range(200):
        cc.on_send()
        cc.on_timeout()
    assert cc.cwnd == params.cwnd_min
    for _ in range(10000):
        cc.on_send()
        cc.on_ack(rtt_ns=0)
    assert cc.cwnd <= params.cwnd_max


def test_sub_packet_window_paces_sends():
    """cwnd of 0.1 means one send per 10 target-RTTs (paper section 4.4)."""
    cc, params = make_cc()
    cc.cwnd = 0.1
    interval = cc.pacing_interval_ns()
    assert interval == int(params.target_rtt_ns / 0.1)
    # Too soon after the last send: denied.
    assert not cc.can_send(now=interval // 2, last_send=0)
    # After the full pacing gap: allowed.
    assert cc.can_send(now=interval, last_send=0)


def test_sub_packet_window_allows_one_outstanding():
    cc, _ = make_cc()
    cc.cwnd = 0.5
    assert cc.can_send(now=10 ** 9, last_send=0)
    cc.on_send()
    assert not cc.can_send(now=2 * 10 ** 9, last_send=0)


def test_incast_admits_within_window():
    ic = IncastController(CLibParams(iwnd_bytes=10_000))
    assert ic.can_send(4000)
    ic.on_send(4000)
    assert ic.can_send(6000)
    ic.on_send(6000)
    assert not ic.can_send(1)
    ic.on_complete(4000)
    assert ic.can_send(4000)


def test_incast_oversize_response_admitted_alone():
    ic = IncastController(CLibParams(iwnd_bytes=1000))
    assert ic.can_send(5000)          # alone: allowed
    ic.on_send(5000)
    assert not ic.can_send(10)        # nothing else while it is in flight
    ic.on_complete(5000)
    assert ic.can_send(10)


def test_incast_outstanding_never_negative():
    ic = IncastController(CLibParams())
    ic.on_complete(1000)
    assert ic.outstanding_bytes == 0

"""Tests for the pluggable congestion-control algorithms (R7)."""

import pytest

from dataclasses import replace

from repro.params import CLibParams, ClioParams
from repro.transport.congestion import (
    CC_ALGORITHMS,
    CongestionController,
    StaticWindowController,
    TimelyController,
    make_congestion_controller,
)

US = 1000


def test_factory_builds_named_algorithms():
    for name, cls in CC_ALGORITHMS.items():
        params = CLibParams(cc_algorithm=name)
        controller = make_congestion_controller(params)
        assert isinstance(controller, cls)
        assert controller.name == name


def test_factory_rejects_unknown_algorithm():
    with pytest.raises(ValueError, match="unknown congestion"):
        make_congestion_controller(CLibParams(cc_algorithm="warp"))


def test_static_window_never_adapts():
    controller = StaticWindowController(CLibParams())
    initial = controller.cwnd
    for _ in range(50):
        controller.on_send()
        controller.on_ack(rtt_ns=10 ** 9)    # terrible RTT
    controller.on_send()
    controller.on_timeout()
    assert controller.cwnd == initial
    assert controller.decreases == 0


def test_timely_grows_on_low_flat_rtt():
    controller = TimelyController(CLibParams())
    before = controller.cwnd
    for _ in range(10):
        controller.on_send()
        controller.on_ack(rtt_ns=2 * US)     # well under target, flat
    assert controller.cwnd > before


def test_timely_shrinks_on_rising_rtt():
    params = CLibParams()
    controller = TimelyController(params)
    # Feed a steeply rising RTT series above target.
    rtt = params.target_rtt_ns
    controller.on_send()
    controller.on_ack(rtt_ns=rtt)
    before = controller.cwnd
    for step in range(1, 8):
        controller.on_send()
        controller.on_ack(rtt_ns=rtt + step * 10 * US)
    assert controller.cwnd < before
    assert controller.decreases > 0


def test_timely_recovers_when_gradient_flattens():
    params = CLibParams()
    controller = TimelyController(params)
    # Rise then hold low: gradient decays, growth resumes.
    controller.on_send()
    controller.on_ack(rtt_ns=params.target_rtt_ns * 4)
    for _ in range(20):
        controller.on_send()
        controller.on_ack(rtt_ns=params.target_rtt_ns // 4)
    assert controller.cwnd > params.cwnd_min


def test_timely_respects_bounds():
    params = CLibParams()
    controller = TimelyController(params)
    for step in range(200):
        controller.on_send()
        controller.on_ack(rtt_ns=params.target_rtt_ns * (2 + step))
    assert controller.cwnd >= params.cwnd_min
    for _ in range(5000):
        controller.on_send()
        controller.on_ack(rtt_ns=0)
    assert controller.cwnd <= params.cwnd_max


def test_end_to_end_with_each_algorithm():
    """The full stack completes a workload under every algorithm."""
    from repro.cluster import ClioCluster
    MB = 1 << 20
    for name in CC_ALGORITHMS:
        base = ClioParams.prototype()
        params = replace(base, clib=replace(base.clib, cc_algorithm=name))
        cluster = ClioCluster(params=params, mn_capacity=256 * MB)
        thread = cluster.cn(0).process("mn0").thread()
        result = {}

        def app():
            va = yield from thread.ralloc(4 * MB)
            yield from thread.rwrite(va, b"algo-" + name.encode())
            result["data"] = yield from thread.rread(va, 5 + len(name))

        cluster.run(until=cluster.env.process(app()))
        assert result["data"] == b"algo-" + name.encode()
        assert cluster.cn(0).transport.congestion("mn0").name == name

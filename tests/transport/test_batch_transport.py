"""Transport-level behaviour of multi-op BATCH frames.

Satellite coverage for repro.batch: a frame is ONE transport request —
one ID, one congestion-window slot, one retransmission unit — so every
pre-existing accounting invariant must hold verbatim with batching on,
including under forced retransmission (a repro.faults loss burst):

* conservation: ``requests_issued == requests_completed +
  requests_failed`` once the run drains, with the ``batch_subops_*``
  counters riding consistently alongside;
* window accounting: congestion ``outstanding`` equals the pending map
  (``check_transport``);
* retry dedup: a retransmitted write-bearing frame applies its writes
  exactly once (the shadow oracle audits every read against that).
"""

from dataclasses import replace

from repro.cluster import ClioCluster
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.net.packet import BatchSubOp, PacketType
from repro.params import ClioParams
from repro.verify import check_transport

MB = 1 << 20
US = 1000
MS = 1000 * US


def _retry_params() -> ClioParams:
    """Tight timeouts so a loss burst forces retransmission quickly."""
    params = ClioParams.prototype()
    return replace(params, clib=replace(params.clib, timeout_ns=20 * US,
                                        slow_timeout_ns=1 * MS,
                                        max_retries=8))


def _batched_run(cluster, ops_per_client=120, clients=2):
    """Drive a batched read/write mix to completion; returns failures."""
    failures = []
    done = []

    def worker(cn_index, pid):
        thread = (cluster.cn(cn_index).process("mn0", pid=pid)
                  .thread(ordering_granularity="byte"))
        va = yield from thread.ralloc(8 * MB)
        thread.enable_batching(max_ops=8, window_ns=400)
        handles = []
        for index in range(ops_per_client):
            offset = 128 * index
            if index % 2:
                handle = yield from thread.rread_async(va + offset, 64)
            else:
                handle = yield from thread.rwrite_async(
                    va + offset, bytes([index % 256]) * 64)
            handles.append(handle)
            if len(handles) >= 16:
                completions = yield from thread.rpoll(handles)
                handles = []
                failures.extend(c for c in completions if not c.ok)
        thread._flush_batches()
        completions = yield from thread.rpoll(handles)
        failures.extend(c for c in completions if not c.ok)
        done.append(cluster.env.now)

    procs = [cluster.env.process(worker(index, 9100 + index))
             for index in range(clients)]
    cluster.run(until=cluster.env.all_of(procs))
    assert len(done) == clients, "batched workers hung"
    return failures


def _assert_counters_conserved(cluster):
    for node in cluster.cns:
        transport = node.transport
        settled = transport.requests_completed + transport.requests_failed
        assert transport.requests_issued == settled, (
            f"{node.name}: issued {transport.requests_issued} != "
            f"completed+failed {settled}")
        assert transport.batch_subops_completed <= \
            transport.batch_subops_issued
        assert transport.batches_issued <= transport.requests_issued
        assert check_transport(node) == []


def test_batch_counters_conserved_clean_run():
    cluster = ClioCluster(seed=11, num_cns=2, mn_capacity=256 * MB)
    failures = _batched_run(cluster)
    assert failures == []
    _assert_counters_conserved(cluster)
    for node in cluster.cns:
        # Every sub-op landed: nothing lost inside frames.
        assert (node.transport.batch_subops_completed
                == node.transport.batch_subops_issued)
        assert node.transport.batches_issued > 0


def test_batch_counters_conserved_under_loss_burst():
    """Retransmitted frames must not double-count or leak window slots."""
    cluster = ClioCluster(params=_retry_params(), seed=11, num_cns=2,
                          mn_capacity=256 * MB)
    verifier = cluster.enable_verification()
    schedule = (FaultSchedule()
                .loss_burst(15 * US, "cn0", 400 * US, rate=0.4)
                .loss_burst(40 * US, "mn0", 200 * US, rate=0.3))
    FaultInjector(cluster, schedule).arm()
    failures = _batched_run(cluster)
    _assert_counters_conserved(cluster)
    retries = sum(node.transport.total_retries for node in cluster.cns)
    assert retries > 0, "loss burst produced no retransmissions"
    # Per-op failures (retries exhausted) are typed, never silent.
    assert all(c.status == "request_failed" for c in failures)
    # Dedup correctness: retransmitted write frames applied exactly once —
    # the oracle checked every batched read against shadow memory.
    verifier.sweep()
    assert verifier.violations == []
    assert verifier.report()["read_mismatches"] == 0


def test_batch_retry_is_bit_identical_under_loss():
    def fingerprint(seed):
        cluster = ClioCluster(params=_retry_params(), seed=seed, num_cns=1,
                              mn_capacity=256 * MB)
        schedule = FaultSchedule().loss_burst(15 * US, "cn0", 300 * US,
                                              rate=0.5)
        FaultInjector(cluster, schedule).arm()
        _batched_run(cluster, ops_per_client=80, clients=1)
        transport = cluster.cn(0).transport
        return (cluster.env.now, transport.requests_issued,
                transport.total_retries, transport.batch_subops_completed)

    assert fingerprint(5) == fingerprint(5)


def test_oversized_batch_frame_rejected():
    cluster = ClioCluster(seed=0, mn_capacity=64 * MB)
    transport = cluster.cn(0).transport
    net = cluster.params.network
    payload = b"x" * (net.mtu // 2)
    sub_ops = tuple(BatchSubOp(op=PacketType.WRITE, va=4096 * index,
                               size=len(payload), data=payload)
                    for index in range(4))

    def app():
        try:
            yield from transport.request_batch("mn0", 9001, sub_ops)
        except ValueError as exc:
            return str(exc)
        return None

    process = cluster.env.process(app())
    cluster.run(until=process)
    assert process.value is not None
    # Nothing was issued for the rejected frame.
    assert transport.batches_issued == 0
    assert transport.requests_issued == 0


def test_empty_batch_rejected():
    cluster = ClioCluster(seed=0, mn_capacity=64 * MB)
    transport = cluster.cn(0).transport

    def app():
        try:
            yield from transport.request_batch("mn0", 9001, ())
        except ValueError:
            return "rejected"
        return None

    process = cluster.env.process(app())
    cluster.run(until=process)
    assert process.value == "rejected"

"""Tests for CN-side dependency tracking (WAR/RAW/WAW, release order)."""

from repro.core.addr import PageSpec
from repro.sim import Environment
from repro.transport.ordering import DependencyTracker

MB = 1 << 20
PAGE = 4 * MB


def make_tracker():
    env = Environment()
    return env, DependencyTracker(env, PageSpec(PAGE))


def test_reads_never_conflict():
    env, tracker = make_tracker()
    tracker.register(0, 64, is_write=False)
    assert tracker.conflicts(0, 64, is_write=False) == []


def test_raw_conflict_detected():
    env, tracker = make_tracker()
    tracker.register(0, 64, is_write=True)        # in-flight write
    assert len(tracker.conflicts(0, 64, is_write=False)) == 1


def test_war_conflict_detected():
    env, tracker = make_tracker()
    tracker.register(0, 64, is_write=False)       # in-flight read
    assert len(tracker.conflicts(0, 64, is_write=True)) == 1


def test_waw_conflict_detected():
    env, tracker = make_tracker()
    tracker.register(0, 64, is_write=True)
    assert len(tracker.conflicts(0, 64, is_write=True)) == 1


def test_different_pages_no_conflict():
    env, tracker = make_tracker()
    tracker.register(0, 64, is_write=True)
    assert tracker.conflicts(PAGE, 64, is_write=True) == []


def test_page_granularity_false_dependency():
    """Same page, disjoint bytes: still a conflict (the paper's trade-off)."""
    env, tracker = make_tracker()
    tracker.register(0, 64, is_write=True)
    assert len(tracker.conflicts(1024, 64, is_write=True)) == 1


def test_spanning_request_conflicts_with_either_page():
    env, tracker = make_tracker()
    tracker.register(PAGE - 8, 16, is_write=True)    # spans pages 0 and 1
    assert len(tracker.conflicts(0, 8, is_write=True)) == 1
    assert len(tracker.conflicts(PAGE, 8, is_write=True)) == 1
    assert tracker.conflicts(2 * PAGE, 8, is_write=True) == []


def test_completion_retires_entry():
    env, tracker = make_tracker()
    done = tracker.register(0, 64, is_write=True)
    assert tracker.inflight_count == 1
    done.succeed()
    env.run()
    assert tracker.inflight_count == 0
    assert tracker.conflicts(0, 64, is_write=True) == []


def test_wait_for_conflicts_blocks_until_done():
    env, tracker = make_tracker()
    done = tracker.register(0, 64, is_write=True)
    log = []

    def blocked_writer():
        yield from tracker.wait_for_conflicts(0, 64, is_write=True)
        log.append(env.now)

    def completer():
        yield env.timeout(500)
        done.succeed()

    env.process(blocked_writer())
    env.process(completer())
    env.run()
    assert log == [500]
    assert tracker.blocked_count == 1


def test_wait_with_no_conflicts_is_immediate():
    env, tracker = make_tracker()
    log = []

    def writer():
        yield from tracker.wait_for_conflicts(0, 64, is_write=True)
        log.append(env.now)

    env.process(writer())
    env.run()
    assert log == [0]
    assert tracker.blocked_count == 0


def test_drain_waits_for_all_inflight():
    env, tracker = make_tracker()
    done_a = tracker.register(0, 64, is_write=True)
    done_b = tracker.register(PAGE, 64, is_write=False)
    log = []

    def releaser():
        yield from tracker.drain()
        log.append(env.now)

    def completer():
        yield env.timeout(100)
        done_a.succeed()
        yield env.timeout(200)
        done_b.succeed()

    env.process(releaser())
    env.process(completer())
    env.run()
    assert log == [300]

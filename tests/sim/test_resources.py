"""Unit tests for Resource, Store, and Container."""

import pytest

from repro.sim import Container, Environment, Resource, Store


def test_resource_serializes_exclusive_access():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(tag, hold):
        request = resource.request()
        yield request
        log.append((tag, "in", env.now))
        yield env.timeout(hold)
        resource.release(request)
        log.append((tag, "out", env.now))

    env.process(user("a", 10))
    env.process(user("b", 10))
    env.run()
    assert log == [
        ("a", "in", 0), ("a", "out", 10),
        ("b", "in", 10), ("b", "out", 20),
    ]


def test_resource_capacity_allows_parallelism():
    env = Environment()
    resource = Resource(env, capacity=2)
    entered = []

    def user(tag):
        request = resource.request()
        yield request
        entered.append((tag, env.now))
        yield env.timeout(10)
        resource.release(request)

    for tag in ("a", "b", "c"):
        env.process(user(tag))
    env.run()
    assert entered == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_release_unowned_rejected():
    env = Environment()
    resource = Resource(env, capacity=1)

    def proc():
        request = resource.request()
        yield request
        resource.release(request)
        with pytest.raises(ValueError):
            resource.release(request)

    env.process(proc())
    env.run()


def test_resource_zero_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_request_cancel_leaves_queue():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder():
        request = resource.request()
        yield request
        yield env.timeout(100)
        resource.release(request)

    def impatient():
        request = resource.request()
        yield env.timeout(10)
        assert not request.triggered
        request.cancel()

    env.process(holder())
    env.process(impatient())
    env.run()
    assert resource.queue_len == 0


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in (1, 2, 3):
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(50)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("late", 50)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")
        times.append(("b", env.now))

    def consumer():
        yield env.timeout(30)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [("a", 0), ("b", 30)]


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=100, init=50)

    def proc():
        yield tank.get(20)
        assert tank.level == 30
        yield tank.put(60)
        assert tank.level == 90

    env.process(proc())
    env.run()


def test_container_get_blocks_until_enough():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    when = []

    def consumer():
        yield tank.get(10)
        when.append(env.now)

    def producer():
        yield env.timeout(5)
        yield tank.put(4)
        yield env.timeout(5)
        yield tank.put(6)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert when == [10]


def test_container_rejects_bad_amounts():
    env = Environment()
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)

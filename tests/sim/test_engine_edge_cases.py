"""Edge cases of the simulation engine's trickiest paths.

Covers the scenarios the hot-path optimizations (slots, timeout pooling,
scheduled callbacks) must not disturb: interrupt-while-waiting, deadlines
equal to the current time, the already-processed-event fast loop in
``Process._resume``, and bit-for-bit determinism of event ordering.
"""

import pytest

from repro.sim import Environment, Interrupt, Resource, SimulationError
from repro.sim.core import Timeout


# -- interrupt while waiting ---------------------------------------------------


def test_interrupt_while_waiting_on_timeout():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(1000)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))

    def interrupter(target):
        yield env.timeout(100)
        target.interrupt(cause="wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [("interrupted", "wake up", 100)]


def test_interrupt_detaches_from_waited_event():
    """After an interrupt, the old target firing must not resume the process
    a second time."""
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(1000)
        except Interrupt:
            log.append(("interrupted", env.now))
            yield env.timeout(5000)
            log.append(("resumed", env.now))

    def interrupter(target):
        yield env.timeout(100)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    # One interrupt, one clean resume at 100 + 5000 (not at the old 1000).
    assert log == [("interrupted", 100), ("resumed", 5100)]


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    process = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    failures = []

    def selfish(holder):
        try:
            holder[0].interrupt()
        except SimulationError:
            failures.append(True)
        yield env.timeout(1)

    holder = []
    holder.append(env.process(selfish(holder)))
    env.run()
    assert failures == [True]


# -- run(until=...) boundaries -------------------------------------------------


def test_run_until_now_fires_current_timestamp_events():
    """A deadline equal to ``now`` still drains events scheduled at now."""
    env = Environment()
    fired = []

    def immediate():
        fired.append(env.now)
        yield env.timeout(10)
        fired.append(env.now)

    env.process(immediate())
    env.run(until=env.now)
    # The Initialize event at t=0 processed; the t=10 timeout did not.
    assert fired == [0]
    assert env.now == 0
    env.run()
    assert fired == [0, 10]


def test_run_until_past_deadline_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_run_until_event_queue_drained_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)


# -- run(until=Event) on already-resolved events --------------------------------


def test_run_until_processed_event_returns_without_draining():
    """Waiting on an event that already fired resolves immediately —
    the rest of the queue must stay untouched."""
    env = Environment()
    target = env.timeout(5, value="done")
    late = []
    env.schedule_callback(1000, lambda: late.append(env.now))
    assert env.run(until=target) == "done"
    assert env.now == 5
    # Second wait on the same (now processed) event: fast path, and the
    # t=1000 callback is still pending afterwards.
    assert env.run(until=target) == "done"
    assert not late
    assert len(env._queue) == 1
    assert env.now == 5


def test_run_until_failed_processed_event_reraises():
    env = Environment()
    boom = env.event()
    boom.fail(RuntimeError("boom"))
    boom._defused = True           # keep step() from re-raising it
    env.run()
    assert boom.processed
    env.schedule_callback(1000, lambda: None)
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=boom)
    # The failure resolved from the event itself, not from a drain.
    assert len(env._queue) == 1
    assert env.now == 0


def test_run_until_cancelled_request_raises_immediately():
    """A cancelled (withdrawn, never-fired) request can never trigger;
    waiting on it must raise instead of draining the queue forever."""
    env = Environment()
    resource = Resource(env, capacity=1)
    holder = resource.request()    # takes the only slot
    env.run()
    assert holder.processed
    loser = resource.request()     # queued behind the holder
    loser.cancel()
    env.schedule_callback(10_000, lambda: None)
    with pytest.raises(SimulationError, match="cancelled"):
        env.run(until=loser)
    assert env.now == 0            # nothing was dispatched hunting for it


def test_cancel_keeps_callbacks_for_live_waiter():
    """Cancelling a request a process is yielding on must not strand the
    waiter with a cleared callback list."""
    env = Environment()
    resource = Resource(env, capacity=1)
    outcome = []

    def waiter(request):
        got = yield request
        outcome.append(got)

    holder = resource.request()
    env.run()
    queued = resource.request()
    env.process(waiter(queued))
    env.run()                      # waiter is now parked on the request
    queued.cancel()
    assert queued.callbacks is not None   # waiter still attached
    resource.release(holder)       # frees the slot; cancelled request skipped


def _cancelled_request(env):
    """A request in the terminal cancelled state (withdrawn, never fired)."""
    resource = Resource(env, capacity=1)
    resource.request()             # takes the only slot
    env.run()
    loser = resource.request()
    loser.cancel()
    assert loser.callbacks is None and not loser.triggered
    return loser


def test_process_yielding_cancelled_request_gets_simulation_error():
    """Yielding a cancelled request must raise a clear SimulationError
    into the process (catchable like any other failure), not a TypeError
    from throwing None."""
    env = Environment()
    loser = _cancelled_request(env)
    caught = []

    def waiter():
        try:
            yield loser
        except SimulationError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert len(caught) == 1
    assert "cancelled" in caught[0]


def test_condition_over_cancelled_event_fails_with_simulation_error():
    """A condition built over a cancelled event can never complete; it
    must fail with a SimulationError, not crash in fail(None)."""
    env = Environment()
    loser = _cancelled_request(env)
    condition = env.all_of([loser, env.timeout(5)])
    with pytest.raises(SimulationError, match="cancelled"):
        env.run(until=condition)


# -- already-processed-event chaining in Process._resume -----------------------


def test_yielding_already_processed_events_chains_without_suspending():
    """A process yielding pre-processed events continues in one _resume
    sweep — no extra scheduling round trips, values delivered in order."""
    env = Environment()
    first = env.event().succeed("a")
    second = env.event().succeed("b")
    env.run()                      # both events are now *processed*
    assert first.processed and second.processed
    got = []

    def chained():
        got.append((yield first))
        got.append((yield second))  # still same timestamp, same sweep
        got.append(env.now)

    env.process(chained())
    env.run()
    assert got == ["a", "b", 0]


def test_already_processed_failed_event_raises_into_process():
    env = Environment()
    boom = env.event()
    boom.fail(RuntimeError("boom"))
    boom._defused = True           # keep step() from re-raising it
    env.run()
    caught = []

    def chained():
        ok = yield env.timeout(1, "fine")
        caught.append(ok)
        try:
            yield boom
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(chained())
    env.run()
    assert caught == ["fine", "boom"]


# -- determinism ---------------------------------------------------------------


def _noisy_workload(env, order, tag_count=5):
    def worker(tag):
        for step in range(20):
            yield env.timeout((tag * 7 + step) % 11)
            order.append((env.now, tag, step))

    for tag in range(tag_count):
        env.process(worker(tag))


def test_identical_runs_produce_identical_event_orders():
    orders = []
    for _ in range(2):
        env = Environment()
        order = []
        _noisy_workload(env, order)
        env.run()
        orders.append(order)
    assert orders[0] == orders[1]
    # Simultaneous events fire in insertion order (seeded by tag here).
    times = [t for t, _, _ in orders[0]]
    assert times == sorted(times)


# -- schedule_callback ---------------------------------------------------------


def test_schedule_callback_fires_at_delay():
    env = Environment()
    fired = []
    env.schedule_callback(250, lambda: fired.append(env.now))
    env.schedule_callback(100, lambda: fired.append(env.now))
    env.run()
    assert fired == [100, 250]


def test_schedule_callback_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule_callback(-1, lambda: None)


def test_schedule_callback_interleaves_with_timeouts_deterministically():
    env = Environment()
    order = []

    def proc():
        yield env.timeout(50)
        order.append("process")

    env.process(proc())
    env.schedule_callback(50, lambda: order.append("callback"))
    env.run()
    # Same timestamp: insertion order is the tie-break.  The callback was
    # enqueued at creation; the process's timeout only when the process
    # started (its Initialize event), which is later — callback wins.
    assert order == ["callback", "process"]


# -- timeout pooling safety ----------------------------------------------------


def test_held_timeout_is_never_recycled():
    env = Environment()
    held = env.timeout(5, value="mine")
    env.run()
    # The holder's reference keeps it out of the pool: value intact,
    # and a new timeout is a different object.
    assert held.value == "mine"
    fresh = env.timeout(1, value="other")
    assert fresh is not held
    assert held.value == "mine"
    env.run()


def test_pooled_timeouts_deliver_fresh_values():
    env = Environment()
    seen = []

    def looper():
        for index in range(100):
            got = yield env.timeout(3, value=index)
            seen.append(got)

    env.process(looper())
    env.run()
    assert seen == list(range(100))
    # The pool actually recycled instances (implementation detail, but the
    # whole point of the optimization — catch silent regressions).
    assert env._timeout_pool


def test_pooled_timeout_rejects_negative_delay():
    env = Environment()

    def prime():
        yield env.timeout(1)

    env.process(prime())
    env.run()                      # leaves a recycled instance in the pool
    assert env._timeout_pool
    with pytest.raises(ValueError):
        env.timeout(-5)


def test_direct_timeout_construction_still_validates():
    env = Environment()
    with pytest.raises(ValueError):
        Timeout(env, -1)


def test_interrupted_waiters_timeout_recycles_safely():
    """The timeout a waiter abandoned on interrupt fires unobserved later;
    if it enters the pool, reuse must deliver fresh values, never the
    stale one."""
    env = Environment()
    values = []

    def sleeper():
        try:
            yield env.timeout(1000, value="stale")
        except Interrupt:
            values.append((yield env.timeout(50, value="fresh")))

    def interrupter(target):
        yield env.timeout(100)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()                      # abandoned t=1000 timeout fired at 1000
    assert values == ["fresh"]
    seen = []

    def reuse():
        for index in range(20):
            seen.append((yield env.timeout(1, value=index)))

    env.process(reuse())
    env.run()
    assert seen == list(range(20))


def test_anyof_losing_timeout_is_not_recycled():
    """The losing arm of an any_of stays referenced by the condition, so
    the pool must leave it alone — its value survives the race."""
    env = Environment()
    fast = env.timeout(1, value="fast")
    slow = env.timeout(1000, value="slow")
    winners = []

    def racer():
        winners.append((yield env.any_of([fast, slow])))

    env.process(racer())
    env.run()                      # both fire; slow loses the race
    assert winners[0] == {fast: "fast"} or fast in winners[0]
    assert slow.value == "slow"    # loser untouched by pooling
    # Churn the pool; the held loser must keep its identity and value.
    drains = []

    def churn():
        for index in range(20):
            drains.append((yield env.timeout(1, value=index)))

    env.process(churn())
    env.run()
    assert drains == list(range(20))
    assert slow.value == "slow"
    assert slow not in env._timeout_pool


def test_cancel_race_timeout_reuse_keeps_values_isolated():
    """Interrupt + immediate re-wait at the same timestamp: the recycled
    instance handed to the next caller must be clean."""
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(500, value="doomed")
        except Interrupt:
            log.append(("interrupted", env.now))

    def aggressor(target):
        yield env.timeout(500)     # same timestamp the victim wakes at
        try:
            target.interrupt()
        except SimulationError:
            pass                   # victim won the tie and terminated

    target = env.process(victim())
    env.process(aggressor(target))
    env.run()
    # Whichever way the tie broke, the engine must not double-deliver.
    assert len(log) <= 1
    fresh = env.timeout(1, value="clean")
    assert fresh.value == "clean"
    env.run()


# -- equal-timestamp callback ordering -----------------------------------------


def test_callbacks_at_equal_timestamps_fire_in_insertion_order():
    env = Environment()
    order = []
    for index in range(8):
        env.schedule_callback(10, lambda index=index: order.append(index))
    env.run()
    assert order == list(range(8))


def test_callbacks_scheduled_during_dispatch_keep_global_order():
    """A callback scheduled *at the current timestamp* from inside another
    callback still fires this sweep, after everything already queued."""
    env = Environment()
    order = []

    def first():
        order.append("first")
        env.schedule_callback(0, lambda: order.append("nested"))

    env.schedule_callback(10, first)
    env.schedule_callback(10, lambda: order.append("second"))
    env.run()
    assert order == ["first", "second", "nested"]

"""The parallel executor: window barriers, message routing, determinism.

Three executions of the same channel-coupled model must agree exactly:
the single-process partitioned scheduler (the reference), critical-path
emulation (``workers=0``), and forked workers.  The executor's claim is
not "roughly the same results" — it is the identical set of dispatched
events, because every cross-partition message travels a declared
lookahead edge and windows never outrun the tightest one.
"""

import multiprocessing
import os

import pytest

from repro.sim import ParallelExecutor, PartitionedEnvironment, SimulationError

HAS_FORK = (os.name == "posix"
            and "fork" in multiprocessing.get_all_start_methods())

NODES = 4
INFLIGHT = 6
ROUNDS = 12
HOP_NS = 200
DEADLINE_NS = (ROUNDS + 2) * 2 * HOP_NS


def build_ring(counters=None):
    """A ring of echoing nodes: i sends to (i+1) % NODES, replies bounce
    back, each hop over a channel with HOP_NS lookahead."""
    env = PartitionedEnvironment()
    parts = [env.partition(f"n{index}") for index in range(NODES)]
    counts = counters if counters is not None else [0] * NODES
    chans = {}

    def make_handler(i):
        def handle(msg):
            src, slot, remaining = msg
            counts[i] += 1
            if remaining > 0:
                chans[(i, src)].send((i, slot, remaining - 1))
        return handle

    handlers = [make_handler(index) for index in range(NODES)]
    for i in range(NODES):
        for j in ((i + 1) % NODES, (i - 1) % NODES):
            if (i, j) not in chans:
                chans[(i, j)] = env.open_channel(parts[i], parts[j],
                                                 handlers[j], HOP_NS)
    for i in range(NODES):
        for slot in range(INFLIGHT):
            chans[(i, (i + 1) % NODES)].send((i, slot, ROUNDS))
    return env, counts


def test_emulated_matches_single_process_reference():
    ref_env, ref_counts = build_ring()
    ref_env.run(until=DEADLINE_NS)

    env, counts = build_ring()
    executor = ParallelExecutor(env, workers=0)
    stats = executor.run(DEADLINE_NS)

    assert counts == ref_counts
    assert stats["events"] == sum(
        p.events_dispatched for p in env.partitions)
    assert env.now == ref_env.now == DEADLINE_NS
    assert stats["mode"] == "emulated"
    assert stats["windows"] > 0
    assert stats["projected_wall_s"] <= stats["wall_s"]


def test_emulated_runs_are_deterministic():
    outcomes = []
    for _ in range(2):
        env, counts = build_ring()
        executor = ParallelExecutor(env, workers=0)
        stats = executor.run(DEADLINE_NS)
        outcomes.append((counts, stats["events"], stats["windows"],
                         stats["channel_messages"]))
    assert outcomes[0] == outcomes[1]


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
def test_forked_matches_emulated():
    env, _ = build_ring()
    emulated = ParallelExecutor(env, workers=0)
    expected = emulated.run(DEADLINE_NS)

    env, _ = build_ring()
    executor = ParallelExecutor(env, workers=2)
    stats = executor.run(DEADLINE_NS)
    assert stats["mode"] == "forked"
    assert stats["events"] == expected["events"]
    assert stats["windows"] == expected["windows"]
    assert stats["channel_messages"] == expected["channel_messages"]
    assert env.now == DEADLINE_NS


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
def test_forked_worker_count_does_not_change_results():
    outcomes = []
    for workers in (1, 2, NODES):
        env, _ = build_ring()
        executor = ParallelExecutor(env, workers=workers)
        stats = executor.run(DEADLINE_NS)
        outcomes.append((stats["events"], stats["windows"],
                         stats["channel_messages"]))
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_emulated_two_phase_run_preserves_inflight_messages():
    """A deadline landing mid-flight must not drop channel messages: a
    second run() to a later deadline delivers exactly what a single run
    would have."""
    single_env, single_counts = build_ring()
    ParallelExecutor(single_env, workers=0).run(DEADLINE_NS)

    env, counts = build_ring()
    executor = ParallelExecutor(env, workers=0)
    # HOP_NS // 2 past a hop boundary: messages sent in the last window
    # are still in the executor's inboxes when the deadline hits.
    executor.run(3 * HOP_NS + HOP_NS // 2)
    executor.run(DEADLINE_NS)

    assert counts == single_counts


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
def test_forked_run_is_single_shot():
    """After a forked run the parent's wheels are stale pre-fork copies;
    a second run() must refuse instead of replaying from wrong state."""
    env, _ = build_ring()
    executor = ParallelExecutor(env, workers=1)
    executor.run(DEADLINE_NS)
    with pytest.raises(SimulationError, match="single-shot"):
        executor.run(DEADLINE_NS * 2)


# -- guard rails ---------------------------------------------------------------


def test_executor_requires_partitioned_environment():
    from repro.sim import Environment

    with pytest.raises(TypeError):
        ParallelExecutor(Environment())


def test_executor_requires_partitions_and_edges():
    env = PartitionedEnvironment()
    with pytest.raises(SimulationError, match="no partitions"):
        ParallelExecutor(env)
    env.partition("p0")
    with pytest.raises(SimulationError, match="lookahead"):
        ParallelExecutor(env)


def test_executor_rejects_busy_control_wheel():
    env = PartitionedEnvironment()
    a, b = env.partition("a"), env.partition("b")
    env.open_channel(a, b, lambda payload: None, lookahead_ns=10)
    env.schedule_callback(5, lambda: None)      # control wheel event
    with pytest.raises(SimulationError, match="control wheel"):
        ParallelExecutor(env)


def test_executor_rejects_past_deadline():
    env = PartitionedEnvironment()
    a, b = env.partition("a"), env.partition("b")
    env.open_channel(a, b, lambda payload: None, lookahead_ns=10)
    a.timeout(100)
    env.run(until=50)
    executor = ParallelExecutor(env, workers=0)
    with pytest.raises(ValueError):
        executor.run(25)

"""Tests for seeded random streams and the Zipf table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomStream, ZipfTable


def test_same_seed_same_draws():
    a = RandomStream(7, "link")
    b = RandomStream(7, "link")
    assert [a.uniform_int(0, 100) for _ in range(20)] == [
        b.uniform_int(0, 100) for _ in range(20)]


def test_different_names_independent():
    a = RandomStream(7, "link")
    b = RandomStream(7, "switch")
    assert [a.uniform_int(0, 10 ** 9) for _ in range(5)] != [
        b.uniform_int(0, 10 ** 9) for _ in range(5)]


def test_fork_is_deterministic():
    root = RandomStream(42)
    x = root.fork("child").uniform(0, 1)
    y = RandomStream(42).fork("child").uniform(0, 1)
    assert x == y


def test_chance_extremes():
    stream = RandomStream(1)
    assert not stream.chance(0.0)
    assert stream.chance(1.0)


def test_zipf_table_skews_to_head():
    table = ZipfTable(1000, theta=0.99)
    stream = RandomStream(3, "zipf")
    draws = [stream.zipf_index(1000, 0.99, table) for _ in range(5000)]
    head = sum(1 for d in draws if d < 10)
    # With theta=0.99 the top-10 of 1000 keys take a large share.
    assert head > len(draws) * 0.25


def test_zipf_theta_zero_is_uniformish():
    table = ZipfTable(100, theta=0.0)
    stream = RandomStream(5, "zipf-flat")
    draws = [table.draw(stream.uniform()) for _ in range(10000)]
    head = sum(1 for d in draws if d < 10)
    assert 600 < head < 1400  # ~10% +/- slack


def test_zipf_rejects_bad_args():
    with pytest.raises(ValueError):
        ZipfTable(0, 0.99)
    with pytest.raises(ValueError):
        ZipfTable(10, -1.0)


@given(st.integers(min_value=1, max_value=500),
       st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=0.999999))
@settings(max_examples=100)
def test_zipf_draw_always_in_range(n, theta, u):
    table = ZipfTable(n, theta)
    assert 0 <= table.draw(u) < n


@given(st.integers(min_value=0, max_value=2 ** 32), st.text(max_size=20))
@settings(max_examples=50)
def test_stream_reproducible_property(seed, name):
    a = RandomStream(seed, name)
    b = RandomStream(seed, name)
    assert a.uniform() == b.uniform()

"""The partitioned engine's determinism contract and partition mechanics.

The load-bearing property: a model split across partitions, run by the
single-process partitioned scheduler, dispatches *exactly* the event
sequence the flat engine would — same timestamps, same tie-breaks, same
sequence-counter trajectory.  Everything downstream (golden fingerprints,
chaos determinism, RNG draw order) rests on it.
"""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    PartitionedEnvironment,
    SimulationError,
)
from repro.sim.core import URGENT


# -- flat vs partitioned equivalence -------------------------------------------


def _mixed_workload(env, envs, order):
    """A workload spread across ``envs`` (all the same env when flat).

    Mixes timeouts, same-timestamp ties, interrupts (URGENT priority), and
    callbacks so every scheduling path crosses partition lines.
    """

    def worker(sub, tag):
        for step in range(15):
            yield sub.timeout((tag * 7 + step) % 11)
            order.append(("tick", tag, step, env.now))

    def sleeper(sub, tag):
        try:
            yield sub.timeout(10_000)
        except Interrupt as interrupt:
            order.append(("interrupted", tag, interrupt.cause, env.now))

    sleepers = []
    for tag, sub in enumerate(envs):
        sub.process(worker(sub, tag))
        sleepers.append(sub.process(sleeper(sub, tag)))
        sub.schedule_callback(13 + tag,
                              lambda tag=tag: order.append(("cb", tag)))

    def interrupter(sub):
        yield sub.timeout(29)
        for index, target in enumerate(sleepers):
            target.interrupt(cause=index)

    envs[0].process(interrupter(envs[0]))


def test_partitioned_run_is_bit_identical_to_flat():
    flat_env = Environment()
    flat_order = []
    _mixed_workload(flat_env, [flat_env] * 4, flat_order)
    flat_env.run()

    part_env = PartitionedEnvironment()
    parts = [part_env.partition(f"p{index}") for index in range(4)]
    part_order = []
    _mixed_workload(part_env, parts, part_order)
    part_env.run()

    assert part_order == flat_order
    assert part_env._seq == flat_env._seq
    assert part_env.now == flat_env.now


def test_partitioned_deadline_run_matches_flat():
    flat_env = Environment()
    flat_order = []
    _mixed_workload(flat_env, [flat_env] * 3, flat_order)
    flat_env.run(until=25)

    part_env = PartitionedEnvironment()
    parts = [part_env.partition(f"p{index}") for index in range(3)]
    part_order = []
    _mixed_workload(part_env, parts, part_order)
    part_env.run(until=25)

    assert part_order == flat_order
    assert part_env.now == flat_env.now == 25


def test_partitioned_run_until_event_matches_flat():
    def build(env, subs):
        order = []

        def chatty(sub, tag):
            for step in range(10):
                yield sub.timeout(tag + 2)
                order.append((tag, step, env.now))

        procs = [sub.process(chatty(sub, tag))
                 for tag, sub in enumerate(subs)]
        return order, procs[1]

    flat_env = Environment()
    flat_order, flat_sentinel = build(flat_env, [flat_env] * 3)
    flat_env.run(until=flat_sentinel)

    part_env = PartitionedEnvironment()
    parts = [part_env.partition(f"p{index}") for index in range(3)]
    part_order, part_sentinel = build(part_env, parts)
    part_env.run(until=part_sentinel)

    assert part_order == flat_order
    assert part_env.now == flat_env.now


def test_urgent_cross_partition_schedule_respects_global_order():
    """An URGENT event landing in a foreign wheel at the current timestamp
    must fire before any NORMAL event at that timestamp — exactly the flat
    tie-break — even if the scheduler was mid-drain elsewhere."""

    def build(env, sub_a, sub_b):
        order = []

        def waiter():
            try:
                yield sub_b.timeout(10_000)
            except Interrupt:
                order.append(("interrupted", env.now))

        target = sub_b.process(waiter())

        def striker():
            yield sub_a.timeout(50)
            order.append(("strike", env.now))
            target.interrupt()      # URGENT, scheduled at t=50 into B

        sub_a.process(striker())
        sub_b.schedule_callback(50, lambda: order.append(("cb_b", env.now)))
        return order

    flat_env = Environment()
    flat_order = build(flat_env, flat_env, flat_env)
    flat_env.run()

    part_env = PartitionedEnvironment()
    a, b = part_env.partition("a"), part_env.partition("b")
    part_order = build(part_env, a, b)
    part_env.run()

    assert part_order == flat_order
    assert ("interrupted", 50) in part_order


def test_urgent_interrupt_into_sole_nonempty_wheel_matches_flat():
    """Cross-partition schedules must break the drain even with no
    runner-up bound: here the target process waits on an *untriggered*
    event, so its wheel is empty, the draining wheel is the only non-empty
    one, and ``_drain_bound`` is None when the interrupt lands."""

    def build(env, sub_a, sub_b):
        order = []

        def sleeper():
            try:
                yield sub_b.event()    # untriggered: B's wheel stays empty
            except Interrupt:
                order.append(("interrupted", env.now))

        target = sub_b.process(sleeper())

        def striker():
            order.append(("strike", env.now))
            target.interrupt()         # URGENT at t=5, into an empty wheel

        sub_a.schedule_callback(5, striker)
        sub_a.schedule_callback(5, lambda: order.append(("cb_a", env.now)))
        return order

    flat_env = Environment()
    flat_order = build(flat_env, flat_env, flat_env)
    flat_env.run(until=100)

    part_env = PartitionedEnvironment()
    a, b = part_env.partition("a"), part_env.partition("b")
    part_order = build(part_env, a, b)
    part_env.run(until=100)

    assert part_order == flat_order
    assert part_order.index(("interrupted", 5)) < part_order.index(
        ("cb_a", 5))


def test_future_cross_schedule_during_unbounded_drain_matches_flat():
    """While the sole non-empty wheel drains (no runner-up bound), a
    NORMAL cross-partition schedule at a *future* time must still fire
    before later events on the draining wheel."""

    def build(env, sub_a, sub_b):
        order = []

        def seed():
            order.append(("seed", env.now))
            sub_b.schedule_callback(
                50, lambda: order.append(("b", env.now)))

        sub_a.schedule_callback(0, seed)
        sub_a.schedule_callback(100, lambda: order.append(("a", env.now)))
        return order

    flat_env = Environment()
    flat_order = build(flat_env, flat_env, flat_env)
    flat_env.run()

    part_env = PartitionedEnvironment()
    a, b = part_env.partition("a"), part_env.partition("b")
    part_order = build(part_env, a, b)
    part_env.run()

    assert part_order == flat_order == [("seed", 0), ("b", 50), ("a", 100)]


def test_timeout_pool_recycles_on_partitioned_drain_path():
    """The drain loop must drop its heap-tuple reference before the pool
    refcount check, or no Timeout is ever recycled under partitioning."""

    def ticker(sub):
        for _ in range(50):
            yield sub.timeout(3)

    flat_env = Environment()
    flat_env.process(ticker(flat_env))
    flat_env.run()

    part_env = PartitionedEnvironment()
    part = part_env.partition("p0")
    part.process(ticker(part))
    part_env.run()

    assert len(part._timeout_pool) == len(flat_env._timeout_pool) > 0


# -- partition registry and stats ----------------------------------------------


def test_partition_registry_is_idempotent():
    env = PartitionedEnvironment()
    first = env.partition("mn0")
    assert env.partition("mn0") is first
    assert [p.name for p in env.partitions] == ["mn0"]
    with pytest.raises(ValueError):
        env.partition("main")       # the control partition's name


def test_partitions_cannot_be_driven_directly():
    env = PartitionedEnvironment()
    part = env.partition("p0")
    part.timeout(5)
    with pytest.raises(SimulationError):
        part.step()
    with pytest.raises(SimulationError):
        part.run()


def test_partition_stats_track_dispatch_and_cross_traffic():
    env = PartitionedEnvironment()
    a, b = env.partition("a"), env.partition("b")

    def pinger():
        for _ in range(10):
            yield a.timeout(7)
            b.schedule_callback(3, lambda: None)   # cross-partition

    a.process(pinger())
    env.run()
    stats = env.partition_stats()
    # Initialize + 10 timeouts + the process-completion event itself.
    assert stats["partitions"]["a"]["events_dispatched"] == 12
    assert stats["partitions"]["b"]["events_dispatched"] == 10
    assert stats["partitions"]["b"]["cross_events_in"] == 10
    assert stats["drain_runs"] >= 1
    assert env.events_dispatched == 0               # control wheel unused


def test_shared_clock_and_quiesced():
    env = PartitionedEnvironment()
    a, b = env.partition("a"), env.partition("b")
    a.timeout(5)
    assert not a.quiesced() and b.quiesced()
    env.run()
    assert a.quiesced()
    assert a.now == b.now == env.now == 5


# -- lookahead edges and channels ----------------------------------------------


def test_declare_lookahead_keeps_minimum():
    env = PartitionedEnvironment()
    a, b = env.partition("a"), env.partition("b")
    env.declare_lookahead(a, b, 500)
    env.declare_lookahead(a, b, 200)
    env.declare_lookahead(a, b, 900)
    assert env.lookahead_edges() == {("a", "b"): 200}
    assert env.min_lookahead() == 200
    with pytest.raises(ValueError):
        env.declare_lookahead(a, b, 0)


def test_channel_send_schedules_on_destination_wheel():
    env = PartitionedEnvironment()
    a, b = env.partition("a"), env.partition("b")
    got = []
    channel = env.open_channel(a, b, lambda payload: got.append(
        (payload, env.now)), lookahead_ns=100)
    channel.send("hello")
    channel.send("late", delay=250)
    env.run()
    assert got == [("hello", 100), ("late", 250)]
    assert channel.messages == 2
    assert env.partition_stats()["channel_messages"] == 2


def test_channel_rejects_delay_below_lookahead():
    env = PartitionedEnvironment()
    a, b = env.partition("a"), env.partition("b")
    channel = env.open_channel(a, b, lambda payload: None, lookahead_ns=100)
    with pytest.raises(ValueError):
        channel.send("too-soon", delay=99)


def test_channel_endpoints_must_be_partitions_of_this_env():
    env = PartitionedEnvironment()
    other = PartitionedEnvironment()
    a = env.partition("a")
    foreign = other.partition("b")
    with pytest.raises(TypeError):
        env.open_channel(a, env, lambda payload: None, lookahead_ns=10)
    with pytest.raises(ValueError):
        env.open_channel(a, foreign, lambda payload: None, lookahead_ns=10)


# -- run(until=...) edge behavior mirrors the flat engine ----------------------


def test_partitioned_run_until_cancelled_event_raises():
    from repro.sim import Resource

    env = PartitionedEnvironment()
    part = env.partition("p0")
    resource = Resource(part, capacity=1)
    holder = resource.request()
    env.run()
    assert holder.processed
    loser = resource.request()
    loser.cancel()
    with pytest.raises(SimulationError, match="cancelled"):
        env.run(until=loser)


def test_partitioned_run_until_processed_event_is_immediate():
    env = PartitionedEnvironment()
    part = env.partition("p0")
    target = part.timeout(5, value="done")
    part.schedule_callback(1000, lambda: None)
    assert env.run(until=target) == "done"
    assert env.run(until=target) == "done"   # fast path, no drain
    assert part.pending() == 1
    assert env.now == 5


def test_partitioned_run_until_drained_queue_raises():
    env = PartitionedEnvironment()
    part = env.partition("p0")
    never = part.event()
    part.timeout(3)
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=never)

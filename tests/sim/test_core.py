"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(10)
        assert env.now == 10
        yield env.timeout(5)
        assert env.now == 15

    env.process(proc())
    env.run()
    assert env.now == 15


def test_zero_delay_timeout_fires_at_same_time():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [0]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    results = []

    def proc():
        value = yield env.timeout(3, value="payload")
        results.append(value)

    env.process(proc())
    env.run()
    assert results == ["payload"]


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(7)
        return 42

    def parent():
        result = yield env.process(child())
        assert result == 42
        return result * 2

    proc = env.process(parent())
    env.run()
    assert proc.value == 84


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    woke_at = []

    def waiter():
        value = yield gate
        woke_at.append((env.now, value))

    def opener():
        yield env.timeout(100)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert woke_at == [(100, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_to_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(10)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=35)
    assert env.now == 35
    assert ticks == [10, 20, 30]


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(4)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 4


def test_run_until_past_time_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_simultaneous_events_fire_in_insertion_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(5, value="x")
        t2 = env.timeout(9, value="y")
        results = yield env.all_of([t1, t2])
        done.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert done == [(9, ["x", "y"])]


def test_any_of_fires_on_first():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(5, value="fast")
        t2 = env.timeout(50, value="slow")
        results = yield env.any_of([t1, t2])
        done.append((env.now, list(results.values())))

    env.process(proc())
    env.run()
    assert done == [(5, ["fast"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0]


def test_interrupt_reaches_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(1000)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(victim):
        yield env.timeout(10)
        victim.interrupt("wake up")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert log == [("interrupted", 10, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    def late(victim):
        yield env.timeout(10)
        with pytest.raises(SimulationError):
            victim.interrupt()

    victim = env.process(quick())
    env.process(late(victim))
    env.run()


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(42)
    assert env.peek() == 42


def test_already_fired_event_resumes_immediately():
    env = Environment()
    fired = env.event()
    fired.succeed("early")
    seen = []

    def proc():
        # Let the event become processed first.
        yield env.timeout(5)
        value = yield fired
        seen.append((env.now, value))

    env.process(proc())
    env.run()
    assert seen == [(5, "early")]

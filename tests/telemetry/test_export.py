"""Tests for the Chrome trace exporter and the text dashboard."""

import json

from repro.sim import Environment
from repro.telemetry.export import chrome_trace, render_dashboard, write_chrome_trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


def make_traced_state():
    env = Environment()
    registry = MetricsRegistry()
    tracer = Tracer(env)
    tracer.complete("fastpath:read", "pipeline", "fastpath", 100, 400,
                    args={"status": "ok"})
    tracer.complete("mn:read", "cboard", "mn0", 50, 500)
    open_span = tracer.begin("crashed", "fault", "mn0", at_ns=600)
    assert open_span is not None
    tracer.instant("drop:loss", "net", "cn0->tor", at_ns=250,
                   args={"dst": "mn0"})
    registry.series.append((1000, {"cboard.mn0.requests_served": 3}))
    registry.series.append((2000, {"cboard.mn0.requests_served": 7}))
    return env, registry, tracer


def test_chrome_trace_structure():
    _, registry, tracer = make_traced_state()
    document = chrome_trace(tracer, registry)
    assert document["displayTimeUnit"] == "ns"
    events = document["traceEvents"]
    by_phase = {}
    for event in events:
        assert "name" in event and "ph" in event
        by_phase.setdefault(event["ph"], []).append(event)

    complete = by_phase["X"]
    assert len(complete) == 2
    read = next(e for e in complete if e["name"] == "fastpath:read")
    assert read["ts"] == 0.1 and read["dur"] == 0.3    # ns -> us
    assert read["cat"] == "pipeline"
    assert read["args"]["status"] == "ok"

    begins = by_phase["B"]
    assert len(begins) == 1 and begins[0]["name"] == "crashed"
    assert "dur" not in begins[0]

    instants = by_phase["i"]
    assert len(instants) == 1
    assert instants[0]["s"] == "t"

    counters = by_phase["C"]
    assert len(counters) == 2
    assert counters[0]["args"]["value"] == 3
    assert counters[1]["ts"] == 2.0


def test_chrome_trace_track_and_category_rows():
    _, registry, tracer = make_traced_state()
    events = chrome_trace(tracer, registry)["traceEvents"]
    process_names = {e["args"]["name"]: e["pid"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    # One synthetic process per track, plus the metrics pseudo-process.
    assert set(process_names) == {"fastpath", "mn0", "cn0->tor", "metrics"}
    assert process_names["metrics"] == 1
    assert len(set(process_names.values())) == len(process_names)
    # Within a track, categories map to distinct thread rows.
    thread_names = [(e["pid"], e["tid"], e["args"]["name"]) for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"]
    mn0_pid = process_names["mn0"]
    mn0_threads = {name for pid, _, name in thread_names if pid == mn0_pid}
    assert mn0_threads == {"cboard", "fault"}
    # Every span/instant points at a registered pid.
    for event in events:
        if event["ph"] in ("X", "B", "i"):
            assert event["pid"] in process_names.values()


def test_chrome_trace_empty_inputs():
    assert chrome_trace(None, None)["traceEvents"] == []
    registry = MetricsRegistry()
    assert chrome_trace(None, registry)["traceEvents"] == []


def test_write_chrome_trace_round_trips(tmp_path):
    _, registry, tracer = make_traced_state()
    path = tmp_path / "trace.json"
    document = write_chrome_trace(str(path), tracer, registry)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(document))
    assert loaded["traceEvents"]


def test_dashboard_sections():
    env = Environment()
    registry = MetricsRegistry()
    registry.counter("cboard.mn0.requests_served").inc(5)
    registry.gauge("cboard.mn0.utilization", fn=lambda: 0.123456)
    hist = registry.histogram("transport.cn0.rtt", unit="ns")
    for value in (100, 200, 300, 400):
        hist.observe(value)
    registry.series.append((1000, {"cboard.mn0.requests_served": 5}))
    registry.sample_interval_ns = 1000
    tracer = Tracer(env)
    tracer.complete("request:read", "transport", "cn0", 0, 2000)
    tracer.begin("crashed", "fault", "mn0")

    text = render_dashboard(registry, tracer, title="run")
    assert "run: metrics" in text
    assert "cboard.mn0.requests_served" in text
    assert "0.12" in text                      # gauge value rendered
    assert "run: histograms" in text
    assert "transport.cn0.rtt" in text
    assert "run: timeseries" in text
    assert "run: spans" in text
    assert "request:read" in text
    assert "crashed" in text


def test_dashboard_prefix_filter_and_empty():
    registry = MetricsRegistry()
    registry.counter("cboard.mn0.a").inc()
    registry.counter("transport.cn0.b").inc()
    text = render_dashboard(registry, prefix="cboard")
    assert "cboard.mn0.a" in text
    assert "transport.cn0.b" not in text
    assert render_dashboard() == "== telemetry: empty =="


def test_dashboard_reports_dropped_records():
    env = Environment()
    tracer = Tracer(env, max_records=1)
    tracer.complete("a", "t", "x", 0, 1)
    tracer.complete("b", "t", "x", 1, 2)     # dropped
    text = render_dashboard(tracer=tracer)
    assert "dropped 1" in text

"""Tests for typed instruments and the metrics registry."""

import pytest

from repro.cluster import ClioCluster
from repro.sim import Environment
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)

MB = 1 << 20


def test_counter_owned_increments():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_function_backed_counter_is_a_view():
    registry = MetricsRegistry()
    state = {"hits": 0}
    counter = registry.counter("hits", fn=lambda: state["hits"])
    assert counter.value == 0
    state["hits"] = 42
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc()          # views are read-only


def test_gauge_set_and_view():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(7)
    assert gauge.value == 7
    view = registry.gauge("alive", fn=lambda: True)
    assert view.value is True
    with pytest.raises(ValueError):
        view.set(False)


def test_histogram_summary_and_quantiles():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", unit="ns")
    for value in [10, 20, 30, 40]:
        hist.observe(value)
    assert hist.count == 4
    assert hist.mean == 25
    assert hist.min == 10 and hist.max == 40
    # Shared interpolated quantile: even-length median is the midpoint.
    assert hist.quantile(0.5) == 25.0
    summary = hist.value
    assert summary["count"] == 4 and summary["sum"] == 100


def test_histogram_sample_cap_keeps_exact_summary():
    from repro.telemetry import metrics as m

    hist = Histogram("h")
    old_cap = m._HISTOGRAM_SAMPLE_CAP
    m._HISTOGRAM_SAMPLE_CAP = 8
    try:
        for value in range(20):
            hist.observe(value)
    finally:
        m._HISTOGRAM_SAMPLE_CAP = old_cap
    assert hist.count == 20
    assert hist.max == 19          # summary stays exact past the cap
    assert hist.truncated == 12
    assert len(hist.samples) == 8


def test_duplicate_names_rejected():
    registry = MetricsRegistry()
    registry.counter("a.b")
    with pytest.raises(ValueError):
        registry.gauge("a.b")


def test_hierarchical_names_and_prefix_queries():
    registry = MetricsRegistry()
    scope = registry.scope("cboard.mn0")
    scope.counter("tlb.hits")
    scope.scope("tlb").counter("misses")
    registry.counter("transport.cn0.requests")
    assert "cboard.mn0.tlb.hits" in registry
    assert registry.names("cboard.mn0") == [
        "cboard.mn0.tlb.hits", "cboard.mn0.tlb.misses"]
    assert set(registry.snapshot("cboard.mn0")) == {
        "cboard.mn0.tlb.hits", "cboard.mn0.tlb.misses"}
    assert scope.snapshot() == {"tlb.hits": 0, "tlb.misses": 0}


def test_stats_view_snapshot_preserves_order_and_values():
    registry = MetricsRegistry()
    state = {"served": 3}
    view = StatsView({
        "zeta": registry.counter("zeta", fn=lambda: state["served"]),
        "alpha": registry.gauge("alpha", fn=lambda: 1.5),
    })
    snap = view.snapshot()
    assert list(snap) == ["zeta", "alpha"]   # insertion order, not sorted
    assert snap == {"zeta": 3, "alpha": 1.5}


def test_cluster_registry_covers_all_tiers():
    cluster = ClioCluster(num_cns=2, mn_capacity=256 * MB)
    names = cluster.metrics.names()
    for expected in (
        "cboard.mn0.requests_served",
        "cboard.mn0.tlb.hits",
        "transport.cn0.requests_issued",
        "transport.cn1.requests_issued",
        "link.cn0->tor.packets_sent",
        "link.tor->mn0.queue_depth",
        "switch.tor.packets_forwarded",
    ):
        assert expected in names, expected


def test_component_stats_unchanged_by_registry():
    """stats() keys/values must match the historical dicts exactly."""
    cluster = ClioCluster(mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        va = yield from thread.ralloc(4 * MB)
        yield from thread.rwrite(va, b"x" * 64)
        yield from thread.rread(va, 64)

    cluster.run(until=cluster.env.process(app()))
    board_stats = cluster.mn.stats()
    assert list(board_stats) == [
        "requests_served", "bytes_served", "tlb_hit_rate", "page_faults",
        "nacks_sent", "retry_dedups", "memory_utilization", "pt_entries",
        "alive", "crashes", "restarts", "packets_dropped_dead",
        "responses_discarded"]
    assert board_stats["requests_served"] == 3
    assert board_stats["alive"] is True
    transport_stats = cluster.cn(0).transport.stats()
    assert list(transport_stats) == [
        "requests_issued", "requests_completed", "requests_failed",
        "total_retries", "stale_responses", "batches_issued",
        "batch_subops_issued", "batch_subops_completed"]
    assert transport_stats["requests_issued"] == 3
    assert transport_stats["requests_completed"] == 3
    link_stats = cluster.topology.uplink("cn0").stats()
    assert list(link_stats) == [
        "packets_sent", "packets_dropped", "packets_dropped_down",
        "packets_corrupted", "bytes_sent"]
    assert link_stats["packets_sent"] == 3
    switch_stats = cluster.topology.switch.stats()
    assert switch_stats["packets_forwarded"] > 0
    assert switch_stats["unroutable"] == 0


def test_standalone_components_get_private_registries():
    """Direct construction (no registry) must not collide on names."""
    from repro.net.link import Link

    env = Environment()
    a = Link(env, "x", rate_bps=10**9, propagation_ns=10,
             deliver=lambda p: None)
    b = Link(env, "x", rate_bps=10**9, propagation_ns=10,
             deliver=lambda p: None)
    assert a.metrics.registry is not b.metrics.registry


def test_sampling_collects_timeseries():
    cluster = ClioCluster(mn_capacity=256 * MB)
    cluster.metrics.start_sampling(cluster.env, interval_ns=10_000)
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        va = yield from thread.ralloc(4 * MB)
        for _ in range(20):
            yield from thread.rwrite(va, b"y" * 64)

    cluster.run(until=cluster.env.process(app()))
    cluster.metrics.stop_sampling()
    series = cluster.metrics.series
    assert len(series) >= 2
    times = [t for t, _ in series]
    assert times == sorted(times)
    assert all(t % 10_000 == 0 for t in times)
    first, last = series[0][1], series[-1][1]
    key = "transport.cn0.requests_issued"
    assert last[key] >= first[key]
    # Booleans sample as ints, non-numeric values are skipped.
    assert last["cboard.mn0.alive"] == 1


def test_sampling_rejects_double_start_and_bad_interval():
    registry = MetricsRegistry()
    env = Environment()
    with pytest.raises(ValueError):
        registry.start_sampling(env, 0)
    registry.start_sampling(env, 100)
    with pytest.raises(ValueError):
        registry.start_sampling(env, 100)


def test_instrument_kinds():
    assert Counter("c").kind == "counter"
    assert Gauge("g").kind == "gauge"
    assert Histogram("h").kind == "histogram"
    with pytest.raises(ValueError):
        Counter("")

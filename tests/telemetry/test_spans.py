"""Tests for span tracing: the Tracer and the built-in hook sites."""

from dataclasses import replace

import pytest

from repro.cluster import ClioCluster
from repro.params import ClioParams
from repro.sim import Environment
from repro.telemetry.spans import Tracer

MB = 1 << 20


def run_rw_workload(cluster, ops=5):
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        va = yield from thread.ralloc(4 * MB)
        for index in range(ops):
            yield from thread.rwrite(va, bytes([index]) * 32)
            yield from thread.rread(va, 32)

    cluster.run(until=cluster.env.process(app()))


# -- Tracer unit behaviour --------------------------------------------------------


def test_begin_end_records_interval():
    env = Environment()
    tracer = Tracer(env)
    span = tracer.begin("work", "test", "t0", args={"k": 1})
    env.run(until=100)
    tracer.end(span, ok=True)
    assert span.start_ns == 0 and span.end_ns == 100
    assert span.duration_ns == 100
    assert not span.open
    assert span.args == {"k": 1, "ok": True}


def test_complete_and_instant():
    env = Environment()
    tracer = Tracer(env)
    tracer.complete("c", "test", "t0", start_ns=5, end_ns=9)
    tracer.instant("i", "test", "t1")
    assert tracer.find_spans("c")[0].duration_ns == 4
    assert tracer.find_instants("i")[0].at_ns == 0
    assert tracer.tracks() == ["t0", "t1"]


def test_capacity_cap_drops_not_grows():
    env = Environment()
    tracer = Tracer(env, max_records=2)
    assert tracer.begin("a", "t", "x") is not None
    assert tracer.instant("b", "t", "x") is not None
    assert tracer.begin("c", "t", "x") is None      # over cap
    assert tracer.instant("d", "t", "x") is None
    tracer.end(None)                                # None handle tolerated
    assert len(tracer) == 2
    assert tracer.dropped == 2
    with pytest.raises(ValueError):
        Tracer(env, max_records=0)


def test_summary_aggregates_by_name():
    env = Environment()
    tracer = Tracer(env)
    tracer.complete("op", "t", "x", 0, 10)
    tracer.complete("op", "t", "x", 10, 30)
    tracer.begin("op", "t", "x")
    summary = tracer.summary()
    assert summary["op"]["count"] == 3
    assert summary["op"]["open"] == 1
    assert summary["op"]["total_ns"] == 30
    assert summary["op"]["mean_ns"] == 15


# -- cluster wiring ---------------------------------------------------------------


def test_enable_tracing_is_idempotent_and_detachable():
    cluster = ClioCluster(mn_capacity=256 * MB)
    assert cluster.tracer is None
    assert cluster.cn(0).transport.tracer is None
    tracer = cluster.enable_tracing()
    assert cluster.enable_tracing() is tracer
    assert cluster.cn(0).transport.tracer is tracer
    assert cluster.mn.tracer is tracer
    assert cluster.mn.fast_path.tracer is tracer
    assert cluster.mn.slow_path.tracer is tracer
    assert cluster.topology.uplink("cn0").tracer is tracer
    cluster.disable_tracing()
    assert cluster.cn(0).transport.tracer is None
    assert cluster.mn.fast_path.tracer is None


def test_request_lifecycle_spans():
    cluster = ClioCluster(mn_capacity=256 * MB)
    tracer = cluster.enable_tracing()
    run_rw_workload(cluster, ops=3)

    requests = tracer.find_spans("request:", category="transport")
    assert len(requests) == 7            # alloc + 3 writes + 3 reads
    for span in requests:
        assert span.track == "cn0"
        assert not span.open
        assert span.args["outcome"] == "ok"
        assert span.args["retries"] == 0
        assert span.duration_ns > 0

    attempts = tracer.find_spans("attempt:", category="transport")
    assert len(attempts) == 7            # no loss => one attempt each
    for span in attempts:
        assert span.args["outcome"] == "ok"
        assert span.args["retry_of"] is None

    mn_spans = tracer.find_spans("mn:", category="cboard")
    assert len(mn_spans) == 7
    for span in mn_spans:
        assert span.track == "mn0"
        assert span.args["discarded"] is False

    fast = tracer.find_spans("fastpath:", category="pipeline")
    assert len(fast) == 6                # 3 writes + 3 reads
    for span in fast:
        assert span.args["status"] == "ok"
        parts = (span.args["ingest_ns"] + span.args["pipeline_ns"]
                 + span.args["tlb_miss_ns"] + span.args["fault_ns"]
                 + span.args["dram_ns"])
        assert span.duration_ns == parts

    assert len(tracer.find_spans("slowpath:alloc")) == 1
    assert len(tracer.find_spans("page_fault")) == 1
    responses = tracer.find_instants("mn_response")
    assert len(responses) == 7


def test_retry_spans_under_loss():
    base = ClioParams.prototype()
    params = replace(base, network=replace(base.network, loss_rate=0.25),
                     clib=replace(base.clib, max_retries=8))
    cluster = ClioCluster(params=params, seed=9, mn_capacity=256 * MB)
    tracer = cluster.enable_tracing()
    run_rw_workload(cluster, ops=8)
    retried = [span for span in tracer.find_spans("attempt:")
               if span.args.get("retry_of") is not None]
    assert retried
    timeouts = [span for span in tracer.find_spans("attempt:")
                if span.args.get("outcome") == "timeout"]
    assert timeouts
    drops = tracer.find_instants("drop:loss", category="net")
    assert drops
    completed = [span for span in tracer.find_spans("request:")
                 if span.args.get("outcome") == "ok"
                 and span.args.get("retries", 0) > 0]
    assert completed


def test_fault_spans_cover_crash_and_stall():
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule

    cluster = ClioCluster(seed=5, mn_capacity=256 * MB)
    tracer = cluster.enable_tracing()
    schedule = (FaultSchedule()
                .crash_board(50_000, "mn0", restart_after_ns=70_000)
                .stall_slowpath(150_000, "mn0", duration_ns=30_000))
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    cluster.run(until=300_000)

    crash = tracer.find_spans("crashed", category="fault")
    assert len(crash) == 1
    assert crash[0].start_ns == 50_000 and crash[0].end_ns == 120_000
    stall = tracer.find_spans("arm_stall", category="fault")
    assert len(stall) == 1
    assert stall[0].duration_ns == 30_000
    applications = tracer.find_instants("fault:", category="fault")
    assert len(applications) == len(injector.applied) == 4
    for instant, applied in zip(applications, injector.applied):
        assert instant.at_ns == applied.at_ns
        assert instant.args["applied"] is applied.applied


def test_health_monitor_emits_belief_instants():
    cluster = ClioCluster(seed=5, mn_capacity=256 * MB)
    tracer = cluster.enable_tracing()
    cluster.start_health_monitor(interval_ns=10_000, miss_threshold=2)
    cluster.mn.crash()
    cluster.run(until=100_000)
    cluster.mn.restart()
    cluster.run(until=200_000)
    downs = tracer.find_instants("board_down", category="health")
    ups = tracer.find_instants("board_up", category="health")
    assert len(downs) == 1 and downs[0].track == "mn0"
    assert len(ups) == 1
    assert downs[0].at_ns < ups[0].at_ns


def test_traced_run_timestamps_identical_to_untraced():
    """Tracing must not shift a single simulated timestamp."""
    def run(trace):
        cluster = ClioCluster(seed=42, mn_capacity=256 * MB)
        if trace:
            cluster.enable_tracing()
        run_rw_workload(cluster, ops=10)
        return (cluster.env.now, cluster.mn.requests_served,
                cluster.cn(0).transport.requests_completed)

    assert run(trace=False) == run(trace=True)

"""The telemetry layer's zero-cost and passivity guarantees.

Two properties, in increasing strength:

1. An *uninstrumented* run on the telemetry-enabled tree reproduces the
   pre-telemetry golden chaos fingerprint bit-for-bit — registering
   instruments must not add events or RNG draws.
2. A *tracing-enabled* run also reproduces it — recording spans is
   passive and must not shift a single simulated timestamp.

(Opt-in timeseries sampling adds read-only callbacks, so it legitimately
changes the event count but must not change workload timestamps — also
pinned here.)
"""

from repro.cluster import ClioCluster
from repro.core.addr import Permission
from repro.net.packet import PacketType
from tests.faults.test_chaos import GOLDEN_NO_FAULT

MB = 1 << 20


def fingerprint(trace=False, sample_interval_ns=0):
    cluster = ClioCluster(seed=1234, num_cns=2, mn_capacity=256 * MB)
    if trace:
        cluster.enable_tracing()
    if sample_interval_ns:
        cluster.metrics.start_sampling(cluster.env, sample_interval_ns)
    done = []

    def worker(cn_index, pid):
        transport = cluster.cn(cn_index).transport
        outcome = yield from transport.request(
            "mn0", PacketType.ALLOC, pid=pid,
            payload=(8 * MB, Permission.READ_WRITE, None))
        va = outcome.body.value.va
        for index in range(120):
            offset = (index * 4096) % (4 * MB)
            yield from transport.request(
                "mn0", PacketType.WRITE, pid=pid, va=va + offset, size=64,
                data=bytes([index % 256]) * 64)
            yield from transport.request(
                "mn0", PacketType.READ, pid=pid, va=va + offset, size=64)
        done.append(cluster.env.now)

    procs = [cluster.env.process(worker(0, 9001)),
             cluster.env.process(worker(1, 9002))]
    cluster.run(until=cluster.env.all_of(procs))
    result = (cluster.env.now, tuple(sorted(done)),
              cluster.mn.requests_served,
              tuple(cn.transport.requests_completed for cn in cluster.cns),
              tuple(cn.transport.total_retries for cn in cluster.cns))
    return cluster, result


def test_uninstrumented_run_matches_pretelemetry_golden():
    _, result = fingerprint(trace=False)
    assert result == GOLDEN_NO_FAULT


def test_traced_run_matches_pretelemetry_golden():
    cluster, result = fingerprint(trace=True)
    assert result == GOLDEN_NO_FAULT
    # And it actually recorded the workload while matching.
    assert len(cluster.tracer.spans) > 480 * 2
    assert cluster.tracer.dropped == 0


def test_sampled_run_keeps_workload_timestamps():
    cluster, result = fingerprint(sample_interval_ns=10_000)
    assert result == GOLDEN_NO_FAULT
    assert len(cluster.metrics.series) > 10


def test_stats_snapshot_is_pure():
    """Taking snapshots mid-run must not perturb the simulation."""
    cluster = ClioCluster(seed=1234, num_cns=2, mn_capacity=256 * MB)
    snapshots = []

    def snoop():
        while True:
            yield cluster.env.timeout(50_000)
            snapshots.append(cluster.metrics.snapshot())
            cluster.mn.stats()
            cluster.report()

    cluster.env.process(snoop())
    done = []

    def worker(cn_index, pid):
        transport = cluster.cn(cn_index).transport
        outcome = yield from transport.request(
            "mn0", PacketType.ALLOC, pid=pid,
            payload=(8 * MB, Permission.READ_WRITE, None))
        va = outcome.body.value.va
        for index in range(120):
            offset = (index * 4096) % (4 * MB)
            yield from transport.request(
                "mn0", PacketType.WRITE, pid=pid, va=va + offset, size=64,
                data=bytes([index % 256]) * 64)
            yield from transport.request(
                "mn0", PacketType.READ, pid=pid, va=va + offset, size=64)
        done.append(cluster.env.now)

    procs = [cluster.env.process(worker(0, 9001)),
             cluster.env.process(worker(1, 9002))]
    cluster.run(until=cluster.env.all_of(procs))
    result = (cluster.env.now, tuple(sorted(done)),
              cluster.mn.requests_served,
              tuple(cn.transport.requests_completed for cn in cluster.cns),
              tuple(cn.transport.total_retries for cn in cluster.cns))
    assert result == GOLDEN_NO_FAULT
    assert snapshots
    served = [s["cboard.mn0.requests_served"] for s in snapshots]
    assert served == sorted(served)

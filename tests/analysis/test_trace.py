"""Tests for request lifecycle tracing."""

import pytest

from dataclasses import replace

from repro.analysis.trace import TraceCollector, TraceEvent
from repro.cluster import ClioCluster
from repro.params import ClioParams

MB = 1 << 20


def run_simple_workload(cluster, ops=5):
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        va = yield from thread.ralloc(4 * MB)
        for index in range(ops):
            yield from thread.rwrite(va, bytes([index]) * 32)
            yield from thread.rread(va, 32)

    cluster.run(until=cluster.env.process(app()))


def test_traces_full_request_lifecycle():
    cluster = ClioCluster(mn_capacity=256 * MB)
    collector = TraceCollector()
    collector.attach(cluster)
    run_simple_workload(cluster, ops=3)

    completed = collector.completed()
    assert len(completed) >= 7      # alloc + 3 writes + 3 reads
    for timeline in completed:
        events = [record.event for record in timeline.records]
        assert events[0] is TraceEvent.ISSUED
        assert TraceEvent.SENT in events
        assert TraceEvent.MN_RESPONSE in events
        assert events[-1] is TraceEvent.COMPLETED
        # Timestamps are monotone along the timeline.
        times = [record.at_ns for record in timeline.records]
        assert times == sorted(times)


def test_latency_and_turnaround_derivations():
    cluster = ClioCluster(mn_capacity=256 * MB)
    collector = TraceCollector()
    collector.attach(cluster)
    run_simple_workload(cluster, ops=2)
    for timeline in collector.completed():
        assert timeline.latency_ns is not None
        assert timeline.latency_ns > 0
        assert timeline.mn_turnaround_ns is not None
        assert 0 < timeline.mn_turnaround_ns < timeline.latency_ns


def test_summary_counts():
    cluster = ClioCluster(mn_capacity=256 * MB)
    collector = TraceCollector()
    collector.attach(cluster)
    run_simple_workload(cluster, ops=2)
    summary = collector.summary()
    assert summary["completed"] == summary["traced_requests"]
    assert summary["dropped"] == 0
    assert summary["mean_latency_ns"] > 0


def test_retry_attempts_visible_in_trace():
    base = ClioParams.prototype()
    params = replace(base, network=replace(base.network, loss_rate=0.25),
                     clib=replace(base.clib, max_retries=8))
    cluster = ClioCluster(params=params, seed=9, mn_capacity=256 * MB)
    collector = TraceCollector()
    collector.attach(cluster)
    run_simple_workload(cluster, ops=8)
    retried = [timeline for timeline in collector.timelines()
               if any("retry of" in record.detail
                      for record in timeline.records)]
    assert retried     # with 25% loss some attempt carried retry_of


def test_attach_never_patches_private_methods():
    """The span-backed collector is a pure view: no instance overrides."""
    cluster = ClioCluster(mn_capacity=256 * MB)
    collector = TraceCollector()
    transport = cluster.cn(0).transport
    board = cluster.mn
    collector.attach(cluster)
    # _emit/_send stay the class methods — nothing is monkey-patched.
    assert "_emit" not in transport.__dict__
    assert "receive" not in transport.__dict__
    assert "_send" not in board.__dict__
    assert transport._emit.__func__ is type(transport)._emit
    assert board._send.__func__ is type(board)._send
    assert cluster.tracer is not None
    collector.detach()
    assert cluster.tracer is None
    assert transport.tracer is None
    assert board.tracer is None


def test_detach_stops_collection():
    cluster = ClioCluster(mn_capacity=256 * MB)
    collector = TraceCollector()
    collector.attach(cluster)
    collector.detach()
    run_simple_workload(cluster, ops=1)
    assert collector.summary()["traced_requests"] == 0


def test_detach_freezes_collected_window():
    """Records from the attached window stay queryable after detach,
    and a later re-enabled tracer does not leak into the old window."""
    cluster = ClioCluster(mn_capacity=256 * MB)
    collector = TraceCollector()
    collector.attach(cluster)
    run_simple_workload(cluster, ops=1)
    collector.detach()
    traced = collector.summary()["traced_requests"]
    assert traced >= 3      # alloc + write + read
    cluster.enable_tracing()
    run_simple_workload(cluster, ops=2)
    assert collector.summary()["traced_requests"] == traced


def test_bounded_memory_drops_over_capacity():
    cluster = ClioCluster(mn_capacity=256 * MB)
    collector = TraceCollector(max_requests=3)
    collector.attach(cluster)
    run_simple_workload(cluster, ops=5)
    assert len(collector.timelines()) == 3
    assert collector.dropped > 0


def test_invalid_construction():
    with pytest.raises(ValueError):
        TraceCollector(max_requests=0)

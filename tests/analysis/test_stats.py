"""Tests for statistics helpers and report rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import render_series, render_table
from repro.analysis.stats import (
    LatencyRecorder,
    cdf_points,
    percentile,
    quantile,
    rate_gbps,
)


def test_percentile_basics():
    samples = list(range(1, 101))
    assert percentile(samples, 0.0) == 1
    assert percentile(samples, 1.0) == 100
    assert percentile(samples, 0.5) == 50 or percentile(samples, 0.5) == 51


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1], 1.5)


def test_percentile_unsorted_input():
    assert percentile([5, 1, 9, 3], 1.0) == 9


def test_cdf_points_monotonic():
    points = cdf_points([3, 1, 4, 1, 5, 9, 2, 6], points=10)
    values = [value for value, _ in points]
    fractions = [fraction for _, fraction in points]
    assert values == sorted(values)
    assert fractions[0] == 0.0 and fractions[-1] == 1.0


def test_cdf_points_rejects_nonpositive_points():
    with pytest.raises(ValueError):
        cdf_points([1, 2, 3], points=0)
    with pytest.raises(ValueError):
        cdf_points([1, 2, 3], points=-5)


def test_cdf_points_single_point_is_full_range():
    assert cdf_points([1, 2, 3], points=1) == [(1, 0.0), (3, 1.0)]


def test_cdf_points_uses_interpolated_quantile():
    # Even-length list: the median CDF point is the average of the two
    # middle values — interpolation, not nearest rank.
    samples = [10, 20, 30, 40]
    points = dict((fraction, value)
                  for value, fraction in cdf_points(samples, points=2))
    assert points[0.5] == quantile(samples, 0.5) == 25.0
    assert points[0.0] == 10 and points[1.0] == 40


def test_rate_gbps():
    # 1250 bytes in 1000 ns = 10 Gbps.
    assert rate_gbps(1250, 1000) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        rate_gbps(100, 0)


def test_latency_recorder_summary():
    recorder = LatencyRecorder("reads")
    recorder.extend([1000, 2000, 3000, 100000])
    summary = recorder.summary()
    assert summary["count"] == 4
    assert summary["max_us"] == 100.0
    assert summary["median_us"] in (2.0, 3.0)
    assert len(recorder) == 4


def test_latency_recorder_empty_raises():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        _ = recorder.median_ns


def test_render_table_contains_cells():
    text = render_table("Title", ["a", "b"], [[1, 2.5], ["x", "y"]])
    assert "Title" in text
    assert "2.500" in text
    assert "x" in text


def test_render_series_aligns_columns():
    text = render_series("S", "size", [16, 64],
                         {"clio": [1.0, 2.0], "rdma": [3.0]})
    lines = text.splitlines()
    assert "size" in lines[1] and "clio" in lines[1] and "rdma" in lines[1]
    assert "3.000" in text
    # Missing trailing value renders as blank, not a crash.
    assert len(lines) == 5   # title, header, rule, two data rows


@given(st.lists(st.integers(min_value=0, max_value=10 ** 9), min_size=1),
       st.floats(min_value=0, max_value=1, allow_nan=False))
@settings(max_examples=100)
def test_percentile_always_in_sample_range(samples, fraction):
    value = percentile(samples, fraction)
    assert min(samples) <= value <= max(samples)
    assert value in samples

"""The partitioned engine against the committed golden fingerprints.

The determinism contract in one sentence: building the cluster on the
partitioned engine and running it with the single-process scheduler is
*bit-identical* to the flat engine — so the golden fingerprints pinned
before the PDES refactor must keep holding verbatim, with faults and
without.
"""

from repro.faults.scenarios import run_chaos
from tests.faults.test_chaos import GOLDEN_NO_FAULT, no_fault_fingerprint


def test_partitioned_no_fault_run_matches_golden_fingerprint():
    assert no_fault_fingerprint(partitioned=True) == GOLDEN_NO_FAULT


def test_partitioned_chaos_fingerprint_matches_flat():
    """Crash/restart, retry storms, epoch fencing — all of it must land
    on the same event sequence under per-board wheels."""
    flat = run_chaos(scenario="board-crash", ops_per_worker=250)
    part = run_chaos(scenario="board-crash", ops_per_worker=250,
                     partitioned=True)
    assert part.fingerprint() == flat.fingerprint()


def test_partitioned_cluster_reports_engine_shape():
    """The partitioned chaos run actually ran partitioned: per-board and
    per-CN wheels did the dispatching and the switch tier has lookahead
    edges to every node."""
    from repro.cluster import ClioCluster
    from repro.faults.scenarios import _chaos_params

    MB = 1 << 20
    cluster = ClioCluster(params=_chaos_params(), seed=1, num_cns=2,
                          mn_capacity=256 * MB, partitioned=True)
    report = cluster.partition_report()
    assert set(report["partitions"]) == {"switch", "mn0", "cn0", "cn1"}
    edges = report["lookahead_edges"]
    for node in ("mn0", "cn0", "cn1"):
        assert f"{node}->switch" in edges
        assert f"switch->{node}" in edges
    # Per-partition engine counters ride the shared metrics registry.
    snapshot = cluster.metrics.snapshot()
    assert "engine.partition.mn0.events" in snapshot

"""End-to-end memory oversubscription scenarios (paper R6, section 4.3).

An MN may allocate more *virtual* memory than its physical capacity;
physical pages are bound on first touch and recycled on rfree.  These
tests drive that lifecycle through the full network stack.
"""

import pytest

from repro.clib.client import RemoteAccessError
from repro.cluster import ClioCluster
from repro.core.pipeline import Status

MB = 1 << 20
PAGE = 4 * MB


def make_cluster(capacity=64 * MB):
    return ClioCluster(mn_capacity=capacity)


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_virtual_allocation_beyond_physical_capacity():
    """ralloc can exceed physical memory; only touched pages bind frames."""
    cluster = make_cluster(capacity=128 * MB)   # 32 physical pages
    thread = cluster.cn(0).process("mn0").thread()
    board = cluster.mn

    def app():
        # 44 pages of virtual space on a 32-page board (PT has 2x slots).
        va = yield from thread.ralloc(44 * PAGE)
        # Touch only 8: most physical frames stay free.
        for index in range(8):
            yield from thread.rwrite(va + index * PAGE, b"t" * 16)

    run_app(cluster, app())
    assert board.page_table.entry_count == 44
    present = sum(1 for entry in board.page_table._index.values()
                  if entry.present)
    assert present == 8


def test_touching_beyond_physical_memory_reports_oom():
    cluster = make_cluster(capacity=32 * MB)   # 8 physical pages
    thread = cluster.cn(0).process("mn0").thread()
    failures = []

    def app():
        va = yield from thread.ralloc(14 * PAGE)
        for index in range(14):
            try:
                yield from thread.rwrite(va + index * PAGE, b"x" * 16)
            except RemoteAccessError as exc:
                failures.append((index, exc.status))

    run_app(cluster, app())
    assert failures
    assert all(status is Status.OOM for _, status in failures)
    # The first 8 touches (all physical pages) succeeded.
    assert failures[0][0] == 8


def test_rfree_makes_memory_available_again():
    cluster = make_cluster(capacity=32 * MB)   # 8 physical pages
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        first = yield from thread.ralloc(8 * PAGE)
        for index in range(8):
            yield from thread.rwrite(first + index * PAGE, b"1" * 16)
        yield from thread.rfree(first)
        # All frames recycled: a new allocation can use them all.
        second = yield from thread.ralloc(8 * PAGE)
        for index in range(8):
            yield from thread.rwrite(second + index * PAGE, b"2" * 16)
        result["data"] = yield from thread.rread(second, 16)

    run_app(cluster, app())
    assert result["data"] == b"2" * 16


def test_recycled_pages_are_zeroed_across_processes():
    """R5: process B must never see process A's freed data."""
    cluster = make_cluster(capacity=32 * MB)
    thread_a = cluster.cn(0).process("mn0").thread()
    thread_b = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va_a = yield from thread_a.ralloc(8 * PAGE)
        for index in range(8):
            yield from thread_a.rwrite(va_a + index * PAGE, b"SECRET!!")
        yield from thread_a.rfree(va_a)
        va_b = yield from thread_b.ralloc(8 * PAGE)
        leaked = []
        for index in range(8):
            data = yield from thread_b.rread(va_b + index * PAGE, 8)
            if data != bytes(8):
                leaked.append(index)
        result["leaked"] = leaked

    run_app(cluster, app())
    assert result["leaked"] == []


def test_many_processes_share_one_board():
    """R2: lots of concurrent processes, each isolated, on one MN."""
    cluster = ClioCluster(num_cns=4, mn_capacity=256 * MB)
    threads = [cluster.cn(index % 4).process("mn0").thread()
               for index in range(24)]
    result = {"values": []}

    def one(thread, index):
        va = yield from thread.ralloc(64)
        payload = b"proc%02d!" % index
        yield from thread.rwrite(va, payload)
        data = yield from thread.rread(va, len(payload))
        result["values"].append((index, data))

    procs = [cluster.env.process(one(thread, index))
             for index, thread in enumerate(threads)]
    cluster.run(until=cluster.env.all_of(procs))
    assert len(result["values"]) == 24
    for index, data in result["values"]:
        assert data == b"proc%02d!" % index

"""Boundary-matrix integration tests: accesses straddling every boundary
the stack cares about (MTU fragments, translation pages, cache pages),
through the full network path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClioCluster

KB = 1 << 10
MB = 1 << 20
PAGE = 4 * MB
MTU = 1500


def make_thread():
    cluster = ClioCluster(mn_capacity=512 * MB)
    return cluster, cluster.cn(0).process("mn0").thread()


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


@pytest.mark.parametrize("offset,size", [
    (PAGE - 1, 2),              # minimal page straddle
    (PAGE - 750, 1500),         # page straddle, exactly one MTU
    (PAGE - 2000, 4000),        # page straddle across three fragments
    (0, MTU),                   # exactly one MTU
    (0, MTU + 1),               # one byte past a fragment boundary
    (7, 3 * MTU),               # unaligned multi-fragment
    (2 * PAGE - MTU, 2 * MTU),  # fragment boundary == page boundary
])
def test_write_read_across_boundaries(offset, size):
    cluster, thread = make_thread()
    payload = bytes((index * 37 + 11) % 256 for index in range(size))
    result = {}

    def app():
        va = yield from thread.ralloc(4 * PAGE)
        yield from thread.rwrite(va + offset, payload)
        result["data"] = yield from thread.rread(va + offset, size)
        # Neighbours must be untouched (zero).
        if offset > 0:
            result["before"] = yield from thread.rread(va + offset - 1, 1)
        result["after"] = yield from thread.rread(va + offset + size, 1)

    run_app(cluster, app())
    assert result["data"] == payload
    if offset > 0:
        assert result["before"] == b"\x00"
    assert result["after"] == b"\x00"


def test_overlapping_writes_compose():
    cluster, thread = make_thread()
    result = {}

    def app():
        va = yield from thread.ralloc(PAGE)
        yield from thread.rwrite(va, b"A" * 100)
        yield from thread.rwrite(va + 50, b"B" * 100)
        yield from thread.rwrite(va + 25, b"C" * 50)
        result["data"] = yield from thread.rread(va, 150)

    run_app(cluster, app())
    expected = bytearray(b"\x00" * 150)
    expected[0:100] = b"A" * 100
    expected[50:150] = b"B" * 100
    expected[25:75] = b"C" * 50
    assert result["data"] == bytes(expected)


@given(offset=st.integers(min_value=0, max_value=2 * PAGE),
       size=st.integers(min_value=1, max_value=5000))
@settings(max_examples=15, deadline=None)
def test_roundtrip_anywhere_property(offset, size):
    """Any in-range (offset, size) write/read pair round-trips exactly."""
    cluster, thread = make_thread()
    payload = bytes((offset + index) % 256 for index in range(size))
    result = {}

    def app():
        va = yield from thread.ralloc(3 * PAGE)
        yield from thread.rwrite(va + offset, payload)
        result["data"] = yield from thread.rread(va + offset, size)

    run_app(cluster, app())
    assert result["data"] == payload

"""Differential testing: CBoard and SimBoard must agree observably.

The SimBoard exists so CLib code developed against it behaves identically
on the real board (paper section 5).  This suite runs the same
application scripts against both and compares every observable result —
data, error statuses, atomic outcomes — ignoring timing.
"""

import pytest

from repro.clib.client import ComputeNode, RemoteAccessError
from repro.core.cboard import CBoard
from repro.core.simboard import SimBoard
from repro.net.switch import Topology
from repro.params import ClioParams
from repro.sim import Environment

MB = 1 << 20
PAGE = 4 * MB


def run_on(board_kind: str, script):
    """Run ``script(thread)`` against the given board; return its log."""
    env = Environment()
    params = ClioParams.prototype()
    topology = Topology(env, params.network)
    if board_kind == "cboard":
        board = CBoard(env, params, dram_capacity=512 * MB)
    else:
        board = SimBoard(env, params)
    board.attach(topology)
    node = ComputeNode(env, "cn0", topology, params)
    thread = node.process("mn0").thread()
    log = []

    def app():
        yield from script(thread, log)

    env.run(until=env.process(app()))
    return log


def assert_equivalent(script):
    assert run_on("cboard", script) == run_on("simboard", script)


def test_write_read_script_equivalent():
    def script(thread, log):
        va = yield from thread.ralloc(1 * MB)
        yield from thread.rwrite(va, b"differential")
        log.append((yield from thread.rread(va, 12)))
        yield from thread.rwrite(va + 100, b"x" * 300)
        log.append((yield from thread.rread(va + 100, 300)))
        log.append((yield from thread.rread(va + 50, 60)))

    assert_equivalent(script)


def test_large_transfer_script_equivalent():
    blob = bytes(range(256)) * 24   # > 4 MTUs

    def script(thread, log):
        va = yield from thread.ralloc(16 * 1024)
        yield from thread.rwrite(va, blob)
        log.append((yield from thread.rread(va, len(blob))))

    assert_equivalent(script)


def test_error_script_equivalent():
    def script(thread, log):
        va = yield from thread.ralloc(64)
        yield from thread.rfree(va)
        try:
            yield from thread.rread(va, 8)
            log.append("read-succeeded")
        except RemoteAccessError as exc:
            log.append(("error", exc.status.value))
        try:
            yield from thread.rread(123 * PAGE, 8)
            log.append("wild-read-succeeded")
        except RemoteAccessError as exc:
            log.append(("error", exc.status.value))

    assert_equivalent(script)


def test_atomic_script_equivalent():
    def script(thread, log):
        va = yield from thread.ralloc(16)
        log.append((yield from thread.rfaa(va, 5)))
        log.append((yield from thread.rfaa(va, 3)))
        log.append((yield from thread.rcas(va, 8, 100)))
        log.append((yield from thread.rcas(va, 8, 200)))
        attempts = yield from thread.rlock(va + 8)
        log.append(("locked", attempts))
        yield from thread.runlock(va + 8)
        attempts = yield from thread.rlock(va + 8)
        log.append(("relocked", attempts))

    assert_equivalent(script)


def test_async_ordering_script_equivalent():
    def script(thread, log):
        va = yield from thread.ralloc(PAGE)
        h1 = yield from thread.rwrite_async(va, b"first___")
        h2 = yield from thread.rwrite_async(va, b"second__")
        yield from thread.rpoll([h1, h2])
        log.append((yield from thread.rread(va, 8)))
        yield from thread.rfence()
        log.append("fenced")

    assert_equivalent(script)


def test_isolation_script_equivalent():
    def run(board_kind):
        env = Environment()
        params = ClioParams.prototype()
        topology = Topology(env, params.network)
        board = (CBoard(env, params, dram_capacity=512 * MB)
                 if board_kind == "cboard" else SimBoard(env, params))
        board.attach(topology)
        node = ComputeNode(env, "cn0", topology, params)
        thread_a = node.process("mn0").thread()
        thread_b = node.process("mn0").thread()
        log = []

        def app():
            va = yield from thread_a.ralloc(64)
            yield from thread_a.rwrite(va, b"private")
            try:
                yield from thread_b.rread(va, 7)
                log.append("leak")
            except RemoteAccessError as exc:
                log.append(("isolated", exc.status.value))

        env.run(until=env.process(app()))
        return log

    assert run("cboard") == run("simboard")

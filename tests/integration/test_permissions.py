"""End-to-end permission enforcement (R5) through the full stack."""

import pytest

from repro.clib.client import RemoteAccessError
from repro.cluster import ClioCluster
from repro.core.addr import Permission
from repro.core.pipeline import Status

MB = 1 << 20
PAGE = 4 * MB


def make_thread():
    cluster = ClioCluster(mn_capacity=512 * MB)
    return cluster, cluster.cn(0).process("mn0").thread()


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def test_read_only_region_rejects_writes():
    cluster, thread = make_thread()
    outcomes = {}

    def app():
        # A read-only region still faults in pages on first READ access?
        # No: reads of never-written pages return zeros after the fault.
        va = yield from thread.ralloc(PAGE, permission=Permission.READ)
        outcomes["read"] = yield from thread.rread(va, 16)
        try:
            yield from thread.rwrite(va, b"nope")
            outcomes["write"] = "succeeded"
        except RemoteAccessError as exc:
            outcomes["write"] = exc.status

    run_app(cluster, app())
    assert outcomes["read"] == bytes(16)
    assert outcomes["write"] is Status.PERMISSION


def test_read_only_region_rejects_atomics():
    cluster, thread = make_thread()
    outcomes = {}

    def app():
        va = yield from thread.ralloc(PAGE, permission=Permission.READ)
        try:
            yield from thread.rfaa(va, 1)
            outcomes["atomic"] = "succeeded"
        except RemoteAccessError as exc:
            outcomes["atomic"] = exc.status

    run_app(cluster, app())
    assert outcomes["atomic"] is Status.PERMISSION


def test_write_only_region_rejects_reads():
    cluster, thread = make_thread()
    outcomes = {}

    def app():
        va = yield from thread.ralloc(PAGE, permission=Permission.WRITE)
        yield from thread.rwrite(va, b"wo-data")
        try:
            yield from thread.rread(va, 7)
            outcomes["read"] = "succeeded"
        except RemoteAccessError as exc:
            outcomes["read"] = exc.status

    run_app(cluster, app())
    assert outcomes["read"] is Status.PERMISSION


def test_permission_checked_on_every_page_of_spanning_access():
    """A write spanning an RW page into an RO page must fail."""
    cluster, thread = make_thread()
    outcomes = {}

    def app():
        rw = yield from thread.ralloc(PAGE)
        # Adjacent allocation is not guaranteed; write within one region
        # instead: allocate RO and RW separately and target the RO one
        # with the tail of a spanning write via a contiguous RW->RO pair
        # is not constructible through the public API, so assert the
        # simpler property: every fragment of a multi-fragment write into
        # an RO region fails and the region stays clean.
        ro = yield from thread.ralloc(PAGE, permission=Permission.READ)
        try:
            yield from thread.rwrite(ro, b"x" * 4000)   # 3 fragments
            outcomes["write"] = "succeeded"
        except RemoteAccessError as exc:
            outcomes["write"] = exc.status
        outcomes["content"] = yield from thread.rread(ro, 4000)
        yield from thread.rwrite(rw, b"ok")   # control: RW still works

    run_app(cluster, app())
    assert outcomes["write"] is Status.PERMISSION
    assert outcomes["content"] == bytes(4000)


def test_async_write_permission_error_surfaces_at_rpoll():
    cluster, thread = make_thread()
    outcomes = {}

    def app():
        ro = yield from thread.ralloc(PAGE, permission=Permission.READ)
        handle = yield from thread.rwrite_async(ro, b"sneaky")
        # rpoll no longer raises per-op failures: the rejection arrives
        # as a Completion with status/error, and .result re-raises it.
        (completion,) = yield from thread.rpoll([handle])
        outcomes["completion"] = completion
        try:
            completion.result
            outcomes["poll"] = "succeeded"
        except RemoteAccessError as exc:
            outcomes["poll"] = exc.status

    run_app(cluster, app())
    assert outcomes["poll"] is Status.PERMISSION
    completion = outcomes["completion"]
    assert completion.ok is False
    assert completion.status == "permission"
    assert isinstance(completion.error, RemoteAccessError)


def test_permissions_are_per_allocation_not_per_process():
    cluster, thread = make_thread()
    result = {}

    def app():
        ro = yield from thread.ralloc(PAGE, permission=Permission.READ)
        rw = yield from thread.ralloc(PAGE)
        yield from thread.rwrite(rw, b"fine")
        result["rw"] = yield from thread.rread(rw, 4)
        result["ro"] = yield from thread.rread(ro, 4)

    run_app(cluster, app())
    assert result["rw"] == b"fine"
    assert result["ro"] == bytes(4)

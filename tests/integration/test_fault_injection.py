"""End-to-end behaviour under injected network faults, plus determinism."""

from dataclasses import replace

import pytest

from repro.cluster import ClioCluster
from repro.params import ClioParams

MB = 1 << 20


def faulty_params(loss=0.0, corruption=0.0, max_retries=8):
    base = ClioParams.prototype()
    return replace(base,
                   network=replace(base.network, loss_rate=loss,
                                   corruption_rate=corruption),
                   clib=replace(base.clib, max_retries=max_retries))


def run_app(cluster, generator):
    return cluster.run(until=cluster.env.process(generator))


def transfer_workload(cluster, ops=60, size=256):
    """Write-then-read-back pairs; returns the mismatch count."""
    thread = cluster.cn(0).process("mn0").thread()
    mismatches = []

    def app():
        va = yield from thread.ralloc(4 * MB)
        for index in range(ops):
            payload = bytes([index % 256]) * size
            yield from thread.rwrite(va + (index % 8) * size, payload)
            data = yield from thread.rread(va + (index % 8) * size, size)
            if data != payload:
                mismatches.append(index)

    run_app(cluster, app())
    return mismatches


def test_correctness_preserved_under_packet_loss():
    cluster = ClioCluster(params=faulty_params(loss=0.08), seed=3,
                          mn_capacity=256 * MB)
    assert transfer_workload(cluster) == []
    assert cluster.cn(0).transport.total_retries > 0


def test_correctness_preserved_under_corruption():
    cluster = ClioCluster(params=faulty_params(corruption=0.08), seed=4,
                          mn_capacity=256 * MB)
    assert transfer_workload(cluster) == []
    assert cluster.mn.nacks_sent > 0


def test_correctness_under_combined_loss_and_corruption():
    cluster = ClioCluster(params=faulty_params(loss=0.04, corruption=0.04),
                          seed=5, mn_capacity=256 * MB)
    assert transfer_workload(cluster) == []


def test_stale_retry_never_undoes_newer_write():
    """Section 4.5's consistency hazard, end to end: after heavy loss and
    retries, the final content always matches the last write issued."""
    cluster = ClioCluster(params=faulty_params(loss=0.12), seed=6,
                          mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(4 * MB)
        for version in range(40):
            yield from thread.rwrite(va, b"version-%04d" % version)
        result["final"] = yield from thread.rread(va, 12)

    run_app(cluster, app())
    assert result["final"] == b"version-0039"


def test_atomics_exactly_once_under_loss():
    """Retried FAAs must not double-apply (cached atomic results)."""
    cluster = ClioCluster(params=faulty_params(loss=0.10), seed=7,
                          mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(8)
        for _ in range(30):
            yield from thread.rfaa(va, 1)
        result["count"] = yield from thread.rfaa(va, 0)

    run_app(cluster, app())
    assert result["count"] == 30


def test_runs_are_deterministic():
    """Same seed => identical simulated timeline, to the nanosecond."""
    def measure(seed):
        cluster = ClioCluster(params=faulty_params(loss=0.05), seed=seed,
                              mn_capacity=256 * MB)
        transfer_workload(cluster, ops=30)
        return cluster.env.now, cluster.cn(0).transport.total_retries

    assert measure(11) == measure(11)
    # And a different seed gives a different (loss-dependent) timeline.
    assert measure(11) != measure(12)

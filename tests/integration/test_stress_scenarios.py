"""Stress scenarios: mixed concurrent traffic through the full stack.

These are the "everything at once" tests: data ops, metadata ops,
atomics, fences, and offloads interleaving from multiple CNs against one
board, checking global invariants at the end.
"""

import pytest

from repro.apps.kv_store import ClioKV, register_kv_offload
from repro.clib.lock import RemoteLock
from repro.cluster import ClioCluster

MB = 1 << 20
PAGE = 4 * MB


def test_mixed_traffic_storm():
    """12 workers across 4 CNs doing different op types simultaneously."""
    cluster = ClioCluster(num_cns=4, mn_capacity=1 << 30)
    register_kv_offload(cluster.mn.extend_path, buckets=256)
    env = cluster.env
    results = {"writers": 0, "allocators": 0, "kv": 0, "counters": []}

    def writer(index):
        thread = cluster.cn(index % 4).process("mn0").thread()
        va = yield from thread.ralloc(PAGE)
        for round_index in range(6):
            payload = bytes([index, round_index]) * 100
            yield from thread.rwrite(va + round_index * 256, payload)
            data = yield from thread.rread(va + round_index * 256, 200)
            assert data == payload
        yield from thread.rfence()
        results["writers"] += 1

    def allocator(index):
        thread = cluster.cn(index % 4).process("mn0").thread()
        vas = []
        for _ in range(4):
            va = yield from thread.ralloc(PAGE)
            yield from thread.rwrite(va, b"alloc-cycle")
            vas.append(va)
        for va in vas[:2]:
            yield from thread.rfree(va)
        results["allocators"] += 1

    def kv_client(index):
        kv = ClioKV(cluster.cn(index % 4).process("mn0").thread())
        for round_index in range(6):
            key = b"stress-%d-%d" % (index, round_index)
            yield from kv.put(key, b"v" * 64)
            value = yield from kv.get(key)
            assert value == b"v" * 64
        results["kv"] += 1

    def counter(lock_holder, shared):
        thread, lock, counter_va = shared
        handle = lock.handle_for(thread.process.thread())
        for _ in range(4):
            yield from handle.acquire()
            old = yield from thread.rfaa(counter_va, 1)
            yield from handle.release()
        results["counters"].append(True)

    def spawn_all():
        # Shared lock-protected counter across CNs.
        thread = cluster.cn(0).process("mn0").thread()
        lock = yield from RemoteLock.create(thread)
        counter_va = yield from thread.ralloc(8)
        shared = (thread, lock, counter_va)
        procs = []
        for index in range(4):
            procs.append(env.process(writer(index)))
            procs.append(env.process(allocator(index)))
            procs.append(env.process(kv_client(index)))
        for index in range(2):
            procs.append(env.process(counter(index, shared)))
        yield env.all_of(procs)
        final = yield from thread.rfaa(counter_va, 0)
        return final

    final_count = cluster.run(until=env.process(spawn_all()))
    assert results["writers"] == 4
    assert results["allocators"] == 4
    assert results["kv"] == 4
    assert len(results["counters"]) == 2
    assert final_count == 8          # 2 counters x 4 increments, exact
    stats = cluster.mn.stats()
    assert stats["requests_served"] > 100


def test_alloc_free_churn_does_not_leak():
    """Repeated alloc/write/free cycles return the board to steady state."""
    cluster = ClioCluster(mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    board = cluster.mn

    def app():
        for cycle in range(20):
            va = yield from thread.ralloc(2 * PAGE)
            yield from thread.rwrite(va, b"churn")
            yield from thread.rwrite(va + PAGE, b"churn")
            yield from thread.rfree(va)

    cluster.run(until=cluster.env.process(app()))
    assert board.page_table.entry_count == 0
    # All frames are back (free list + async-buffer reserve).
    total = (board.pa_allocator.free_pages
             + len(board.async_buffer))
    assert total == board.pa_allocator.physical_pages


def test_fence_heavy_interleaving_preserves_order():
    """Writers separated by fences never observe reordering."""
    cluster = ClioCluster(mn_capacity=256 * MB)
    thread = cluster.cn(0).process("mn0").thread()
    observed = []

    def app():
        va = yield from thread.ralloc(PAGE)
        for epoch in range(8):
            handles = []
            for slot in range(4):
                handle = yield from thread.rwrite_async(
                    va + slot * 1024, bytes([epoch]) * 64)
                handles.append(handle)
            yield from thread.rfence()
            # After the fence, every slot must show the current epoch.
            for slot in range(4):
                data = yield from thread.rread(va + slot * 1024, 64)
                observed.append((epoch, slot, data == bytes([epoch]) * 64))

    cluster.run(until=cluster.env.process(app()))
    assert all(ok for _, _, ok in observed)
    assert len(observed) == 32

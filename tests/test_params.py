"""Tests for calibration parameters and profiles."""

import dataclasses

import pytest

from repro.params import (
    CBoardParams,
    ClioParams,
    GBPS,
    RDMAParams,
    transmit_time_ns,
)


def test_transmit_time():
    # 1250 bytes at 10 Gbps = 1000 ns.
    assert transmit_time_ns(1250, 10 * GBPS) == 1000
    assert transmit_time_ns(0, 10 * GBPS) == 1   # floor of one ns
    with pytest.raises(ValueError):
        transmit_time_ns(100, 0)


def test_pipeline_cycles_sum_components():
    params = CBoardParams()
    expected = (params.mat_cycles + params.decode_cycles
                + params.translate_cycles + params.permission_cycles
                + params.response_cycles + params.netstack_cycles)
    assert params.pipeline_cycles == expected


def test_pipeline_ns_fault_adds_bounded_cycles():
    params = CBoardParams()
    delta = params.pipeline_ns(faulted=True) - params.pipeline_ns()
    assert delta == int(round(params.fault_cycles * params.cycle_ns))


def test_asic_projection_scales_clock_and_dram():
    proto = ClioParams.prototype()
    asic = ClioParams.asic_projection()
    assert asic.cboard.cycle_ns < proto.cboard.cycle_ns
    assert asic.cboard.dram_access_ns < proto.cboard.dram_access_ns
    # Everything else carries over.
    assert asic.cboard.tlb_entries == proto.cboard.tlb_entries
    assert asic.network == proto.network


def test_cloudlab_profile_has_bigger_rnic_caches():
    local = ClioParams.prototype()
    cloudlab = ClioParams.cloudlab()
    assert cloudlab.rdma.pte_cache_entries == 4096       # 2^12 (paper)
    assert cloudlab.rdma.pte_cache_entries > local.rdma.pte_cache_entries


def test_params_are_frozen():
    params = ClioParams.prototype()
    with pytest.raises(dataclasses.FrozenInstanceError):
        params.cboard.cycle_ns = 1.0


def test_paper_headline_constants():
    params = ClioParams.prototype()
    assert params.cboard.cycle_ns == 4.0                 # 250 MHz FPGA
    assert params.cboard.datapath_bits == 512
    assert params.cboard.default_page_size == 4 << 20    # 4 MB huge pages
    assert params.cboard.page_table_overprovision == 2.0
    assert params.cboard.retry_buffer_bytes == 30 << 10  # 30 KB
    assert params.rdma.odp_page_fault_ns == 16_800_000   # 16.8 ms
    assert params.rdma.max_mrs == 1 << 18


def test_rdma_profiles_distinct():
    assert RDMAParams().pte_cache_entries == 256
    assert RDMAParams.cloudlab().qp_cache_entries == 1024


def test_cxl_params_defaults():
    from repro.params import CXLParams

    cxl = CXLParams()
    assert cxl.line_bytes == 64
    assert cxl.load_ns == 350 and cxl.store_ns == 300
    assert cxl.coherence
    with pytest.raises(ValueError):
        CXLParams(line_bytes=48)          # not a power of two


def test_backend_params_defaults_and_validation():
    from repro.params import BackendParams, ClioParams

    backend = BackendParams()
    assert backend.name == "clio"
    assert backend.tenant == "default"
    with pytest.raises(ValueError):
        BackendParams(name="nvme-of")
    params = ClioParams.prototype()
    assert params.backend.name == "clio"
    assert params.qos.tenants == ()
    assert params.cxl.line_bytes == 64


def test_tenant_config_validation():
    from repro.params import TenantConfig

    tenant = TenantConfig(name="gold", clients=("cn0",), share=0.5,
                          quota_bytes=1 << 20)
    assert tenant.quota_bytes == 1 << 20
    with pytest.raises(ValueError):
        TenantConfig(name="", clients=("cn0",), share=0.5)
    # Empty clients is allowed: a capacity-only tenant (controller
    # quotas) has no CNs to classify at the switch.
    assert TenantConfig(name="x", share=0.5).clients == ()
    with pytest.raises(ValueError):
        TenantConfig(name="x", clients=("cn0",), share=0.5, quota_bytes=-1)

"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import _parse_size, build_parser, main

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


def test_parse_size_units():
    assert _parse_size("64") == 64
    assert _parse_size("4KB") == 4 * KB
    assert _parse_size("16MB") == 16 * MB
    assert _parse_size("2GB") == 2 * GB
    assert _parse_size("1.5KB") == 1536
    assert _parse_size(" 8kb ") == 8 * KB
    assert _parse_size("128B") == 128


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_unknown_profile_rejected():
    with pytest.raises(SystemExit):
        main(["--profile", "warp-drive", "latency", "--ops", "1"])


def test_latency_command(capsys):
    assert main(["latency", "--size", "16", "--ops", "50"]) == 0
    out = capsys.readouterr().out
    assert "median us" in out
    assert "Clio read latency" in out


def test_latency_write_mode(capsys):
    assert main(["latency", "--size", "64", "--ops", "30", "--write"]) == 0
    assert "write latency" in capsys.readouterr().out


def test_compare_command(capsys):
    assert main(["compare", "--size", "16", "--ops", "60"]) == 0
    out = capsys.readouterr().out
    for backend in ("clio", "cxl", "rdma", "herd", "herd-bf", "legoos",
                    "clover"):
        assert backend in out


def test_compare_backend_subset_and_write(capsys):
    assert main(["compare", "--backends", "clio,cxl", "--size", "64",
                 "--ops", "30", "--write"]) == 0
    out = capsys.readouterr().out
    assert "write median us" in out
    assert "rdma" not in out


def test_compare_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["compare", "--backends", "clio,nvme-of", "--ops", "10"])


def test_alloc_command(capsys):
    assert main(["alloc", "--size", "16MB"]) == 0
    out = capsys.readouterr().out
    assert "Clio VA us" in out and "RDMA MR reg" in out


def test_ycsb_command(capsys):
    assert main(["ycsb", "--workload", "C", "--keys", "50",
                 "--ops", "50"]) == 0
    assert "YCSB-C" in capsys.readouterr().out


def test_ycsb_rejects_unknown_mix():
    with pytest.raises(SystemExit):
        main(["ycsb", "--workload", "Z", "--keys", "10", "--ops", "10"])


def test_goodput_command(capsys):
    assert main(["goodput", "--threads", "1", "--ops", "40"]) == 0
    assert "goodput_Gbps" in capsys.readouterr().out


def test_asic_profile_runs(capsys):
    assert main(["--profile", "asic", "latency", "--ops", "30"]) == 0
    assert "asic" in capsys.readouterr().out


def test_chaos_command(capsys):
    # Enough ops that the workload spans the 1 ms crash and the restart.
    assert main(["--seed", "3", "chaos", "--scenario", "board-crash",
                 "--ops", "1200"]) == 0
    out = capsys.readouterr().out
    assert "board-crash" in out
    assert "invariants: all hold" in out
    assert "crash recovery" in out


def test_chaos_determinism_flag(capsys):
    assert main(["--seed", "3", "chaos", "--scenario", "link-flap",
                 "--ops", "300", "--check-determinism"]) == 0
    assert "bit-identical" in capsys.readouterr().out


def test_chaos_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["chaos", "--scenario", "gremlins"])


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert repro.__version__ in out
    assert out.startswith("repro ")


def test_metrics_command(capsys):
    assert main(["metrics", "--ops", "20", "--size", "64"]) == 0
    out = capsys.readouterr().out
    assert "cboard.mn0.requests_served" in out
    assert "transport.cn0.requests_issued" in out
    assert "attempt:read" in out            # span summary present


def test_metrics_command_trace_export(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    assert main(["metrics", "--ops", "10", "--interval-us", "20",
                 "--trace-out", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "timeseries" in out
    assert str(trace_path) in out
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert events
    for event in events:
        assert "name" in event and "ph" in event
        if event["ph"] != "M":
            assert isinstance(event["ts"], (int, float))
    phases = {event["ph"] for event in events}
    assert "X" in phases        # completed spans
    assert "C" in phases        # sampled counters


def test_metrics_command_prefix_filter(capsys):
    assert main(["metrics", "--ops", "10", "--prefix", "cboard.mn0"]) == 0
    out = capsys.readouterr().out
    assert "cboard.mn0.requests_served" in out
    assert "transport.cn0" not in out


def test_cprofile_flag_prints_profile(capsys):
    assert main(["--cprofile", "latency", "--ops", "20"]) == 0
    out = capsys.readouterr().out
    assert "median us" in out                 # the command itself still ran
    assert "cumulative" in out                # profile table, cumtime-sorted
    assert "function calls" in out

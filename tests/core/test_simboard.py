"""Tests for SimBoard: the software CBoard simulator (paper section 5).

CLib code must behave identically whether it talks to a real CBoard or a
SimBoard — only timing differs.  These tests run the same application
flows against a SimBoard-backed cluster.
"""

import pytest

from repro.clib.client import ComputeNode, RemoteAccessError
from repro.core.pipeline import Status
from repro.core.simboard import SimBoard
from repro.net.switch import Topology
from repro.params import ClioParams
from repro.sim import Environment

MB = 1 << 20
PAGE = 4 * MB


def make_sim_cluster():
    env = Environment()
    params = ClioParams.prototype()
    topology = Topology(env, params.network)
    board = SimBoard(env, params)
    board.attach(topology)
    node = ComputeNode(env, "cn0", topology, params)
    return env, board, node


def run_app(env, generator):
    return env.run(until=env.process(generator))


def test_clib_roundtrip_over_simboard():
    env, board, node = make_sim_cluster()
    thread = node.process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(1024)
        yield from thread.rwrite(va, b"sim!")
        result["data"] = yield from thread.rread(va, 4)

    run_app(env, app())
    assert result["data"] == b"sim!"


def test_simboard_is_much_cheaper_to_simulate():
    """The simulator exists for fast developer iteration."""
    env, board, node = make_sim_cluster()
    thread = node.process("mn0").thread()

    def app():
        va = yield from thread.ralloc(1024)
        for _ in range(20):
            yield from thread.rwrite(va, b"x" * 64)

    run_app(env, app())
    assert board.requests_served == 21


def test_permission_and_isolation_match_cboard_semantics():
    env, board, node = make_sim_cluster()
    thread_a = node.process("mn0").thread()
    thread_b = node.process("mn0").thread()
    errors = []

    def app():
        va = yield from thread_a.ralloc(64)
        yield from thread_a.rwrite(va, b"private")
        try:
            yield from thread_b.rread(va, 7)
        except RemoteAccessError as exc:
            errors.append(exc.status)

    run_app(env, app())
    assert errors == [Status.INVALID_VA]


def test_unallocated_access_fails():
    env, board, node = make_sim_cluster()
    thread = node.process("mn0").thread()
    errors = []

    def app():
        try:
            yield from thread.rread(123 * PAGE, 8)
        except RemoteAccessError as exc:
            errors.append(exc.status)

    run_app(env, app())
    assert errors == [Status.INVALID_VA]


def test_free_then_access_fails():
    env, board, node = make_sim_cluster()
    thread = node.process("mn0").thread()
    errors = []

    def app():
        va = yield from thread.ralloc(64)
        yield from thread.rwrite(va, b"temp")
        yield from thread.rfree(va)
        try:
            yield from thread.rread(va, 4)
        except RemoteAccessError as exc:
            errors.append(exc.status)

    run_app(env, app())
    assert errors == [Status.INVALID_VA]


def test_atomics_and_locks_work():
    env, board, node = make_sim_cluster()
    thread = node.process("mn0").thread()
    result = {}

    def app():
        va = yield from thread.ralloc(8)
        old = yield from thread.rfaa(va, 7)
        result["old"] = old
        yield from thread.rlock(va + 0)    # the word now holds 7: not 0...

    # rlock spins on a non-zero word forever; use a fresh word instead.
    def app2():
        va = yield from thread.ralloc(16)
        result["old"] = yield from thread.rfaa(va, 7)
        yield from thread.rlock(va + 8)
        yield from thread.runlock(va + 8)
        result["locked"] = True

    run_app(env, app2())
    assert result["old"] == 0
    assert result["locked"]


def test_large_transfers_fragment_correctly():
    env, board, node = make_sim_cluster()
    thread = node.process("mn0").thread()
    blob = bytes(range(256)) * 20   # 5120 B: 4 fragments each way
    result = {}

    def app():
        va = yield from thread.ralloc(8 * 1024)
        yield from thread.rwrite(va, blob)
        result["data"] = yield from thread.rread(va, len(blob))

    run_app(env, app())
    assert result["data"] == blob


def test_software_offload_hook():
    env, board, node = make_sim_cluster()

    def upper(board, caller_pid, args):
        return args.upper()

    board.register_offload("upper", upper)
    with pytest.raises(ValueError):
        board.register_offload("upper", upper)
    thread = node.process("mn0").thread()
    result = {}

    def app():
        result["value"] = yield from thread.invoke_offload("upper", "clio")

    run_app(env, app())
    assert result["value"] == "CLIO"


def test_fixed_service_time():
    env, board, node = make_sim_cluster()
    thread = node.process("mn0").thread()
    latencies = []

    def app():
        va = yield from thread.ralloc(64)
        yield from thread.rwrite(va, b"prime")
        for _ in range(5):
            start = env.now
            yield from thread.rread(va, 5)
            latencies.append(env.now - start)

    run_app(env, app())
    # Flat timing model: very low variance (only network jitter remains).
    assert max(latencies) - min(latencies) < 500


def test_invalid_service_time_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        SimBoard(env, ClioParams.prototype(), service_ns=-1)

"""Tests for page arithmetic and the PTE hash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addr import (
    PAGE_SIZES,
    AccessType,
    PageSpec,
    Permission,
    jenkins_mix,
    pte_hash,
)

MB = 1 << 20


def test_page_spec_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        PageSpec(3000)
    with pytest.raises(ValueError):
        PageSpec(0)


def test_page_number_and_offset():
    spec = PageSpec(4 * MB)
    addr = 5 * 4 * MB + 123
    assert spec.page_number(addr) == 5
    assert spec.page_offset(addr) == 123
    assert spec.page_base(addr) == 5 * 4 * MB


def test_pages_spanned_single_page():
    spec = PageSpec(4 * MB)
    assert list(spec.pages_spanned(100, 16)) == [0]


def test_pages_spanned_boundary_crossing():
    spec = PageSpec(4 * MB)
    addr = 4 * MB - 8
    assert list(spec.pages_spanned(addr, 16)) == [0, 1]


def test_pages_spanned_rejects_zero_size():
    spec = PageSpec(4 * MB)
    with pytest.raises(ValueError):
        spec.pages_spanned(0, 0)


def test_round_up():
    spec = PageSpec(4 * MB)
    assert spec.round_up(1) == 4 * MB
    assert spec.round_up(4 * MB) == 4 * MB
    assert spec.round_up(4 * MB + 1) == 8 * MB


def test_page_count():
    spec = PageSpec(4 * MB)
    assert spec.page_count(1) == 1
    assert spec.page_count(9 * MB) == 3


def test_supported_page_sizes_are_powers_of_two():
    for size in PAGE_SIZES:
        assert size & (size - 1) == 0
        PageSpec(size)  # must construct


def test_access_type_permissions():
    assert AccessType.READ.required_permission == Permission.READ
    assert AccessType.WRITE.required_permission == Permission.WRITE
    assert AccessType.ATOMIC.required_permission == Permission.WRITE


def test_permission_flags_compose():
    assert Permission.READ in Permission.READ_WRITE
    assert Permission.WRITE in Permission.READ_WRITE
    assert Permission.WRITE not in Permission.READ


def test_jenkins_mix_is_deterministic_and_avalanchey():
    assert jenkins_mix(1) == jenkins_mix(1)
    # Flipping one input bit should flip many output bits.
    diff = jenkins_mix(1) ^ jenkins_mix(3)
    assert bin(diff).count("1") > 16


def test_pte_hash_range():
    for vpn in range(1000):
        assert 0 <= pte_hash(7, vpn, 97) < 97


def test_pte_hash_rejects_bad_bucket_count():
    with pytest.raises(ValueError):
        pte_hash(1, 1, 0)


@given(st.integers(min_value=0, max_value=2 ** 47),
       st.integers(min_value=1, max_value=2 ** 30))
@settings(max_examples=200)
def test_page_base_offset_recompose(addr, raw_size):
    spec = PageSpec(4 * MB)
    assert spec.page_base(addr) + spec.page_offset(addr) == addr


@given(st.integers(min_value=1, max_value=2 ** 32))
@settings(max_examples=200)
def test_round_up_is_aligned_and_sufficient(size):
    spec = PageSpec(2 * MB)
    rounded = spec.round_up(size)
    assert rounded >= size
    assert rounded % spec.page_size == 0
    assert rounded - size < spec.page_size

"""Tests for the ARM slow path (ralloc/rfree handling)."""

import pytest

from repro.core.addr import PageSpec, Permission
from repro.core.memory import DRAM
from repro.core.pa_allocator import PAAllocator
from repro.core.page_table import HashPageTable
from repro.core.slowpath import SlowPath
from repro.core.tlb import TLB
from repro.core.va_allocator import VAAllocator
from repro.params import CBoardParams, GBPS, US

MB = 1 << 20
PAGE = 4 * MB

from repro.sim import Environment


def make_slowpath(pages=64):
    env = Environment()
    params = CBoardParams()
    spec = PageSpec(PAGE)
    table = HashPageTable(pages, slots_per_bucket=4, overprovision=2.0)
    va = VAAllocator(table, spec)
    pa = PAAllocator(pages)
    tlb = TLB(8)
    dram = DRAM(pages * PAGE, 300, 120 * GBPS)
    slow = SlowPath(env, params, va, pa, tlb, dram=dram)
    return env, slow, table, pa, tlb, dram


def run(env, generator):
    return env.run(until=env.process(generator))


def test_alloc_returns_va_and_costs_slow_path_time():
    env, slow, table, *_ = make_slowpath()
    start = env.now
    response = run(env, slow.handle_alloc(pid=1, size=100))
    assert response.ok
    assert response.size == PAGE
    elapsed = env.now - start
    params = CBoardParams()
    # handoff in + search + handoff out, no retries when table is empty.
    assert elapsed == 2 * params.arm_polling_handoff_ns + params.arm_va_search_ns
    assert response.retries == 0


def test_alloc_failure_reports_error():
    env, slow, *_ = make_slowpath(pages=2)
    # Exhaust all slots, next alloc must fail gracefully.
    responses = []

    def fill():
        for _ in range(64):
            response = yield from slow.handle_alloc(pid=1, size=PAGE)
            responses.append(response)
            if not response.ok:
                return

    run(env, fill())
    assert any(not response.ok for response in responses)
    failed = [response for response in responses if not response.ok][0]
    assert failed.error


def test_alloc_retry_cost_charged():
    env, slow, table, *_ = make_slowpath(pages=8)
    params = CBoardParams()

    def fill():
        durations = []
        while True:
            start = env.now
            response = yield from slow.handle_alloc(pid=1, size=PAGE)
            if not response.ok:
                return durations
            durations.append((env.now - start, response.retries))

    durations = run(env, fill())
    with_retries = [(duration, retries) for duration, retries in durations
                    if retries > 0]
    for duration, retries in with_retries:
        assert duration >= retries * params.arm_retry_ns


def test_free_recycles_and_zeroes_pages():
    env, slow, table, pa, tlb, dram = make_slowpath()
    response = run(env, slow.handle_alloc(pid=1, size=PAGE))
    vpn = response.va // PAGE
    table.set_present(1, vpn, ppn=3)
    pa._free.remove(3)
    dram.write(3 * PAGE + 10, b"secret")
    tlb.insert(1, vpn, 3, Permission.READ_WRITE)

    free_response = run(env, slow.handle_free(pid=1, va=response.va))
    assert free_response.ok and free_response.freed_pages == 1
    assert dram.read(3 * PAGE + 10, 6) == bytes(6)   # zeroed (R5)
    assert tlb.lookup(1, vpn) is None                # shot down
    assert 3 in pa._free


def test_free_unknown_va_fails_gracefully():
    env, slow, *_ = make_slowpath()
    response = run(env, slow.handle_free(pid=1, va=PAGE))
    assert not response.ok


def test_single_pa_alloc_under_20us():
    env, slow, *_ = make_slowpath()
    start = env.now
    ppn = run(env, slow.single_pa_alloc())
    assert isinstance(ppn, int)
    assert env.now - start < 20 * US   # paper: PA allocation < 20 us


def test_workers_limit_concurrency():
    env, slow, *_ = make_slowpath()
    params = CBoardParams()
    finish_times = []

    def alloc():
        yield from slow.handle_alloc(pid=1, size=PAGE)
        finish_times.append(env.now)

    procs = [env.process(alloc()) for _ in range(6)]
    env.run(until=env.all_of(procs))
    # 3 workers (4 ARM cores - 1 polling): 6 allocs take two waves.
    assert len(set(finish_times)) >= 2

"""Tests for the MN retry dedup buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.retry_buffer import RetryBuffer


def test_fresh_request_not_deduped():
    buffer = RetryBuffer(capacity_bytes=1024)
    executed, result = buffer.check(None)
    assert not executed and result is None


def test_retry_of_executed_request_dedups():
    buffer = RetryBuffer(capacity_bytes=1024)
    buffer.remember(42)
    executed, _ = buffer.check(42)
    assert executed
    assert buffer.dedup_hits == 1


def test_atomic_result_cached():
    buffer = RetryBuffer(capacity_bytes=1024)
    buffer.remember(7, result=b"\x01")
    executed, result = buffer.check(7)
    assert executed and result == b"\x01"


def test_unknown_original_not_deduped():
    buffer = RetryBuffer(capacity_bytes=1024)
    buffer.remember(1)
    executed, _ = buffer.check(2)
    assert not executed


def test_capacity_evicts_oldest():
    buffer = RetryBuffer(capacity_bytes=4 * 32)  # 4 records
    for request_id in range(6):
        buffer.remember(request_id)
    assert not buffer.check(0)[0]
    assert not buffer.check(1)[0]
    assert buffer.check(2)[0]
    assert buffer.check(5)[0]


def test_bytes_used_accounting():
    buffer = RetryBuffer(capacity_bytes=30 * 1024)
    assert buffer.max_records == (30 * 1024) // 32
    buffer.remember(1)
    assert buffer.bytes_used == 32


def test_re_remember_refreshes_age():
    buffer = RetryBuffer(capacity_bytes=2 * 32)
    buffer.remember(1)
    buffer.remember(2)
    buffer.remember(1)        # refresh 1 -> 2 is now oldest
    buffer.remember(3)        # evicts 2
    assert buffer.check(1)[0]
    assert not buffer.check(2)[0]


def test_capacity_below_record_rejected():
    with pytest.raises(ValueError):
        RetryBuffer(capacity_bytes=16, record_bytes=32)


@given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                min_size=1, max_size=300))
@settings(max_examples=50)
def test_most_recent_ids_always_remembered_property(ids):
    """The last max_records distinct IDs must always dedup."""
    buffer = RetryBuffer(capacity_bytes=8 * 32)  # 8 records
    for request_id in ids:
        buffer.remember(request_id)
    recent_distinct = []
    for request_id in reversed(ids):
        if request_id not in recent_distinct:
            recent_distinct.append(request_id)
        if len(recent_distinct) == 8:
            break
    for request_id in recent_distinct:
        assert buffer.check(request_id)[0]

"""Hypothesis stateful testing of the MN atomic unit against a model.

A :class:`RuleBasedStateMachine` drives random tas/cas/faa/store/read
sequences (sequential and concurrent batches) at a few word addresses on
a real :class:`AtomicUnit` + DRAM, mirroring every word in a plain
Python model.  After each step:

* every result's ``(old_value, success)`` matches the model;
* DRAM holds exactly the model's words;
* the serialization watermark never exceeds one (the single-unit claim);
* concurrent batches, re-checked through the Wing–Gong checker, are
  linearizable with the exact results the unit returned.

The deterministic Hypothesis profile (tests/conftest.py) keeps CI
reproducible; run with ``HYPOTHESIS_PROFILE=random`` to explore.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.memory import DRAM
from repro.core.sync import ATOMIC_WIDTH, AtomicOp, AtomicUnit
from repro.params import GBPS
from repro.sim import Environment
from repro.verify import AtomicWordModel, HistoryOp, check_history

WORDS = (0, 64, 4096)
MASK = (1 << 64) - 1

ops = st.one_of(
    st.just(AtomicOp(kind="tas")),
    st.builds(AtomicOp, kind=st.just("faa"),
              value=st.integers(min_value=1, max_value=5)),
    st.builds(AtomicOp, kind=st.just("cas"),
              expected=st.integers(min_value=0, max_value=6),
              value=st.integers(min_value=0, max_value=6)),
    st.builds(AtomicOp, kind=st.just("store"),
              value=st.integers(min_value=0, max_value=6)),
)


def model_action(op: AtomicOp) -> tuple:
    if op.kind == "tas":
        return ("tas",)
    if op.kind == "cas":
        return ("cas", op.expected, op.value)
    if op.kind == "faa":
        return ("faa", op.value)
    return ("store", op.value)


class AtomicUnitMachine(RuleBasedStateMachine):

    @initialize()
    def setup(self):
        self.env = Environment()
        self.dram = DRAM(1 << 20, access_ns=300, bandwidth_bps=120 * GBPS)
        self.unit = AtomicUnit(self.env, self.dram)
        self.model = {va: 0 for va in WORDS}

    def _word(self, va: int) -> int:
        return int.from_bytes(self.dram.read(va, ATOMIC_WIDTH), "little")

    @rule(slot=st.integers(min_value=0, max_value=len(WORDS) - 1), op=ops)
    def sequential_op(self, slot, op):
        va = WORDS[slot]
        result = self.env.run(until=self.env.process(
            self.unit.execute(va, op)))
        state, expected = AtomicWordModel.apply(
            self.model[va], model_action(op))
        assert (result.old_value, result.success) == expected, \
            f"{op} on word {self.model[va]}"
        self.model[va] = state

    @rule(slot=st.integers(min_value=0, max_value=len(WORDS) - 1),
          batch=st.lists(ops, min_size=2, max_size=5))
    def concurrent_batch(self, slot, batch):
        """Fire overlapping atomics; the unit must serialize them into
        *some* legal order — proven by linearizing the observed history."""
        va = WORDS[slot]
        history = []

        def contender(index, op):
            start = self.env.now
            result = yield from self.unit.execute(va, op)
            history.append(HistoryOp(
                client=f"c{index}", action=model_action(op),
                result=(result.old_value, result.success),
                start_ns=start, end_ns=self.env.now))

        procs = [self.env.process(contender(i, op))
                 for i, op in enumerate(batch)]
        self.env.run(until=self.env.all_of(procs))
        outcome = check_history(history, _SeededWord(self.model[va]))
        assert outcome.ok is True, \
            f"batch {batch} from {self.model[va]} not linearizable"
        # Replay the witness order to advance the model word.
        state = self.model[va]
        for op_record in outcome.order:
            state, _ = AtomicWordModel.apply(state, op_record.action)
        self.model[va] = state

    @invariant()
    def dram_matches_model(self):
        if not hasattr(self, "model"):
            return
        for va, value in self.model.items():
            assert self._word(va) == value

    @invariant()
    def unit_serializes(self):
        if not hasattr(self, "unit"):
            return
        assert self.unit.max_active <= 1
        assert self.unit.active == 0   # nothing in flight between steps


class _SeededWord:
    """AtomicWordModel starting from an arbitrary word value."""

    def __init__(self, initial: int):
        self.initial = initial
        self.apply = AtomicWordModel.apply


TestAtomicUnitStateful = AtomicUnitMachine.TestCase
TestAtomicUnitStateful.settings = settings(max_examples=25,
                                           stateful_step_count=25,
                                           deadline=None)

"""Tests for the overflow-free hash page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addr import Permission
from repro.core.page_table import HashPageTable, PageTableFullError


def make_table(pages=512, k=4, over=2.0):
    return HashPageTable(physical_pages=pages, slots_per_bucket=k,
                         overprovision=over)


def test_table_sizing_follows_overprovision():
    table = make_table(pages=512, k=4, over=2.0)
    assert table.total_slots >= 1024
    assert table.num_buckets == table.total_slots // 4


def test_insert_lookup_roundtrip():
    table = make_table()
    table.insert(pid=1, vpn=10, permission=Permission.READ_WRITE)
    entry = table.lookup(1, 10)
    assert entry is not None
    assert entry.pid == 1 and entry.vpn == 10
    assert not entry.present


def test_lookup_missing_returns_none():
    table = make_table()
    assert table.lookup(1, 999) is None


def test_duplicate_insert_rejected():
    table = make_table()
    table.insert(1, 10, Permission.READ)
    with pytest.raises(ValueError):
        table.insert(1, 10, Permission.READ)


def test_same_vpn_different_pid_coexist():
    table = make_table()
    table.insert(1, 10, Permission.READ)
    table.insert(2, 10, Permission.WRITE)
    assert table.lookup(1, 10).permission == Permission.READ
    assert table.lookup(2, 10).permission == Permission.WRITE


def test_set_present_maps_physical_page():
    table = make_table()
    table.insert(1, 10, Permission.READ_WRITE)
    entry = table.set_present(1, 10, ppn=77)
    assert entry.present and entry.ppn == 77


def test_set_present_twice_rejected():
    table = make_table()
    table.insert(1, 10, Permission.READ_WRITE)
    table.set_present(1, 10, 77)
    with pytest.raises(ValueError):
        table.set_present(1, 10, 78)


def test_set_present_on_missing_pte_rejected():
    table = make_table()
    with pytest.raises(KeyError):
        table.set_present(1, 10, 77)


def test_remove_returns_entry_and_frees_slot():
    table = make_table()
    table.insert(1, 10, Permission.READ_WRITE)
    table.set_present(1, 10, 5)
    entry = table.remove(1, 10)
    assert entry.ppn == 5
    assert table.lookup(1, 10) is None
    assert table.entry_count == 0


def test_remove_missing_rejected():
    table = make_table()
    with pytest.raises(KeyError):
        table.remove(1, 10)


def test_can_insert_detects_bucket_overflow():
    table = HashPageTable(physical_pages=4, slots_per_bucket=2,
                          overprovision=1.0)
    # With 4 buckets of 2 slots, find 3 vpns hashing to the same bucket.
    target = table.bucket_of(1, 0)
    same_bucket = [vpn for vpn in range(10000)
                   if table.bucket_of(1, vpn) == target][:3]
    assert len(same_bucket) == 3
    assert table.can_insert(1, same_bucket[:2])
    assert not table.can_insert(1, same_bucket)


def test_can_insert_rejects_already_mapped():
    table = make_table()
    table.insert(1, 10, Permission.READ)
    assert not table.can_insert(1, [10])


def test_bypassing_check_raises_on_overflow():
    table = HashPageTable(physical_pages=4, slots_per_bucket=1,
                          overprovision=1.0)
    target = table.bucket_of(1, 0)
    same = [vpn for vpn in range(10000)
            if table.bucket_of(1, vpn) == target][:2]
    table.insert(1, same[0], Permission.READ)
    with pytest.raises(PageTableFullError):
        table.insert(1, same[1], Permission.READ)


def test_footprint_is_small_fraction_of_memory():
    # Paper: with 4 MB pages the hash table consumes ~0.4% of physical memory.
    pages = (1 << 40) // (4 << 20)  # 1 TB of 4 MB pages
    table = HashPageTable(physical_pages=pages, slots_per_bucket=4,
                          overprovision=2.0)
    fraction = table.footprint_bytes(pte_bytes=16) / (1 << 40)
    assert fraction < 0.005


def test_entries_for_pid():
    table = make_table()
    table.insert(1, 1, Permission.READ)
    table.insert(1, 2, Permission.READ)
    table.insert(2, 1, Permission.READ)
    assert len(table.entries_for_pid(1)) == 2


def test_invalid_construction():
    with pytest.raises(ValueError):
        HashPageTable(0)
    with pytest.raises(ValueError):
        HashPageTable(10, slots_per_bucket=0)
    with pytest.raises(ValueError):
        HashPageTable(10, overprovision=0.5)


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 2000)),
                min_size=1, max_size=200, unique=True))
@settings(max_examples=50)
def test_insert_remove_consistency_property(keys):
    """After inserting a set and removing half, lookups match exactly."""
    table = HashPageTable(physical_pages=4096, slots_per_bucket=8,
                          overprovision=4.0)
    inserted = []
    for pid, vpn in keys:
        if table.can_insert(pid, [vpn]):
            table.insert(pid, vpn, Permission.READ_WRITE)
            inserted.append((pid, vpn))
    removed = inserted[::2]
    for pid, vpn in removed:
        table.remove(pid, vpn)
    kept = set(inserted) - set(removed)
    for pid, vpn in kept:
        assert table.lookup(pid, vpn) is not None
    for pid, vpn in removed:
        assert table.lookup(pid, vpn) is None
    assert table.entry_count == len(kept)

"""Stateful property testing of the virtual-memory pair (VA allocator +
hash page table) against a reference model.

Invariants the machine checks after *every* step:

* granted ranges are disjoint per PID and page-aligned;
* every granted page has exactly one valid PTE; freed pages have none;
* no bucket ever exceeds its K slots (the overflow-free guarantee);
* table entry count equals the model's count.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.addr import PageSpec, Permission
from repro.core.page_table import HashPageTable
from repro.core.va_allocator import AllocationError, VAAllocator

MB = 1 << 20
PAGE = 4 * MB


class VMStateMachine(RuleBasedStateMachine):

    @initialize()
    def setup(self):
        self.table = HashPageTable(physical_pages=256, slots_per_bucket=8,
                                   overprovision=2.0)
        self.allocator = VAAllocator(self.table, PageSpec(PAGE))
        # Reference model: pid -> {va -> size}
        self.model: dict[int, dict[int, int]] = {}

    @rule(pid=st.integers(min_value=1, max_value=4),
          pages=st.integers(min_value=1, max_value=6))
    def allocate(self, pid, pages):
        try:
            outcome = self.allocator.allocate(pid, pages * PAGE)
        except AllocationError:
            return   # table-full is legal; invariants still checked below
        allocation = outcome.allocation
        self.model.setdefault(pid, {})[allocation.va] = allocation.size

    @rule(pid=st.integers(min_value=1, max_value=4),
          index=st.integers(min_value=0, max_value=50))
    def free_some(self, pid, index):
        ranges = sorted(self.model.get(pid, {}))
        if not ranges:
            return
        va = ranges[index % len(ranges)]
        self.allocator.free(pid, va)
        del self.model[pid][va]

    @invariant()
    def ranges_disjoint_and_aligned(self):
        for pid, ranges in self.model.items():
            spans = sorted((va, va + size) for va, size in ranges.items())
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2
            for va in ranges:
                assert va % PAGE == 0

    @invariant()
    def ptes_match_model(self):
        expected = 0
        for pid, ranges in self.model.items():
            for va, size in ranges.items():
                pages = size // PAGE
                expected += pages
                for vpn in range(va // PAGE, va // PAGE + pages):
                    assert self.table.lookup(pid, vpn) is not None, \
                        f"missing PTE pid={pid} vpn={vpn}"
        assert self.table.entry_count == expected

    @invariant()
    def no_bucket_overflow(self):
        for bucket_idx, bucket in self.table._buckets.items():
            assert len(bucket.slots) <= self.table.slots_per_bucket


TestVMStateful = VMStateMachine.TestCase
TestVMStateful.settings = settings(max_examples=30,
                                   stateful_step_count=30,
                                   deadline=None)

"""Tests for the on-chip state accounting model."""

from repro.core.state_accounting import (
    MB,
    clio_onchip_state,
    gbn_onchip_state,
    rdma_onchip_state,
)
from repro.params import CBoardParams


def test_clio_state_independent_of_scale():
    small = clio_onchip_state(clients=1, hosted_bytes=1 << 30)
    huge = clio_onchip_state(clients=10_000, hosted_bytes=4 << 40)
    assert small.total_bytes == huge.total_bytes


def test_clio_state_fits_paper_budget():
    """Section 1: TBs + thousands of processes in ~1.5 MB on-chip."""
    state = clio_onchip_state(clients=1000, hosted_bytes=1 << 40)
    assert state.total_bytes < int(1.5 * MB)


def test_clio_breakdown_components():
    state = clio_onchip_state()
    for key in ("tlb", "async_buffer", "retry_dedup_ring", "mat",
                "sync_unit"):
        assert state.components[key] > 0
    params = CBoardParams()
    assert state.components["retry_dedup_ring"] == params.retry_buffer_bytes


def test_rdma_state_grows_with_clients():
    few = rdma_onchip_state(clients=16)
    many = rdma_onchip_state(clients=4096)
    assert many.total_bytes > few.total_bytes
    assert (many.components["qp_state"]
            == 4096 / 16 * few.components["qp_state"])


def test_rdma_state_grows_with_hosted_memory():
    small = rdma_onchip_state(clients=100, hosted_bytes=64 << 30)
    big = rdma_onchip_state(clients=100, hosted_bytes=4 << 40)
    assert big.components["pte_cache"] > small.components["pte_cache"]


def test_rdma_fixed_cache_mode():
    fixed = rdma_onchip_state(clients=10_000, full_working_set=False)
    # With fixed caches the totals stop growing — but then misses pay
    # PCIe crossings (Figures 4-5).
    assert fixed.total_bytes == rdma_onchip_state(
        clients=100_000, full_working_set=False).total_bytes


def test_gbn_state_linear_in_connections():
    one = gbn_onchip_state(connections=1)
    thousand = gbn_onchip_state(connections=1000)
    assert thousand.total_bytes == 1000 * one.total_bytes


def test_clio_beats_alternatives_at_scale():
    clients = 1000
    clio = clio_onchip_state(clients=clients).total_bytes
    rdma = rdma_onchip_state(clients=clients).total_bytes
    gbn = gbn_onchip_state(connections=clients).total_bytes
    assert clio < rdma
    assert clio < gbn

"""Tests for the MN atomic unit."""

import pytest

from repro.core.memory import DRAM
from repro.core.sync import ATOMIC_WIDTH, AtomicOp, AtomicUnit
from repro.params import GBPS
from repro.sim import Environment


def make_unit():
    env = Environment()
    dram = DRAM(1 << 20, access_ns=300, bandwidth_bps=120 * GBPS)
    return env, dram, AtomicUnit(env, dram)


def run(env, generator):
    return env.run(until=env.process(generator))


def test_tas_acquires_free_word():
    env, dram, unit = make_unit()
    result = run(env, unit.execute(64, AtomicOp(kind="tas")))
    assert result.success and result.old_value == 0
    assert int.from_bytes(dram.read(64, ATOMIC_WIDTH), "little") == 1


def test_tas_fails_on_held_word():
    env, dram, unit = make_unit()
    dram.write(64, (1).to_bytes(8, "little"))
    result = run(env, unit.execute(64, AtomicOp(kind="tas")))
    assert not result.success and result.old_value == 1


def test_store_releases():
    env, dram, unit = make_unit()
    dram.write(64, (1).to_bytes(8, "little"))
    run(env, unit.execute(64, AtomicOp(kind="store", value=0)))
    assert int.from_bytes(dram.read(64, 8), "little") == 0


def test_faa_returns_old_and_adds():
    env, dram, unit = make_unit()
    dram.write(0, (10).to_bytes(8, "little"))
    result = run(env, unit.execute(0, AtomicOp(kind="faa", value=5)))
    assert result.old_value == 10
    assert int.from_bytes(dram.read(0, 8), "little") == 15


def test_faa_wraps_at_64_bits():
    env, dram, unit = make_unit()
    dram.write(0, ((1 << 64) - 1).to_bytes(8, "little"))
    run(env, unit.execute(0, AtomicOp(kind="faa", value=1)))
    assert int.from_bytes(dram.read(0, 8), "little") == 0


def test_cas_success_and_failure():
    env, dram, unit = make_unit()
    dram.write(0, (7).to_bytes(8, "little"))
    ok = run(env, unit.execute(0, AtomicOp(kind="cas", expected=7, value=9)))
    assert ok.success and ok.old_value == 7
    fail = run(env, unit.execute(0, AtomicOp(kind="cas", expected=7, value=11)))
    assert not fail.success and fail.old_value == 9
    assert int.from_bytes(dram.read(0, 8), "little") == 9


def test_atomics_serialize_through_single_unit():
    env, dram, unit = make_unit()
    results = []

    def contender():
        result = yield from unit.execute(128, AtomicOp(kind="tas"))
        results.append((result.success, env.now))

    p1 = env.process(contender())
    p2 = env.process(contender())
    env.run(until=env.all_of([p1, p2]))
    # Exactly one winner, and the loser finished strictly later.
    assert sorted(r[0] for r in results) == [False, True]
    times = sorted(r[1] for r in results)
    assert times[0] < times[1]


def test_invalid_ops_rejected():
    with pytest.raises(ValueError):
        AtomicOp(kind="bogus")
    with pytest.raises(ValueError):
        AtomicOp(kind="cas", expected=1)
    with pytest.raises(ValueError):
        AtomicOp(kind="faa")
    with pytest.raises(ValueError):
        AtomicOp(kind="store")


def test_result_serialization():
    env, dram, unit = make_unit()
    result = run(env, unit.execute(0, AtomicOp(kind="tas")))
    blob = result.to_bytes()
    assert len(blob) == ATOMIC_WIDTH + 1
    assert blob[-1] == 1

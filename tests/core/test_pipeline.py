"""Tests for the deterministic fast-path pipeline."""

import pytest

from repro.core.addr import AccessType, PageSpec, Permission
from repro.core.memory import DRAM
from repro.core.pa_allocator import AsyncBuffer, PAAllocator
from repro.core.page_table import HashPageTable
from repro.core.pipeline import FastPath, Status
from repro.core.tlb import TLB
from repro.params import CBoardParams, GBPS
from repro.sim import Environment

MB = 1 << 20
PAGE = 4 * MB


def make_fast_path(pages=64, tlb_entries=8):
    env = Environment()
    params = CBoardParams()
    spec = PageSpec(PAGE)
    dram = DRAM(pages * PAGE, params.dram_access_ns, params.dram_bandwidth_bps)
    table = HashPageTable(pages, slots_per_bucket=4, overprovision=2.0)
    tlb = TLB(tlb_entries)
    pa = PAAllocator(pages)
    buffer = AsyncBuffer(env, pa, depth=min(16, pages),
                         refill_ns=params.arm_pa_alloc_ns)
    buffer.prefill()
    fast = FastPath(env, params, dram, table, tlb, buffer, spec)
    return env, fast, table, tlb


def run(env, generator):
    return env.run(until=env.process(generator))


def test_read_unallocated_va_is_invalid():
    env, fast, _, _ = make_fast_path()
    result = run(env, fast.execute(1, AccessType.READ, PAGE, 16))
    assert result.status is Status.INVALID_VA


def test_first_write_faults_then_hits():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    first = run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"abcd"))
    assert first.status is Status.OK
    assert first.faulted and first.tlb_missed
    second = run(env, fast.execute(1, AccessType.READ, PAGE, 4))
    assert second.status is Status.OK
    assert second.data == b"abcd"
    assert not second.faulted and not second.tlb_missed


def test_permission_enforced():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ)
    result = run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"abcd"))
    assert result.status is Status.PERMISSION


def test_permission_enforced_on_tlb_hit_path():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ)
    run(env, fast.execute(1, AccessType.READ, PAGE, 4))        # warm TLB
    result = run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"abcd"))
    assert result.status is Status.PERMISSION


def test_pid_isolation_between_processes():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"p1!!"))
    result = run(env, fast.execute(2, AccessType.READ, PAGE, 4))
    assert result.status is Status.INVALID_VA  # pid 2 has no mapping


def test_tlb_miss_costs_exactly_one_dram_access():
    env, fast, table, tlb = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    miss = run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"abcd"))
    hit = run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"abcd"))
    # Hit path saves the bucket fetch; difference == one bucket fetch time.
    bucket_ns = fast.dram.access_time_ns(64)
    assert miss.breakdown.tlb_miss_ns == bucket_ns
    assert hit.breakdown.tlb_miss_ns == 0


def test_fault_adds_exactly_bounded_cycles_plus_pop():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    table.insert(1, 2, Permission.READ_WRITE)
    faulting = run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"aaaa"))
    # Second access to another never-touched page also faults.
    faulting2 = run(env, fast.execute(1, AccessType.WRITE, 2 * PAGE, 4, data=b"bbbb"))
    params = CBoardParams()
    bound = int(round(params.fault_cycles * params.cycle_ns))
    assert faulting.breakdown.fault_ns == bound   # pop was immediate
    assert faulting2.breakdown.fault_ns == bound


def test_fixed_pipeline_latency_is_deterministic():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    run(env, fast.execute(1, AccessType.WRITE, PAGE, 16, data=b"x" * 16))
    latencies = set()
    for _ in range(20):
        result = run(env, fast.execute(1, AccessType.READ, PAGE, 16))
        latencies.add(result.breakdown.total_ns)
    # Steady state (TLB hit, no fault): every request takes identical time.
    assert len(latencies) == 1


def test_cross_page_access_translates_both_pages():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    table.insert(1, 2, Permission.READ_WRITE)
    va = 2 * PAGE - 8
    data = bytes(range(16))
    result = run(env, fast.execute(1, AccessType.WRITE, va, 16, data=data))
    assert result.status is Status.OK
    back = run(env, fast.execute(1, AccessType.READ, va, 16))
    assert back.data == data


def test_cross_page_write_lands_on_distinct_physical_pages():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    table.insert(1, 2, Permission.READ_WRITE)
    run(env, fast.execute(1, AccessType.WRITE, 2 * PAGE - 4, 8,
                          data=b"ABCDEFGH"))
    left = table.lookup(1, 1)
    right = table.lookup(1, 2)
    assert left.present and right.present and left.ppn != right.ppn


def test_ingestion_serializes_back_to_back_requests():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    # Two simultaneous large writes: the second's ingest waits for the first.
    data = b"z" * 1024
    results = []

    def issue():
        results.append((yield from fast.execute(
            1, AccessType.WRITE, PAGE, 1024, data=data, wire_bytes=1088)))

    p1 = env.process(issue())
    p2 = env.process(issue())
    env.run(until=env.all_of([p1, p2]))
    first, second = results
    assert second.breakdown.ingest_ns > first.breakdown.ingest_ns


def test_ingest_delay_models_flit_count():
    env, fast, _, _ = make_fast_path()
    small = fast.ingest_delay_ns(64)     # 1 flit
    env2, fast2, _, _ = make_fast_path()
    big = fast2.ingest_delay_ns(6400)    # 100 flits
    assert big == 100 * small


def test_write_requires_matching_data():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    with pytest.raises(ValueError):
        run(env, fast.execute(1, AccessType.WRITE, PAGE, 8, data=b"xy"))
    with pytest.raises(ValueError):
        run(env, fast.execute(1, AccessType.WRITE, PAGE, 8))


def test_zero_size_rejected():
    env, fast, _, _ = make_fast_path()
    with pytest.raises(ValueError):
        run(env, fast.execute(1, AccessType.READ, PAGE, 0))


def test_oom_when_no_physical_pages_left():
    env, fast, table, _ = make_fast_path(pages=2)
    # Only 2 physical pages, both pre-reserved; map and use them.
    table.insert(1, 1, Permission.READ_WRITE)
    table.insert(1, 2, Permission.READ_WRITE)
    table.insert(1, 3, Permission.READ_WRITE)
    run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"1111"))
    run(env, fast.execute(1, AccessType.WRITE, 2 * PAGE, 4, data=b"2222"))
    result = run(env, fast.execute(1, AccessType.WRITE, 3 * PAGE, 4, data=b"3333"))
    assert result.status is Status.OOM


def test_translate_only_returns_physical_address():
    env, fast, table, _ = make_fast_path()
    table.insert(1, 1, Permission.READ_WRITE)
    run(env, fast.execute(1, AccessType.WRITE, PAGE, 4, data=b"abcd"))
    ppn = table.lookup(1, 1).ppn

    def probe():
        status, pa = yield from fast.translate_only(1, AccessType.READ,
                                                    PAGE + 100)
        return status, pa

    status, pa = run(env, probe())
    assert status is Status.OK
    assert pa == ppn * PAGE + 100

"""Tests for the CAM TLB with LRU replacement."""

import pytest

from repro.core.addr import Permission
from repro.core.tlb import TLB


def test_miss_then_hit():
    tlb = TLB(entries=4)
    assert tlb.lookup(1, 10) is None
    tlb.insert(1, 10, 99, Permission.READ_WRITE)
    assert tlb.lookup(1, 10) == (99, Permission.READ_WRITE)
    assert tlb.hits == 1 and tlb.misses == 1


def test_lru_eviction_order():
    tlb = TLB(entries=2)
    tlb.insert(1, 1, 11, Permission.READ)
    tlb.insert(1, 2, 22, Permission.READ)
    tlb.lookup(1, 1)                 # 1 becomes MRU
    tlb.insert(1, 3, 33, Permission.READ)  # evicts vpn=2
    assert tlb.lookup(1, 2) is None
    assert tlb.lookup(1, 1) is not None
    assert tlb.lookup(1, 3) is not None


def test_reinsert_updates_value_without_eviction():
    tlb = TLB(entries=2)
    tlb.insert(1, 1, 11, Permission.READ)
    tlb.insert(1, 2, 22, Permission.READ)
    tlb.insert(1, 1, 111, Permission.READ_WRITE)
    assert len(tlb) == 2
    assert tlb.lookup(1, 1) == (111, Permission.READ_WRITE)


def test_pid_isolation():
    tlb = TLB(entries=8)
    tlb.insert(1, 10, 5, Permission.READ)
    assert tlb.lookup(2, 10) is None


def test_invalidate_single():
    tlb = TLB(entries=8)
    tlb.insert(1, 10, 5, Permission.READ)
    assert tlb.invalidate(1, 10)
    assert not tlb.invalidate(1, 10)
    assert tlb.lookup(1, 10) is None


def test_invalidate_pid_drops_only_that_process():
    tlb = TLB(entries=8)
    tlb.insert(1, 1, 0, Permission.READ)
    tlb.insert(1, 2, 0, Permission.READ)
    tlb.insert(2, 1, 0, Permission.READ)
    assert tlb.invalidate_pid(1) == 2
    assert tlb.lookup(2, 1) is not None
    assert len(tlb) == 1


def test_flush():
    tlb = TLB(entries=8)
    tlb.insert(1, 1, 0, Permission.READ)
    tlb.flush()
    assert len(tlb) == 0


def test_hit_rate():
    tlb = TLB(entries=4)
    tlb.insert(1, 1, 0, Permission.READ)
    tlb.lookup(1, 1)
    tlb.lookup(1, 2)
    assert tlb.hit_rate == pytest.approx(0.5)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        TLB(0)


def test_capacity_never_exceeded():
    tlb = TLB(entries=16)
    for vpn in range(1000):
        tlb.insert(1, vpn, vpn, Permission.READ)
        assert len(tlb) <= 16

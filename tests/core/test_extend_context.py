"""Focused tests for the OffloadContext API (extend path plumbing)."""

import pytest

from repro.core.cboard import CBoard
from repro.core.extend import OffloadError
from repro.params import ClioParams
from repro.sim import Environment

MB = 1 << 20


def make_board():
    env = Environment()
    board = CBoard(env, ClioParams.prototype(), dram_capacity=512 * MB)
    return env, board


def run(env, generator):
    return env.run(until=env.process(generator))


def test_read_many_preserves_order_and_content():
    env, board = make_board()

    def offload(ctx, args):
        va = yield from ctx.alloc(64 * 1024)
        for index in range(8):
            yield from ctx.write(va + index * 1024,
                                 bytes([index]) * 100)
        extents = [(va + index * 1024, 100) for index in (5, 0, 7, 2)]
        blobs = yield from ctx.read_many(extents)
        return blobs

    board.extend_path.register("gatherer", offload)
    result = run(env, board.extend_path.invoke("gatherer", None))
    assert result.ok
    assert result.value == [bytes([5]) * 100, bytes([0]) * 100,
                            bytes([7]) * 100, bytes([2]) * 100]


def test_read_many_is_faster_than_serial_reads():
    env, board = make_board()
    timings = {}

    def offload(ctx, args):
        va = yield from ctx.alloc(64 * 1024)
        yield from ctx.write(va, b"\0" * (16 * 1024))
        extents = [(va + index * 1024, 512) for index in range(16)]
        start = ctx.env.now
        yield from ctx.read_many(extents)
        timings["parallel"] = ctx.env.now - start
        start = ctx.env.now
        for extent_va, size in extents:
            yield from ctx.read(extent_va, size)
        timings["serial"] = ctx.env.now - start

    board.extend_path.register("timed", offload)
    run(env, board.extend_path.invoke("timed", None))
    assert timings["parallel"] < timings["serial"] / 2


def test_read_many_propagates_errors():
    env, board = make_board()

    def offload(ctx, args):
        va = yield from ctx.alloc(4096)
        blobs = yield from ctx.read_many([(va, 64), (1 << 45, 64)])
        return blobs

    board.extend_path.register("bad-gather", offload)
    result = run(env, board.extend_path.invoke("bad-gather", None))
    assert not result.ok
    assert "invalid_va" in result.error


def test_caller_pid_cannot_be_forged_by_args():
    """The caller PID comes from the request header, not from args."""
    env, board = make_board()
    seen = {}

    def offload(ctx, args, caller_pid):
        seen["caller"] = caller_pid
        return caller_pid
        yield  # pragma: no cover - makes this a generator

    board.extend_path.register("who-am-i", offload)
    result = run(env, board.extend_path.invoke("who-am-i", ("spoof", 999),
                                               caller_pid=42))
    assert result.ok and result.value == 42
    assert seen["caller"] == 42


def test_caller_aware_detection():
    env, board = make_board()

    def plain(ctx, args):
        yield from ctx._compute(1)
        return "plain"

    def aware(ctx, args, caller_pid):
        yield from ctx._compute(1)
        return caller_pid

    board.extend_path.register("plain", plain)
    board.extend_path.register("aware", aware)
    assert not board.extend_path.caller_aware("plain")
    assert board.extend_path.caller_aware("aware")
    assert board.extend_path.names() == ["aware", "plain"]


def test_offload_write_to_caller_memory():
    """An offload can also write the caller's RAS when given the PID."""
    env, board = make_board()

    def stamp(ctx, args, caller_pid):
        va = args
        yield from ctx.write(va, b"stamped-by-mn", pid=caller_pid)
        return True

    board.extend_path.register("stamp", stamp)

    def driver():
        response = yield from board.slow_path.handle_alloc(7, 4096)
        from repro.core.addr import AccessType
        result = yield from board.extend_path.invoke(
            "stamp", response.va, caller_pid=7)
        assert result.ok
        read = yield from board.execute_local(
            7, AccessType.READ, response.va, 13)
        return read.data

    assert run(env, driver()) == b"stamped-by-mn"

"""Tests for the DRAM content + timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import DRAM
from repro.params import GBPS

MB = 1 << 20


def make_dram(capacity=16 * MB):
    return DRAM(capacity=capacity, access_ns=300, bandwidth_bps=120 * GBPS)


def test_read_unwritten_memory_is_zero():
    dram = make_dram()
    assert dram.read(0, 64) == bytes(64)


def test_write_then_read_roundtrip():
    dram = make_dram()
    dram.write(1000, b"hello world")
    assert dram.read(1000, 11) == b"hello world"


def test_write_spanning_chunks():
    dram = make_dram()
    boundary = DRAM.CHUNK - 4
    data = bytes(range(16))
    dram.write(boundary, data)
    assert dram.read(boundary, 16) == data


def test_partial_overlap_reads():
    dram = make_dram()
    dram.write(100, b"abcdef")
    assert dram.read(102, 2) == b"cd"
    assert dram.read(98, 4) == b"\x00\x00ab"


def test_zero_clears_range():
    dram = make_dram()
    dram.write(50, b"x" * 100)
    dram.zero(60, 20)
    assert dram.read(60, 20) == bytes(20)
    assert dram.read(50, 10) == b"x" * 10


def test_out_of_range_access_rejected():
    dram = make_dram(capacity=1024)
    with pytest.raises(ValueError):
        dram.read(1020, 8)
    with pytest.raises(ValueError):
        dram.write(-1, b"a")
    with pytest.raises(ValueError):
        dram.read(0, 0)


def test_access_time_has_fixed_plus_stream_parts():
    dram = make_dram()
    base = dram.access_time_ns(0)
    assert base == 300
    big = dram.access_time_ns(120 * MB // 8)  # ~1ms of streaming
    assert big > base


def test_access_time_monotonic_in_size():
    dram = make_dram()
    times = [dram.access_time_ns(size) for size in (64, 1024, 65536, MB)]
    assert times == sorted(times)


def test_counters_track_traffic():
    dram = make_dram()
    dram.write(0, b"1234")
    dram.read(0, 2)
    assert dram.writes == 1 and dram.bytes_written == 4
    assert dram.reads == 1 and dram.bytes_read == 2


def test_sparse_backing_is_lazy():
    dram = DRAM(capacity=1 << 40, access_ns=300, bandwidth_bps=120 * GBPS)
    dram.write(1 << 39, b"far away")
    assert dram.read(1 << 39, 8) == b"far away"
    assert dram.resident_bytes <= 2 * DRAM.CHUNK


def test_invalid_construction():
    with pytest.raises(ValueError):
        DRAM(0, 300, GBPS)
    with pytest.raises(ValueError):
        DRAM(1024, -1, GBPS)
    with pytest.raises(ValueError):
        DRAM(1024, 300, 0)


@given(st.integers(min_value=0, max_value=4 * MB - 256),
       st.binary(min_size=1, max_size=256))
@settings(max_examples=100)
def test_roundtrip_property(pa, data):
    dram = make_dram()
    dram.write(pa, data)
    assert dram.read(pa, len(data)) == data

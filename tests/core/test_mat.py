"""Tests for the Match-and-Action Table."""

import pytest

from repro.core.mat import DEFAULT_RULES, MatchActionTable, MatchRule, Path
from repro.net.packet import ClioHeader, PacketType

MB = 1 << 20


def header(packet_type=PacketType.READ, pid=1):
    return ClioHeader(src="cn0", dst="mn0", request_id=1,
                      packet_type=packet_type, pid=pid)


def test_default_rules_route_three_paths():
    mat = MatchActionTable()
    assert mat.classify(header(PacketType.READ)) is Path.FAST
    assert mat.classify(header(PacketType.WRITE)) is Path.FAST
    assert mat.classify(header(PacketType.ATOMIC)) is Path.FAST
    assert mat.classify(header(PacketType.FENCE)) is Path.FAST
    assert mat.classify(header(PacketType.ALLOC)) is Path.SLOW
    assert mat.classify(header(PacketType.FREE)) is Path.SLOW
    assert mat.classify(header(PacketType.OFFLOAD)) is Path.EXTEND


def test_unmatched_types_drop():
    mat = MatchActionTable()
    assert mat.classify(header(PacketType.RESPONSE)) is Path.DROP
    assert mat.classify(header(PacketType.NACK)) is Path.DROP
    assert mat.drops == 2


def test_priority_rule_wins():
    mat = MatchActionTable()
    # Quarantine a PID range ahead of the defaults.
    mat.install(MatchRule(action=Path.DROP, pid_min=100, pid_max=200,
                          priority=1))
    assert mat.classify(header(PacketType.READ, pid=150)) is Path.DROP
    assert mat.classify(header(PacketType.READ, pid=99)) is Path.FAST
    assert mat.classify(header(PacketType.READ, pid=201)) is Path.FAST


def test_wildcard_type_rule():
    mat = MatchActionTable(install_defaults=False)
    mat.install(MatchRule(action=Path.EXTEND))
    assert mat.classify(header(PacketType.READ)) is Path.EXTEND
    assert mat.classify(header(PacketType.FREE)) is Path.EXTEND


def test_remove_rule():
    mat = MatchActionTable(install_defaults=False)
    rule = MatchRule(action=Path.FAST, packet_type=PacketType.READ)
    mat.install(rule)
    assert mat.remove(rule)
    assert not mat.remove(rule)
    assert mat.classify(header(PacketType.READ)) is Path.DROP


def test_capacity_bounded():
    mat = MatchActionTable(capacity=len(DEFAULT_RULES))
    with pytest.raises(ValueError):
        mat.install(MatchRule(action=Path.DROP))
    with pytest.raises(ValueError):
        MatchActionTable(capacity=0)


def test_lookup_counter():
    mat = MatchActionTable()
    for _ in range(5):
        mat.classify(header())
    assert mat.lookups == 5


def test_board_quarantine_via_mat():
    """Installing a DROP rule on a live board silences that PID."""
    from repro.clib.client import RemoteAccessError
    from repro.cluster import ClioCluster
    from repro.transport.clib_transport import RequestFailedError

    cluster = ClioCluster(mn_capacity=256 * MB)
    good = cluster.cn(0).process("mn0").thread()
    bad = cluster.cn(0).process("mn0").thread()
    outcome = {}

    def app():
        va_good = yield from good.ralloc(64)
        va_bad = yield from bad.ralloc(64)
        # Quarantine the second process at the MAT.
        from repro.core.mat import MatchRule, Path
        cluster.mn.mat.install(MatchRule(
            action=Path.DROP, pid_min=bad.process.pid,
            pid_max=bad.process.pid, priority=1))
        yield from good.rwrite(va_good, b"still fine")
        outcome["good"] = yield from good.rread(va_good, 10)
        try:
            yield from bad.rwrite(va_bad, b"dropped")
            outcome["bad"] = "succeeded"
        except RequestFailedError:
            outcome["bad"] = "failed"

    cluster.run(until=cluster.env.process(app()))
    assert outcome["good"] == b"still fine"
    assert outcome["bad"] == "failed"

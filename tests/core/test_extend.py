"""Tests for the extend path (computation offloading)."""

import pytest

from repro.core.cboard import CBoard
from repro.core.extend import OffloadError
from repro.params import ClioParams
from repro.sim import Environment

MB = 1 << 20


def make_board():
    env = Environment()
    board = CBoard(env, ClioParams.prototype(), dram_capacity=256 * MB)
    return env, board


def run(env, generator):
    return env.run(until=env.process(generator))


def counter_offload(ctx, args):
    """Tiny offload: allocate a counter page, bump it args times."""
    va = yield from ctx.alloc(8)
    for _ in range(args):
        value = yield from ctx.read_u64(va)
        yield from ctx.write_u64(va, value + 1)
    final = yield from ctx.read_u64(va)
    return final


def test_offload_gets_its_own_pid_and_ras():
    env, board = make_board()
    ctx1 = board.extend_path.register("a", counter_offload)
    ctx2 = board.extend_path.register("b", counter_offload)
    assert ctx1.pid != ctx2.pid
    assert ctx1.pid >= 1 << 20   # offload PID namespace


def test_duplicate_registration_rejected():
    env, board = make_board()
    board.extend_path.register("dup", counter_offload)
    with pytest.raises(ValueError):
        board.extend_path.register("dup", counter_offload)


def test_invoke_runs_handler_with_vm_access():
    env, board = make_board()
    board.extend_path.register("counter", counter_offload)
    result = run(env, board.extend_path.invoke("counter", 5))
    assert result.ok and result.value == 5


def test_invoke_unknown_offload_fails():
    env, board = make_board()
    result = run(env, board.extend_path.invoke("ghost", None))
    assert not result.ok


def test_offload_error_becomes_failed_result():
    def bad_offload(ctx, args):
        yield from ctx.read(1 << 30, 8)   # unallocated VA

    env, board = make_board()
    board.extend_path.register("bad", bad_offload)
    result = run(env, board.extend_path.invoke("bad", None))
    assert not result.ok
    assert "invalid_va" in result.error


def test_arm_offload_slower_than_fpga():
    def spin(ctx, args):
        yield from ctx._compute(1000)
        return ctx.active_ns

    env, board = make_board()
    board.extend_path.register("fpga", spin, on_fpga=True)
    board.extend_path.register("arm", spin, on_fpga=False)
    fpga_ns = run(env, board.extend_path.invoke("fpga", None)).value
    arm_ns = run(env, board.extend_path.invoke("arm", None)).value
    assert arm_ns > fpga_ns


def test_offload_alloc_free_roundtrip():
    def lifecycle(ctx, args):
        va = yield from ctx.alloc(1 * MB)
        yield from ctx.write(va, b"payload")
        data = yield from ctx.read(va, 7)
        freed = yield from ctx.free(va)
        return data, freed

    env, board = make_board()
    board.extend_path.register("life", lifecycle)
    result = run(env, board.extend_path.invoke("life", None))
    assert result.ok
    data, freed = result.value
    assert data == b"payload"
    assert freed == 1


def test_offload_shares_board_memory_with_clients():
    """An offload's writes are visible through the fast path content store."""
    def writer(ctx, args):
        va = yield from ctx.alloc(64)
        yield from ctx.write(va, b"shared!!")
        return ctx.pid, va

    env, board = make_board()
    board.extend_path.register("writer", writer)
    result = run(env, board.extend_path.invoke("writer", None))
    pid, va = result.value
    entry = board.page_table.lookup(pid, va // board.page_spec.page_size)
    assert entry is not None and entry.present
    pa = entry.ppn * board.page_spec.page_size
    assert board.dram.read(pa, 8) == b"shared!!"

"""Tests for slow-path VA allocation with overflow avoidance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addr import PageSpec, Permission
from repro.core.page_table import HashPageTable
from repro.core.va_allocator import VA_BASE, AllocationError, VAAllocator

MB = 1 << 20
PAGE = 4 * MB


def make_allocator(pages=256, k=4, over=2.0):
    table = HashPageTable(physical_pages=pages, slots_per_bucket=k,
                          overprovision=over)
    return VAAllocator(table, PageSpec(PAGE)), table


def test_allocate_returns_page_aligned_range():
    alloc, _ = make_allocator()
    outcome = alloc.allocate(pid=1, size=100)
    assert outcome.allocation.va % PAGE == 0
    assert outcome.allocation.size == PAGE
    assert outcome.allocation.va >= VA_BASE


def test_allocate_installs_invalid_ptes():
    alloc, table = make_allocator()
    outcome = alloc.allocate(pid=1, size=3 * PAGE)
    vpn0 = outcome.allocation.va // PAGE
    for vpn in range(vpn0, vpn0 + 3):
        entry = table.lookup(1, vpn)
        assert entry is not None and not entry.present


def test_allocations_do_not_overlap():
    alloc, _ = make_allocator()
    ranges = []
    for _ in range(20):
        outcome = alloc.allocate(pid=1, size=2 * PAGE)
        ranges.append((outcome.allocation.va, outcome.allocation.end))
    ranges.sort()
    for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
        assert e1 <= s2


def test_processes_have_disjoint_page_tables_but_same_vas():
    alloc, table = make_allocator()
    a = alloc.allocate(pid=1, size=PAGE).allocation
    b = alloc.allocate(pid=2, size=PAGE).allocation
    # Both processes may receive the same VA; entries are per-PID.
    assert table.lookup(1, a.va // PAGE) is not None
    assert table.lookup(2, b.va // PAGE) is not None


def test_free_releases_range_and_ptes():
    alloc, table = make_allocator()
    outcome = alloc.allocate(pid=1, size=2 * PAGE)
    va = outcome.allocation.va
    table.set_present(1, va // PAGE, ppn=7)
    allocation, freed = alloc.free(1, va)
    assert allocation.va == va
    assert freed == [7]
    assert table.lookup(1, va // PAGE) is None


def test_free_unknown_va_rejected():
    alloc, _ = make_allocator()
    with pytest.raises(KeyError):
        alloc.free(1, VA_BASE)


def test_reallocation_after_free_reuses_space():
    alloc, _ = make_allocator(pages=8, over=2.0)
    first = alloc.allocate(pid=1, size=4 * PAGE).allocation
    alloc.free(1, first.va)
    second = alloc.allocate(pid=1, size=4 * PAGE).allocation
    assert second.va == first.va


def test_lookup_finds_containing_allocation():
    alloc, _ = make_allocator()
    a = alloc.allocate(pid=1, size=2 * PAGE).allocation
    assert alloc.lookup(1, a.va + PAGE + 5) == a
    assert alloc.lookup(1, a.end) is None


def test_fixed_va_honored_when_free():
    alloc, _ = make_allocator()
    fixed = VA_BASE + 100 * PAGE
    outcome = alloc.allocate(pid=1, size=PAGE, fixed_va=fixed)
    assert outcome.allocation.va == fixed


def test_fixed_va_falls_back_when_occupied():
    alloc, _ = make_allocator()
    fixed = VA_BASE + 100 * PAGE
    alloc.allocate(pid=1, size=PAGE, fixed_va=fixed)
    outcome = alloc.allocate(pid=1, size=PAGE, fixed_va=fixed)
    # Paper limitation: Clio finds a new range instead of failing.
    assert outcome.allocation.va != fixed
    assert outcome.retries >= 1


def test_fixed_va_must_be_aligned():
    alloc, _ = make_allocator()
    with pytest.raises(ValueError):
        alloc.allocate(pid=1, size=PAGE, fixed_va=VA_BASE + 1)


def test_zero_size_rejected():
    alloc, _ = make_allocator()
    with pytest.raises(ValueError):
        alloc.allocate(pid=1, size=0)


def test_no_retries_when_table_nearly_empty():
    # Paper Figure 13: no conflicts while memory is below half utilized.
    alloc, _ = make_allocator(pages=1024, k=4, over=2.0)
    total_retries = 0
    for _ in range(16):  # ~6% of capacity
        total_retries += alloc.allocate(pid=1, size=4 * PAGE).retries
    assert total_retries == 0


def test_retries_appear_but_stay_bounded_near_full():
    # Fill to ~95% of slot capacity; retries should occur yet stay modest.
    alloc, table = make_allocator(pages=256, k=4, over=2.0)
    target_pages = int(table.total_slots * 0.95)
    allocated = 0
    max_retries = 0
    pid = 0
    while allocated < target_pages:
        outcome = alloc.allocate(pid=pid, size=PAGE)
        max_retries = max(max_retries, outcome.retries)
        allocated += 1
        pid = (pid + 1) % 8
    assert max_retries <= 100  # paper reports at most ~60 near full


def test_exhaustion_raises_allocation_error():
    alloc, table = make_allocator(pages=4, k=2, over=1.0)
    with pytest.raises(AllocationError):
        # Demand more pages than total slots can ever hold.
        for _ in range(table.total_slots + 1):
            alloc.allocate(pid=1, size=PAGE)


def test_allocated_bytes_accounting():
    alloc, _ = make_allocator()
    alloc.allocate(pid=1, size=PAGE)
    alloc.allocate(pid=1, size=3 * PAGE)
    assert alloc.allocated_bytes(1) == 4 * PAGE
    assert alloc.allocated_bytes(2) == 0


@given(st.lists(st.integers(min_value=1, max_value=3 * PAGE),
                min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_allocation_invariants_property(sizes):
    """All granted ranges are aligned, disjoint, and fully present in the PT."""
    alloc, table = make_allocator(pages=4096, k=8, over=4.0)
    granted = []
    for size in sizes:
        outcome = alloc.allocate(pid=1, size=size)
        granted.append(outcome.allocation)
    spans = sorted((a.va, a.end) for a in granted)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
    for a in granted:
        assert a.va % PAGE == 0
        for vpn in range(a.va // PAGE, a.end // PAGE):
            assert table.lookup(1, vpn) is not None

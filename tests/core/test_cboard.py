"""Integration tests for the assembled CBoard (packet path + local path)."""

import pytest

from repro.core.addr import AccessType, Permission
from repro.core.cboard import CBoard, ResponseBody
from repro.core.pipeline import Status
from repro.core.sync import AtomicOp
from repro.net.packet import ClioHeader, Packet, PacketType
from repro.net.switch import Topology
from repro.params import ClioParams
from repro.sim import Environment

MB = 1 << 20
PAGE = 4 * MB


class Collector:
    """A fake CN endpoint that records packets delivered to it."""

    def __init__(self):
        self.packets = []

    def __call__(self, packet):
        self.packets.append(packet)

    def bodies(self):
        return [packet.payload for packet in self.packets]


def make_wired_board(capacity=256 * MB):
    env = Environment()
    params = ClioParams.prototype()
    topology = Topology(env, params.network)
    board = CBoard(env, params, dram_capacity=capacity)
    board.attach(topology)
    collector = Collector()
    topology.add_node("cn0", collector)
    return env, params, topology, board, collector


def send(env, topology, params, request_id, packet_type, pid=1, va=0,
         size=0, payload=None, fragment=0, fragments=1, retry_of=None,
         corrupt=False):
    header = ClioHeader(src="cn0", dst="mn0", request_id=request_id,
                        packet_type=packet_type, pid=pid, va=va, size=size,
                        total_size=size, fragment=fragment,
                        fragments=fragments, retry_of=retry_of)
    wire = params.network.header_bytes + (
        len(payload) if isinstance(payload, (bytes, bytearray)) else 0)
    topology.send(Packet(header=header, payload=payload, wire_bytes=wire,
                         corrupt=corrupt))


def alloc_va(env, topology, params, board, collector, pid=1, size=PAGE):
    send(env, topology, params, 1000 + pid, PacketType.ALLOC, pid=pid,
         payload=(size, Permission.READ_WRITE, None))
    env.run(until=env.now + 10 ** 8)
    body = collector.packets[-1].payload
    assert body.status is Status.OK
    return body.value.va


def test_alloc_then_write_then_read_over_packets():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    send(env, topology, params, 2, PacketType.WRITE, va=va, size=4,
         payload=b"abcd")
    env.run(until=env.now + 10 ** 7)
    send(env, topology, params, 3, PacketType.READ, va=va, size=4)
    env.run(until=env.now + 10 ** 7)
    read_body = collector.packets[-1].payload
    assert read_body.status is Status.OK
    assert read_body.data == b"abcd"


def test_corrupt_packet_gets_nack():
    env, params, topology, board, collector = make_wired_board()
    send(env, topology, params, 9, PacketType.READ, va=0, size=4,
         corrupt=True)
    env.run(until=env.now + 10 ** 7)
    assert collector.packets
    assert collector.packets[-1].header.packet_type is PacketType.NACK
    assert collector.packets[-1].header.request_id == 9
    assert board.nacks_sent == 1


def test_multi_fragment_write_gets_single_ack():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    data = bytes(range(256)) * 12   # 3072B -> 3 fragments at 1500 MTU
    mtu = params.network.mtu
    offsets = [(0, mtu), (mtu, mtu), (2 * mtu, len(data) - 2 * mtu)]
    before = len(collector.packets)
    for index, (offset, chunk) in enumerate(offsets):
        send(env, topology, params, 50, PacketType.WRITE, va=va + offset,
             size=chunk, payload=data[offset:offset + chunk],
             fragment=index, fragments=3)
    env.run(until=env.now + 10 ** 7)
    acks = collector.packets[before:]
    assert len(acks) == 1
    assert acks[0].payload.status is Status.OK
    # Verify content landed correctly.
    send(env, topology, params, 51, PacketType.READ, va=va, size=len(data))
    env.run(until=env.now + 10 ** 7)
    read_fragments = [packet for packet in collector.packets
                      if packet.header.request_id == 51]
    got = b"".join(packet.payload.data for packet in
                   sorted(read_fragments, key=lambda p: p.header.fragment))
    assert got == data


def test_large_read_response_is_fragmented():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    send(env, topology, params, 60, PacketType.WRITE, va=va, size=100,
         payload=b"y" * 100)
    env.run(until=env.now + 10 ** 7)
    send(env, topology, params, 61, PacketType.READ, va=va, size=4000)
    env.run(until=env.now + 10 ** 7)
    fragments = [packet for packet in collector.packets
                 if packet.header.request_id == 61]
    assert len(fragments) == 3   # 4000B / 1500 MTU
    assert all(packet.header.fragments == 3 for packet in fragments)


def test_retried_write_dedups_against_executed_original():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    send(env, topology, params, 70, PacketType.WRITE, va=va, size=4,
         payload=b"v1!!")
    env.run(until=env.now + 10 ** 7)
    # Another writer updates the same location.
    send(env, topology, params, 71, PacketType.WRITE, va=va, size=4,
         payload=b"v2!!")
    env.run(until=env.now + 10 ** 7)
    # A stale retry of request 70 arrives late; it must NOT undo v2.
    send(env, topology, params, 72, PacketType.WRITE, va=va, size=4,
         payload=b"v1!!", retry_of=70)
    env.run(until=env.now + 10 ** 7)
    send(env, topology, params, 73, PacketType.READ, va=va, size=4)
    env.run(until=env.now + 10 ** 7)
    assert collector.packets[-1].payload.data == b"v2!!"
    assert board.retry_buffer.dedup_hits == 1


def test_retried_atomic_returns_cached_result():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    send(env, topology, params, 80, PacketType.ATOMIC, va=va,
         payload=AtomicOp(kind="faa", value=5))
    env.run(until=env.now + 10 ** 7)
    first = collector.packets[-1].payload.atomic
    assert first.old_value == 0
    # Retry must not add again; it returns the cached old value.
    send(env, topology, params, 81, PacketType.ATOMIC, va=va,
         payload=AtomicOp(kind="faa", value=5), retry_of=80)
    env.run(until=env.now + 10 ** 7)
    cached = collector.packets[-1].payload.atomic
    assert cached.old_value == 0
    send(env, topology, params, 82, PacketType.ATOMIC, va=va,
         payload=AtomicOp(kind="faa", value=0))
    env.run(until=env.now + 10 ** 7)
    assert collector.packets[-1].payload.atomic.old_value == 5  # only one add


def test_fence_blocks_later_requests_until_drain():
    """The MN fence orders requests by *arrival*: a fence arriving while a
    write is in the pipeline completes after it, and requests arriving
    after the fence wait for the drain.  Packets are injected directly at
    the board so arrival order is exact (the network may reorder; send-
    side ordering is CLib's job)."""
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    before = len(collector.packets)

    def inject(request_id, packet_type, delay, **kwargs):
        yield env.timeout(delay)
        header = ClioHeader(src="cn0", dst="mn0", request_id=request_id,
                            packet_type=packet_type, pid=1, va=va,
                            size=kwargs.get("size", 0),
                            total_size=kwargs.get("size", 0))
        board.receive(Packet(header=header, payload=kwargs.get("payload"),
                             wire_bytes=64 + kwargs.get("size", 0)))

    # Record MN-side completion order (response *generation*, immune to
    # response-path network jitter).
    completion_order = []
    original_send = board._send

    def recording_send(dst, request_id, packet_type, body, **kwargs):
        completion_order.append(request_id)
        original_send(dst, request_id, packet_type, body, **kwargs)

    board._send = recording_send

    # Write arrives first; fence lands mid-pipeline; read right behind it.
    env.process(inject(90, PacketType.WRITE, 0, size=1024,
                       payload=b"w" * 1024))
    env.process(inject(91, PacketType.FENCE, 10))
    env.process(inject(92, PacketType.READ, 20, size=4))
    env.run(until=env.now + 10 ** 8)
    order = [request_id for request_id in completion_order
             if request_id in (90, 91, 92)]
    assert order == [90, 91, 92]


def test_invalid_va_read_returns_error_status():
    env, params, topology, board, collector = make_wired_board()
    send(env, topology, params, 95, PacketType.READ, va=123 * PAGE, size=4)
    env.run(until=env.now + 10 ** 7)
    assert collector.packets[-1].payload.status is Status.INVALID_VA


def test_free_then_access_fails():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    send(env, topology, params, 96, PacketType.WRITE, va=va, size=4,
         payload=b"data")
    env.run(until=env.now + 10 ** 7)
    send(env, topology, params, 97, PacketType.FREE, va=va)
    env.run(until=env.now + 10 ** 8)
    send(env, topology, params, 98, PacketType.READ, va=va, size=4)
    env.run(until=env.now + 10 ** 7)
    assert collector.packets[-1].payload.status is Status.INVALID_VA


def test_execute_local_matches_packet_semantics():
    env = Environment()
    board = CBoard(env, ClioParams.prototype(), dram_capacity=256 * MB)
    outcome = {}

    def driver():
        response = yield from board.slow_path.handle_alloc(1, 64)
        va = response.va
        yield from board.execute_local(1, AccessType.WRITE, va, 5, b"local")
        result = yield from board.execute_local(1, AccessType.READ, va, 5)
        outcome["data"] = result.data

    env.run(until=env.process(driver()))
    assert outcome["data"] == b"local"


def test_stats_shape():
    env, params, topology, board, collector = make_wired_board()
    stats = board.stats()
    for key in ("requests_served", "tlb_hit_rate", "page_faults",
                "memory_utilization", "pt_entries", "alive", "crashes",
                "restarts", "packets_dropped_dead", "responses_discarded"):
        assert key in stats


# -- crash / restart ---------------------------------------------------------------


def test_crashed_board_drops_packets_silently():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    send(env, topology, params, 200, PacketType.WRITE, va=va, size=4,
         payload=b"live")
    env.run(until=env.now + 10 ** 7)
    before = len(collector.packets)
    board.crash()
    send(env, topology, params, 201, PacketType.READ, va=va, size=4)
    env.run(until=env.now + 10 ** 8)
    assert len(collector.packets) == before   # no response, no NACK
    assert board.packets_dropped_dead == 1
    assert not board.alive and board.crashes == 1


def test_restart_preserves_page_table_and_data():
    """The crash-recovery argument: the page table (and DRAM) are the only
    durable MN state, so after a restart the same VA reads back the same
    bytes — nothing to replay, caches re-warm on demand."""
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    send(env, topology, params, 210, PacketType.WRITE, va=va, size=4,
         payload=b"keep")
    env.run(until=env.now + 10 ** 7)
    entries_before = board.page_table.entry_count
    board.crash()
    assert len(board.tlb) == 0                 # volatile: wiped
    assert len(board.retry_buffer) == 0        # volatile: wiped
    assert board.page_table.entry_count == entries_before   # durable
    board.restart()
    send(env, topology, params, 211, PacketType.READ, va=va, size=4)
    env.run(until=env.now + 10 ** 7)
    body = collector.packets[-1].payload
    assert body.status is Status.OK
    assert body.data == b"keep"


def test_crash_mid_request_discards_inflight_response():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    before = len(collector.packets)
    # Inject directly at the board so the crash provably lands while the
    # write is in the pipeline (no network delay to reason about).
    header = ClioHeader(src="cn0", dst="mn0", request_id=220,
                        packet_type=PacketType.WRITE, pid=1, va=va,
                        size=4, total_size=4)
    board.receive(Packet(header=header, payload=b"lost", wire_bytes=68))
    env.schedule_callback(50, board.crash)     # pipeline takes far longer
    env.run(until=env.now + 10 ** 8)
    assert board.responses_discarded >= 1
    assert len(collector.packets) == before    # the response never left
    assert board._inflight == 0                # bookkeeping not corrupted


def test_crash_restart_state_machine():
    env, params, topology, board, collector = make_wired_board()
    with pytest.raises(ValueError):
        board.restart()                        # not crashed
    board.crash()
    with pytest.raises(ValueError):
        board.crash()                          # already crashed
    board.restart()
    assert board.alive and board.crashes == 1 and board.restarts == 1


def test_board_serves_normally_after_crash_restart_cycle():
    env, params, topology, board, collector = make_wired_board()
    va = alloc_va(env, topology, params, board, collector)
    board.crash()
    board.restart()
    send(env, topology, params, 230, PacketType.WRITE, va=va, size=4,
         payload=b"back")
    env.run(until=env.now + 10 ** 7)
    send(env, topology, params, 231, PacketType.READ, va=va, size=4)
    env.run(until=env.now + 10 ** 7)
    assert collector.packets[-1].payload.data == b"back"

"""Tests for the PA free-list and async free-page buffer."""

import pytest

from repro.core.pa_allocator import (
    AsyncBuffer,
    DoubleFreeError,
    OutOfMemoryError,
    PAAllocator,
)
from repro.sim import Environment


def test_freelist_allocate_and_free():
    pa = PAAllocator(physical_pages=4)
    pages = [pa.allocate() for _ in range(4)]
    assert sorted(pages) == [0, 1, 2, 3]
    with pytest.raises(OutOfMemoryError):
        pa.allocate()
    pa.free(2)
    assert pa.allocate() == 2


def test_free_rejects_out_of_range_ppn():
    pa = PAAllocator(physical_pages=4)
    with pytest.raises(ValueError):
        pa.free(4)


def test_free_rejects_double_free():
    """Regression: a double free used to silently duplicate the page on
    the free list, breaking conservation two allocations later."""
    pa = PAAllocator(physical_pages=4)
    ppn = pa.allocate()
    pa.free(ppn)
    with pytest.raises(DoubleFreeError):
        pa.free(ppn)
    with pytest.raises(DoubleFreeError):
        pa.free(3)  # never allocated => still free
    # The rejected frees left no duplicate behind.
    assert pa.free_pages == 4
    assert sorted(pa.free_ppns()) == [0, 1, 2, 3]
    assert isinstance(DoubleFreeError("x"), ValueError)


def test_utilization_tracks_mapped_pages():
    pa = PAAllocator(physical_pages=10)
    assert pa.utilization == 0.0
    for _ in range(5):
        pa.allocate()
    assert pa.utilization == pytest.approx(0.5)


def test_prefill_stocks_buffer():
    env = Environment()
    pa = PAAllocator(physical_pages=100)
    buffer = AsyncBuffer(env, pa, depth=16, refill_ns=15_000)
    buffer.prefill()
    assert len(buffer) == 16
    assert pa.free_pages == 84


def test_pop_is_immediate_when_stocked():
    env = Environment()
    pa = PAAllocator(physical_pages=100)
    buffer = AsyncBuffer(env, pa, depth=8, refill_ns=15_000)
    buffer.prefill()
    got = []

    def fault_handler():
        ppn = yield buffer.pop()
        got.append((ppn, env.now))

    env.process(fault_handler())
    env.run(until=10)
    assert got and got[0][1] == 0  # no waiting: page was pre-reserved
    assert buffer.underruns == 0


def test_refill_replenishes_after_pops():
    env = Environment()
    pa = PAAllocator(physical_pages=100)
    buffer = AsyncBuffer(env, pa, depth=4, refill_ns=1_000)

    def drain():
        for _ in range(4):
            yield buffer.pop()

    env.process(drain())
    env.run(until=1_000_000)
    assert len(buffer) == 4  # background refill restored the stock


def test_underrun_counted_when_memory_exhausted():
    env = Environment()
    pa = PAAllocator(physical_pages=2)
    buffer = AsyncBuffer(env, pa, depth=2, refill_ns=1_000)
    buffer.prefill()
    got = []

    def drain():
        for _ in range(3):
            ppn = yield buffer.pop()
            got.append(ppn)

    env.process(drain())
    env.run(until=100_000)
    assert len(got) == 2          # third pop can never be satisfied
    assert buffer.underruns == 1


def test_return_unused_recycles_page():
    env = Environment()
    pa = PAAllocator(physical_pages=10)
    buffer = AsyncBuffer(env, pa, depth=2, refill_ns=1_000)
    buffer.prefill()

    def proc():
        ppn = yield buffer.pop()
        buffer.return_unused(ppn)

    env.process(proc())
    env.run(until=10)
    assert pa.free_pages == 9  # 2 still reserved in buffer after one recycle...

def test_invalid_construction():
    env = Environment()
    pa = PAAllocator(physical_pages=4)
    with pytest.raises(ValueError):
        PAAllocator(0)
    with pytest.raises(ValueError):
        AsyncBuffer(env, pa, depth=0, refill_ns=10)
    with pytest.raises(ValueError):
        AsyncBuffer(env, pa, depth=1, refill_ns=-1)

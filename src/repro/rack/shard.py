"""Consistent-hash sharding of the region space across many CBoards.

The rack tier replaces the controller's least-utilized linear scan with a
classic consistent-hash ring: every board contributes ``vnodes`` virtual
points, a region's *home* is the first point clockwise from its key, and
board add/remove moves only the arcs adjacent to the touched points —
O(regions / boards) regions per membership change instead of a full
reshuffle.

Placement is not always the home, though: the home may be full, draining,
or believed dead, and load-balancing migrations deliberately move hot
regions elsewhere.  The ring therefore carries an **override directory**
— region id -> actual board — for every region living away from its home.
Lookups consult the directory first; membership's ``rebalance_to_home``
walks it to move strays back when capacity allows.

Hashing is ``blake2b`` over stable strings, so ring layout is a pure
function of (board names, vnodes, salt): deterministic across processes,
engines, and Python hash-randomization seeds.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Iterator, Optional

#: Digest width: 8 bytes gives a 64-bit ring — collision-free in practice
#: for thousands of vnodes while staying cheap to compare.
_DIGEST_BYTES = 8


class ShardRing:
    """Consistent-hash ring with virtual nodes plus an override directory."""

    def __init__(self, vnodes: int = 32, salt: str = "clio-rack"):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.salt = salt
        self._points: list[int] = []        # sorted vnode hashes
        self._owners: list[str] = []        # board owning each point
        self._boards: set[str] = set()
        self._overrides: dict[int, str] = {}   # region_id -> actual board
        self.membership_changes = 0

    # -- hashing ------------------------------------------------------------------

    def _hash(self, text: str) -> int:
        digest = blake2b(f"{self.salt}/{text}".encode(),
                         digest_size=_DIGEST_BYTES).digest()
        return int.from_bytes(digest, "big")

    def key_point(self, key: int) -> int:
        """Ring position of a region key (region ids are the keys)."""
        return self._hash(f"region/{key}")

    # -- membership ---------------------------------------------------------------

    def add_board(self, name: str) -> None:
        """Insert a board's virtual points (idempotent-hostile: raises on
        a duplicate, so membership bugs surface instead of hiding)."""
        if name in self._boards:
            raise ValueError(f"board {name!r} already on the ring")
        self._boards.add(name)
        for vnode in range(self.vnodes):
            point = self._hash(f"board/{name}#{vnode}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, name)
        self.membership_changes += 1

    def remove_board(self, name: str) -> None:
        if name not in self._boards:
            raise KeyError(f"board {name!r} not on the ring")
        self._boards.discard(name)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != name]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        self.membership_changes += 1

    @property
    def boards(self) -> list[str]:
        return sorted(self._boards)

    def __len__(self) -> int:
        return len(self._boards)

    def __contains__(self, name: str) -> bool:
        return name in self._boards

    # -- lookup -------------------------------------------------------------------

    def home(self, key: int) -> str:
        """The board owning ``key``'s arc (ignores overrides)."""
        if not self._points:
            raise LookupError("ring is empty")
        index = bisect.bisect_right(self._points, self.key_point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preference(self, key: int,
                   exclude: Optional[set] = None) -> Iterator[str]:
        """Distinct boards in ring order starting at ``key``'s home.

        The placement walk: the first yielded board is the home; each
        further one is the next distinct owner clockwise — the natural
        spill order when the home is full, draining, or dead.
        """
        if not self._points:
            return
        start = bisect.bisect_right(self._points, self.key_point(key))
        seen = set() if exclude is None else set(exclude)
        count = len(self._points)
        for step in range(count):
            owner = self._owners[(start + step) % count]
            if owner in seen:
                continue
            seen.add(owner)
            yield owner

    def locate(self, region_id: int) -> str:
        """Actual board of a region: override if present, else home."""
        override = self._overrides.get(region_id)
        if override is not None:
            return override
        return self.home(region_id)

    # -- override directory ---------------------------------------------------------

    def record_placement(self, region_id: int, board: str) -> None:
        """Note where a region actually landed; keeps the directory
        minimal (an entry exists only while placement differs from home)."""
        if board == self.home(region_id):
            self._overrides.pop(region_id, None)
        else:
            self._overrides[region_id] = board

    def clear_override(self, region_id: int) -> None:
        self._overrides.pop(region_id, None)

    def refresh_overrides(self, placements: dict[int, str]) -> None:
        """Rebuild the directory after a membership change.

        Ring mutations move arcs, so a region that *was* at its home may
        suddenly be a stray (and vice versa) without any placement having
        changed.  Given the authoritative region -> board map, this
        recomputes exactly the off-home set — what ``locate`` and the
        rebalancer rely on being truthful.
        """
        self._overrides = {
            region_id: board for region_id, board in placements.items()
            if not self._points or board != self.home(region_id)
        }

    def override_for(self, region_id: int) -> Optional[str]:
        return self._overrides.get(region_id)

    def overrides(self) -> dict[int, str]:
        """Snapshot of the directory (region id -> off-home board)."""
        return dict(self._overrides)

    @property
    def override_count(self) -> int:
        return len(self._overrides)

    # -- diagnostics ------------------------------------------------------------------

    def arc_share(self) -> dict[str, float]:
        """Fraction of the ring each board owns — vnode balance check."""
        if not self._points:
            return {}
        span = 1 << (_DIGEST_BYTES * 8)
        # The arc ending at points[i] (keys hashing into it) belongs to
        # owners[i]; the first point also owns the wrap-around arc.
        shares: dict[str, float] = {name: 0.0 for name in self._boards}
        for index in range(len(self._points)):
            prev = self._points[index - 1] if index else (
                self._points[-1] - span)
            shares[self._owners[index]] += (self._points[index] - prev) / span
        return shares

    def stats(self) -> dict:
        return {
            "boards": len(self._boards),
            "vnodes": self.vnodes,
            "points": len(self._points),
            "overrides": len(self._overrides),
            "membership_changes": self.membership_changes,
        }

"""Elastic rack membership: boards join, drain, and get evicted live.

The membership layer is the control loop that keeps the shard ring, the
controller, and reality in agreement while traffic is running:

* :meth:`RackMembership.add_board` brings a (pre-attached spare or
  recovered) board into service — onto the ring, into the controller's
  placement set — and then pulls its fair share of regions over by
  rebalancing override-directory strays toward their new homes;
* :meth:`RackMembership.drain_board` takes a board out gracefully:
  placement stops immediately, its regions migrate off in rate-limited
  batches (bounded concurrent copies, a breather between batches so
  foreground traffic keeps its tail), and only an empty board leaves the
  controller;
* the periodic sweep watches the health monitor's beliefs.  A board dead
  longer than ``lease_expiry_ns`` gets **evicted**: its ring points go
  away and every region it backed is re-allocated zero-filled on a live
  ring successor (the data died with the board — this is re-sharding,
  not migration).  If the board later comes back, the sweep wipes the
  orphaned allocations its durable page table still holds and rejoins it
  as a fresh member.

Every join, drain, and eviction bumps the **epoch** — the cheap
generation number tests and metrics use to observe membership churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.distributed.controller import GlobalController
from repro.rack.shard import ShardRing


@dataclass(frozen=True)
class RackConfig:
    """Shape and policy of the rack tier.

    ``boards`` boards start in service; ``spares`` more are built and
    cabled to the fabric but kept out of the ring until a membership
    event adds them.  Migration limits apply to drains and rebalances
    (evictions copy nothing, so they are not rate-limited).
    """

    boards: int = 8
    tors: int = 2
    spares: int = 0
    vnodes: int = 32
    pressure_threshold: float = 0.85
    #: A board dead this long past detection loses its regions.
    lease_expiry_ns: int = 400_000
    #: Live-migration copies in flight at once during a drain/rebalance.
    max_concurrent_migrations: int = 2
    #: Regions per drain batch; between batches the drain pauses.
    migration_batch: int = 4
    #: Breather between drain batches, for foreground tail latency.
    migration_pause_ns: int = 50_000
    #: Membership sweep cadence (health-belief polling).
    sweep_interval_ns: int = 100_000
    spine_rate_bps: Optional[int] = None
    spine_forward_ns: Optional[int] = None

    def __post_init__(self):
        if self.boards < 1:
            raise ValueError(f"need at least one board, got {self.boards}")
        if self.tors < 1:
            raise ValueError(f"need at least one ToR, got {self.tors}")
        if self.spares < 0:
            raise ValueError(f"spares must be >= 0, got {self.spares}")
        if self.max_concurrent_migrations < 1:
            raise ValueError("max_concurrent_migrations must be >= 1")
        if self.migration_batch < 1:
            raise ValueError("migration_batch must be >= 1")


class DrainError(Exception):
    """A drain could not empty the board (no capacity elsewhere)."""


class RackMembership:
    """Join/drain/evict state machine over a controller and its ring."""

    def __init__(self, env, controller: GlobalController, ring: ShardRing,
                 config: RackConfig, health=None):
        self.env = env
        self.controller = controller
        self.ring = ring
        self.config = config
        self.health = health
        self.epoch = 0
        self.evictions = 0            # regions re-homed off dead boards
        self.drains = 0               # boards drained out
        self.joins = 0                # boards brought into service
        self.rebalanced = 0           # strays moved home after a join
        #: board -> sim-time its health belief first went dead.
        self._dead_since: dict[str, int] = {}
        #: evicted board -> [(pid, va)] orphaned allocations to wipe on rejoin.
        self._orphans: dict[str, list[tuple[int, int]]] = {}
        self._draining: set[str] = set()
        self._sweeping = False

    # -- joins -------------------------------------------------------------------

    def add_board(self, board, rebalance: bool = True):
        """Process-generator: bring a board into service.

        Handles both a fresh spare (registers with the controller, which
        puts it on the ring) and a recovered evicted board (wipes the
        orphaned allocations its durable page table kept, then re-rings
        it).  With ``rebalance`` (default) the join then pulls strays
        toward their new homes, so the newcomer actually takes load.
        """
        name = board.name
        if name in self.controller._boards:
            # Rejoin after eviction: reclaim the orphaned allocations
            # first so the board comes back with its real free capacity.
            for pid, va in self._orphans.pop(name, []):
                yield from board.slow_path.handle_free(pid, va)
            self._dead_since.pop(name, None)
            if name not in self.ring:
                self.ring.add_board(name)
                self._refresh_directory()
        else:
            self.controller.add_board(board)
        self.controller.draining.discard(name)
        self._draining.discard(name)
        self.joins += 1
        self.epoch += 1
        moved = 0
        if rebalance:
            moved = yield from self.rebalance_to_home()
        return moved

    def rebalance_to_home(self):
        """Process-generator: migrate override-directory strays home.

        Walks a snapshot of the ring's override directory and moves each
        region whose home is live and has room, rate-limited exactly like
        a drain.  Returns the number of regions moved.
        """
        strays = []
        for region_id, actual in sorted(self.ring.overrides().items()):
            home = self.ring.home(region_id)
            if home == actual or home not in self.controller._boards:
                continue
            if home in self.controller.draining:
                continue
            if not self.controller._alive(home):
                continue
            strays.append((region_id, home))
        moved = yield from self._run_batched(strays)
        self.rebalanced += moved
        return moved

    # -- drains ------------------------------------------------------------------

    def drain_board(self, name: str):
        """Process-generator: migrate everything off ``name``, then
        deregister it.

        Placement stops the moment the drain starts (the board leaves
        the ring and joins the controller's ``draining`` set), so the
        region population only shrinks while batches run.  Raises
        :class:`DrainError` — leaving the board draining but in place —
        if some regions cannot move because nowhere has capacity.
        """
        if name not in self.controller._boards:
            raise KeyError(f"unknown board {name!r}")
        if name in self._draining:
            raise ValueError(f"board {name!r} is already draining")
        self._draining.add(name)
        self.controller.draining.add(name)
        if name in self.ring:
            self.ring.remove_board(name)
            self._refresh_directory()
        self.epoch += 1
        jobs = []
        for region_id in self.controller.regions_on(name):
            lease = self.controller._leases.get(region_id)
            if lease is None:
                continue
            target = self.controller._pick_target(
                exclude=name, size=lease.size, key=region_id)
            if target is None:
                self._draining.discard(name)
                raise DrainError(
                    f"no board can take region {region_id} off {name!r}")
            jobs.append((region_id, target))
        yield from self._run_batched(jobs)
        left = self.controller.regions_on(name)
        if left:
            self._draining.discard(name)
            raise DrainError(
                f"{len(left)} regions still on {name!r} after the drain")
        self.controller.remove_board(name)
        self._draining.discard(name)
        self.controller.draining.discard(name)
        self.drains += 1
        self.epoch += 1

    def _refresh_directory(self) -> None:
        """Keep the ring's override directory truthful after arc moves."""
        self.ring.refresh_overrides(
            {region_id: lease.mn
             for region_id, lease in self.controller._leases.items()})

    def _run_batched(self, jobs):
        """Process-generator: run (region, target) migrations rate-limited.

        ``migration_batch`` regions per batch, at most
        ``max_concurrent_migrations`` copies in flight within a batch,
        and a ``migration_pause_ns`` breather between batches.  Returns
        the count of successful moves.
        """
        config = self.config
        moved = 0
        for start in range(0, len(jobs), config.migration_batch):
            batch = jobs[start:start + config.migration_batch]
            for offset in range(0, len(batch),
                                config.max_concurrent_migrations):
                window = batch[offset:offset
                               + config.max_concurrent_migrations]
                procs = [self.env.process(
                    self.controller.migrate_region(region_id, target))
                    for region_id, target in window]
                yield self.env.all_of(procs)
                moved += sum(1 for proc in procs if proc.value)
            if start + config.migration_batch < len(jobs):
                yield self.env.timeout(config.migration_pause_ns)
        return moved

    # -- the health sweep ----------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic eviction/rejoin sweep (needs ``health``)."""
        if self.health is None:
            raise ValueError("membership sweep needs a health monitor")
        if not self._sweeping:
            self._sweeping = True
            self.env.process(self._sweep())

    def stop(self) -> None:
        self._sweeping = False

    def _sweep(self):
        while self._sweeping:
            yield self.env.timeout(self.config.sweep_interval_ns)
            if not self._sweeping:
                return
            yield from self._sweep_once()

    def _sweep_once(self):
        """Process-generator: one pass of belief-driven repair."""
        now = self.env.now
        for name in list(self.controller._boards):
            if name in self._draining:
                continue
            alive = self.health.is_alive(name)
            if alive:
                if name in self._orphans:
                    # An evicted board came back: wipe and rejoin it.
                    board = self.controller._boards[name].board
                    yield from self.add_board(board)
                else:
                    self._dead_since.pop(name, None)
                continue
            if name in self._orphans:
                continue      # already evicted, still dark
            since = self._dead_since.setdefault(name, now)
            if now - since < self.config.lease_expiry_ns:
                continue
            yield from self._evict_board(name)

    def _evict_board(self, name: str):
        """Process-generator: re-shard a dead board's regions.

        The board stays registered with the controller (it may come
        back) but leaves the ring, and every region it backed restarts
        zero-filled on a live successor.  The orphaned allocations its
        durable page table still holds are recorded for the rejoin wipe.
        """
        if name in self.ring:
            self.ring.remove_board(name)
            self._refresh_directory()
        orphans = self._orphans.setdefault(name, [])
        for region_id in self.controller.regions_on(name):
            lease = self.controller._leases.get(region_id)
            if lease is None:
                continue
            pid = lease.pid
            old = yield from self.controller.evict_region(region_id)
            if old is not None:
                orphans.append((pid, old[1]))
                self.evictions += 1
        self.epoch += 1

    # -- diagnostics -----------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "joins": self.joins,
            "drains": self.drains,
            "evictions": self.evictions,
            "rebalanced": self.rebalanced,
            "draining": sorted(self._draining),
            "evicted": sorted(self._orphans),
        }

"""Rack-scale tier: consistent-hash sharding, ToR/spine fabric wiring,
and elastic board membership with live region migration.

Built on the existing pieces — :mod:`repro.distributed` leases,
:mod:`repro.net.rack` fabric, :mod:`repro.faults.health` beliefs — this
package is the scale-out layer: a :class:`RackTier` on a
``ClioCluster(rack=...)`` shards the region space across 8–64 CBoards
and keeps serving (and verifying) while boards join, drain, and die.
"""

from repro.rack.membership import DrainError, RackConfig, RackMembership
from repro.rack.shard import ShardRing
from repro.rack.tier import RackTier

__all__ = [
    "DrainError",
    "RackConfig",
    "RackMembership",
    "RackTier",
    "ShardRing",
]

"""The rack tier: ring + controller + membership bundled onto a cluster.

``RackTier`` is what ``ClioCluster(rack=...)`` builds: the shard ring,
a ring-driven :class:`~repro.distributed.controller.GlobalController`
over the in-service boards, the membership state machine, and the
``rack.*`` metrics that expose them.  Spare boards are constructed and
cabled to the fabric up front (creating partitions mid-run is not a
thing the engine does) but stay out of the ring and the controller until
membership adds them.
"""

from __future__ import annotations

from repro.distributed.controller import GlobalController
from repro.rack.membership import RackConfig, RackMembership
from repro.rack.shard import ShardRing


class RackTier:
    """Sharded placement + elastic membership over a cluster's boards."""

    def __init__(self, cluster, config: RackConfig):
        self.cluster = cluster
        self.config = config
        if len(cluster.mns) < config.boards + config.spares:
            raise ValueError(
                f"cluster has {len(cluster.mns)} boards, rack config needs "
                f"{config.boards} in service + {config.spares} spares")
        self.ring = ShardRing(vnodes=config.vnodes)
        in_service = cluster.mns[:config.boards]
        qos = getattr(cluster.params, "qos", None)
        self.controller = GlobalController(
            cluster.env, in_service,
            pressure_threshold=config.pressure_threshold,
            shard=self.ring,
            qos=qos if qos is not None and qos.tenants else None,
            registry=cluster.metrics)
        self.membership = RackMembership(
            cluster.env, self.controller, self.ring, config)
        self._register_metrics(cluster.metrics)
        self._started = False

    def _register_metrics(self, registry) -> None:
        scope = registry.scope("rack")
        scope.gauge("boards_in_service", fn=lambda: len(self.ring))
        scope.gauge("epoch", fn=lambda: self.membership.epoch)
        scope.gauge("overrides", fn=lambda: self.ring.override_count)
        scope.gauge("draining",
                    fn=lambda: len(self.controller.draining))
        scope.counter("migrations", fn=lambda: self.controller.migrations)
        scope.counter("failed_migrations",
                      fn=lambda: self.controller.failed_migrations)
        scope.counter("aborted_migrations",
                      fn=lambda: self.controller.aborted_migrations)
        scope.counter("evictions", fn=lambda: self.membership.evictions)
        scope.counter("drains", fn=lambda: self.membership.drains)
        scope.counter("joins", fn=lambda: self.membership.joins)
        scope.counter("rebalanced", fn=lambda: self.membership.rebalanced)
        scope.counter("ring_membership_changes",
                      fn=lambda: self.ring.membership_changes)

    def start(self, interval_ns: int = 100_000,
              miss_threshold: int = 3) -> None:
        """Wire health beliefs in and start the membership sweep.

        The rack tier always runs with the health monitor: placement
        must skip dark boards and the eviction sweep is belief-driven.
        Idempotent.
        """
        if self._started:
            return
        health = self.cluster.enable_health_monitor(
            interval_ns=interval_ns, miss_threshold=miss_threshold)
        self.controller.health = health
        self.membership.health = health
        self.membership.start()
        self._started = True

    def stop(self) -> None:
        self.membership.stop()
        self._started = False

    # -- conveniences -------------------------------------------------------------

    @property
    def spares(self) -> list:
        """Boards cabled to the fabric but not (yet) in service."""
        names = set(self.controller._boards)
        return [board for board in self.cluster.mns
                if board.name not in names]

    def spare(self, index: int = 0):
        spares = self.spares
        if not spares:
            raise LookupError("no spare boards left")
        return spares[index]

    def stats(self) -> dict:
        return {
            "ring": self.ring.stats(),
            "membership": self.membership.stats(),
            "migrations": self.controller.migrations,
            "failed_migrations": self.controller.failed_migrations,
            "aborted_migrations": self.controller.aborted_migrations,
        }

"""Partitioned discrete-event engine: per-LP wheels + conservative lookahead.

The flat :class:`~repro.sim.core.Environment` keeps every event in one
global heap.  This module splits the model into *logical processes*
(partitions) in the classic PDES mold: each partition owns its own event
wheel, and cross-partition interactions flow over declared *lookahead
edges* — link propagation delays in ``repro.net`` — which bound how far
one partition's present can reach into another's future.

Two execution modes share this structure:

* **Single-process** (:meth:`PartitionedEnvironment.run`): one scheduler
  dispatches the globally minimal ``(time, priority, seq)`` key across all
  wheels.  The sequence counter is shared, so the dispatch order is
  *bit-identical* to the flat engine's single heap — same timestamps, same
  tie-breaks, same RNG draw order — while each wheel stays small and runs
  of same-partition events drain without rescanning the others.

* **Parallel** (:class:`~repro.sim.parallel.ParallelExecutor`): partitions
  advance concurrently inside conservative lookahead windows, exchanging
  cross-partition messages only at window barriers.  That mode requires
  the model to route all cross-partition traffic through :class:`Channel`
  objects with picklable payloads.

Determinism contract
--------------------
Events carry globally ordered ``(time, priority, seq)`` keys.  In
single-process mode ``seq`` comes from one shared counter, so any two
events — same partition or not — compare exactly as they would in the flat
engine.  The drain loop only ever dispatches the global minimum: it picks
the wheel with the smallest head key, caches the runner-up head as a
*bound*, and drains the chosen wheel while its head stays at or below the
bound.  Scheduling into a foreign wheel below the bound (possible for
URGENT interrupts at the current timestamp) raises a violation flag that
forces an immediate re-pick, so the invariant survives arbitrary callback
behavior.  When the picked wheel is the only non-empty one there is no
runner-up bound, so *any* foreign schedule raises the flag — the re-pick
is cheap and the next drain run bounds itself against the new head.
"""

from __future__ import annotations

from functools import partial
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Optional

from repro.sim.core import (
    _TIMEOUT_POOL_MAX,
    Callback,
    Environment,
    Event,
    SimulationError,
    Timeout,
)


class Partition(Environment):
    """One logical process: a named sub-environment with its own wheel.

    A partition supports the full :class:`Environment` event-factory API
    (``timeout``, ``process``, ``schedule_callback``, ...), but is *driven*
    by its parent :class:`PartitionedEnvironment`: time and the scheduling
    sequence counter are the parent's, so events from different partitions
    stay globally ordered.
    """

    __slots__ = ("parent", "name", "index", "events_dispatched",
                 "events_scheduled", "cross_events_in", "_outbox")

    def __init__(self, parent: "PartitionedEnvironment", name: str,
                 index: int):
        Environment.__init__(self)
        self.parent = parent
        self.name = name
        self.index = index
        self.events_dispatched = 0      # dispatched from this wheel
        self.events_scheduled = 0       # pushed onto this wheel
        self.cross_events_in = 0        # pushed while another LP was active
        self._outbox: Optional[list] = None   # parallel-worker message buffer

    @property
    def now(self) -> int:
        """Global simulated time (the parent's clock)."""
        return self.parent._now

    @property
    def active_process(self):
        return self._active_process

    def _schedule(self, event: Event, priority: int, delay: int = 0) -> None:
        parent = self.parent
        seq = parent._seq
        parent._seq = seq + 1
        entry = (parent._now + delay, priority, seq, event)
        heappush(self._queue, entry)
        self.events_scheduled += 1
        draining = parent._draining
        if draining is not None and draining is not self:
            self.cross_events_in += 1
            bound = parent._drain_bound
            if bound is None:
                # The draining wheel was the only non-empty one, so the
                # drain loop has no runner-up to compare against: any
                # foreign schedule (this one) might precede its remaining
                # events.  Force a re-pick; the next drain run sees this
                # wheel's head as its bound.
                parent._bound_violated = True
            elif entry < bound:
                parent._bound_violated = True

    def schedule_at(self, when: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` at absolute time ``when`` on this wheel.

        Used by the parallel executor to inject cross-partition messages
        at their (future) fire time; ``when`` must not be in the past.
        """
        if when < self.parent._now:
            raise ValueError(f"schedule_at({when}) is in the past "
                             f"(now={self.parent._now})")
        Callback(self, when - self.parent._now, fn)

    def pending(self) -> int:
        """Events currently queued on this partition's wheel."""
        return len(self._queue)

    def quiesced(self) -> bool:
        """True when the wheel holds no scheduled events.

        Fault injection uses this after a crash drains to assert a dead
        partition is not still ticking.
        """
        return not self._queue

    def run_window(self, horizon: int, outbox: Optional[list] = None) -> int:
        """Dispatch every local event strictly before ``horizon``.

        The parallel executor's per-window worker loop: only this wheel is
        touched, cross-partition sends land in ``outbox`` (see
        :meth:`Channel.send`), and the count of dispatched events is
        returned.  Safe only when no other partition is being driven in
        this process at the same time.
        """
        self._outbox = outbox
        parent = self.parent
        queue = self._queue
        pool = self._timeout_pool
        count = 0
        try:
            while queue and queue[0][0] < horizon:
                when, _prio, _seq, event = heappop(queue)
                parent._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._exception  # type: ignore[misc]
                count += 1
                if (type(event) is Timeout
                        and len(pool) < _TIMEOUT_POOL_MAX
                        and getrefcount(event) == 2):
                    event._value = None
                    pool.append(event)
        finally:
            self._outbox = None
            self.events_dispatched += count
        return count

    def step(self) -> None:
        raise SimulationError(
            "partitions are driven by their PartitionedEnvironment; "
            "call step()/run() on the parent")

    def run(self, until=None):
        raise SimulationError(
            "partitions are driven by their PartitionedEnvironment; "
            "call run() on the parent")

    def stats(self) -> dict:
        return {
            "events_dispatched": self.events_dispatched,
            "events_scheduled": self.events_scheduled,
            "cross_events_in": self.cross_events_in,
            "pending": len(self._queue),
        }

    def __repr__(self) -> str:
        return (f"<Partition {self.name!r} pending={len(self._queue)} "
                f"dispatched={self.events_dispatched}>")


class Channel:
    """A declared cross-partition edge carrying picklable payloads.

    In single-process mode :meth:`send` schedules the registered handler
    directly on the destination wheel — one :class:`Callback`-shaped event,
    exactly what a flat model would have scheduled.  Under the parallel
    executor the sending partition is in a different OS process from the
    receiver, so the message ``(fire_time, channel_id, payload)`` lands in
    the window outbox instead and crosses at the next barrier.

    ``lookahead_ns`` is the conservative promise: every send is delivered
    at least that far in the receiver's future, which is what lets the
    executor run partitions concurrently inside a lookahead window.
    """

    __slots__ = ("parent", "cid", "src", "dst", "handler", "lookahead_ns",
                 "messages")

    def __init__(self, parent: "PartitionedEnvironment", cid: int,
                 src: Partition, dst: Partition,
                 handler: Callable[[Any], None], lookahead_ns: int):
        self.parent = parent
        self.cid = cid
        self.src = src
        self.dst = dst
        self.handler = handler
        self.lookahead_ns = lookahead_ns
        self.messages = 0

    def send(self, payload: Any, delay: Optional[int] = None) -> None:
        """Deliver ``payload`` to the destination handler after ``delay``.

        ``delay`` defaults to the channel's lookahead and must never be
        smaller — that would break the conservative bound the parallel
        executor synchronizes on.
        """
        if delay is None:
            delay = self.lookahead_ns
        elif delay < self.lookahead_ns:
            raise ValueError(
                f"channel {self.src.name}->{self.dst.name}: delay {delay} "
                f"below declared lookahead {self.lookahead_ns}")
        self.messages += 1
        outbox = self.src._outbox
        if outbox is not None:
            outbox.append((self.parent._now + delay, self.cid, payload))
        else:
            self.dst.schedule_callback(delay, partial(self.handler, payload))


class PartitionedEnvironment(Environment):
    """Global clock plus one event wheel per partition.

    The environment itself doubles as the *control partition* ("main"):
    driver processes, monitors, and anything not assigned to a model
    partition schedule onto its inherited wheel.  ``partition(name)``
    creates (or returns) a named :class:`Partition`; components built
    against a partition use it exactly like a flat ``Environment``.
    """

    __slots__ = ("_partitions", "_by_name", "_edges", "_wheels", "_channels",
                 "_draining", "_drain_bound", "_bound_violated",
                 "events_dispatched", "drain_runs", "name", "index")

    def __init__(self, initial_time: int = 0):
        super().__init__(initial_time)
        self._partitions: list[Partition] = []
        self._by_name: dict[str, Partition] = {}
        self._edges: dict[tuple[str, str], int] = {}
        self._channels: list[Channel] = []
        self._wheels: list[Environment] = [self]  # self == control wheel
        self._draining: Optional[Environment] = None
        self._drain_bound: Optional[tuple] = None
        self._bound_violated = False
        self.events_dispatched = 0
        self.drain_runs = 0
        self.name = "main"
        self.index = 0

    # -- partition registry --------------------------------------------------

    def partition(self, name: str) -> Partition:
        """Create (or return) the named partition."""
        part = self._by_name.get(name)
        if part is None:
            if name == self.name:
                raise ValueError(f"{name!r} is the control partition")
            part = Partition(self, name, len(self._partitions) + 1)
            self._partitions.append(part)
            self._by_name[name] = part
            self._wheels.append(part)
        return part

    @property
    def partitions(self) -> list[Partition]:
        return list(self._partitions)

    def declare_lookahead(self, src: Environment, dst: Environment,
                          lookahead_ns: int) -> None:
        """Declare a conservative lookahead edge ``src -> dst``.

        Any event one partition schedules into another must be at least
        this far in the future.  Multiple declarations keep the minimum
        (the conservative choice).
        """
        if lookahead_ns <= 0:
            raise ValueError(
                f"lookahead must be positive, got {lookahead_ns}")
        key = (getattr(src, "name", "main"), getattr(dst, "name", "main"))
        current = self._edges.get(key)
        if current is None or lookahead_ns < current:
            self._edges[key] = lookahead_ns

    def lookahead_edges(self) -> dict[tuple[str, str], int]:
        return dict(self._edges)

    def min_lookahead(self) -> Optional[int]:
        """The tightest declared edge — the parallel window width."""
        return min(self._edges.values()) if self._edges else None

    def open_channel(self, src: Partition, dst: Partition,
                     handler: Callable[[Any], None],
                     lookahead_ns: int) -> Channel:
        """Register a cross-partition message channel (and its edge)."""
        if not isinstance(src, Partition) or not isinstance(dst, Partition):
            raise TypeError("channels connect model partitions, not the "
                            "control wheel")
        if src.parent is not self or dst.parent is not self:
            raise ValueError("channel endpoints belong to a different "
                             "environment")
        self.declare_lookahead(src, dst, lookahead_ns)
        channel = Channel(self, len(self._channels), src, dst, handler,
                          lookahead_ns)
        self._channels.append(channel)
        return channel

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: int = 0) -> None:
        seq = self._seq
        self._seq = seq + 1
        entry = (self._now + delay, priority, seq, event)
        heappush(self._queue, entry)
        draining = self._draining
        if draining is not None and draining is not self:
            bound = self._drain_bound
            if bound is None:
                # No runner-up bound (see Partition._schedule): re-pick.
                self._bound_violated = True
            elif entry < bound:
                self._bound_violated = True

    def peek(self) -> float:
        earliest = float("inf")
        for wheel in self._wheels:
            queue = wheel._queue
            if queue and queue[0][0] < earliest:
                earliest = queue[0][0]
        return earliest

    def _pick(self):
        """(wheel with the globally minimal head, runner-up head entry)."""
        best = None
        best_entry = None
        bound = None
        for wheel in self._wheels:
            queue = wheel._queue
            if not queue:
                continue
            entry = queue[0]
            if best_entry is None or entry < best_entry:
                bound = best_entry
                best_entry = entry
                best = wheel
            elif bound is None or entry < bound:
                bound = entry
        return best, bound

    def step(self) -> None:
        """Dispatch exactly one event: the global ``(t, prio, seq)`` min."""
        best, _bound = self._pick()
        if best is None:
            raise SimulationError("no scheduled events")
        self._dispatch_one(best)

    def _dispatch_one(self, wheel: Environment) -> None:
        when, _prio, _seq, event = heappop(wheel._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._exception  # type: ignore[misc]
        wheel.events_dispatched += 1
        pool = wheel._timeout_pool
        if (type(event) is Timeout
                and len(pool) < _TIMEOUT_POOL_MAX
                and getrefcount(event) == 2):
            event._value = None
            pool.append(event)

    def _drain(self, deadline: Optional[int],
               sentinel: Optional[Event]) -> None:
        """Dispatch events in global key order until a stop condition.

        Stops when the wheels drain, the next event lies beyond
        ``deadline``, or ``sentinel`` becomes processed.  The inner loop
        drains the picked wheel while its head stays at or below the
        runner-up bound, re-picking only when the bound is crossed or a
        foreign schedule lands below it.
        """
        while True:
            if sentinel is not None and sentinel.callbacks is None:
                return
            best, bound = self._pick()
            if best is None:
                if sentinel is not None:
                    raise SimulationError(
                        "event queue drained before the awaited event fired")
                return
            if deadline is not None and best._queue[0][0] > deadline:
                return
            self.drain_runs += 1
            queue = best._queue
            pool = best._timeout_pool
            self._draining = best
            self._drain_bound = bound
            self._bound_violated = False
            dispatched = 0
            try:
                while queue:
                    entry = queue[0]
                    if bound is not None and bound < entry:
                        break
                    if deadline is not None and entry[0] > deadline:
                        break
                    when, _prio, _seq, event = heappop(queue)
                    # Drop the heap tuple: a surviving reference would hold
                    # the event at refcount 3 and defeat the pool check.
                    del entry
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._exception  # type: ignore[misc]
                    dispatched += 1
                    if (type(event) is Timeout
                            and len(pool) < _TIMEOUT_POOL_MAX
                            and getrefcount(event) == 2):
                        event._value = None
                        pool.append(event)
                    if self._bound_violated:
                        break
                    if sentinel is not None and sentinel.callbacks is None:
                        break
            finally:
                best.events_dispatched += dispatched
                self._draining = None
                self._drain_bound = None

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run in global event order (see :meth:`Environment.run`)."""
        if until is None:
            self._drain(None, None)
            return None
        if isinstance(until, Event):
            sentinel = until
            if sentinel.callbacks is None:
                if sentinel._ok is None:
                    raise SimulationError(
                        f"run(until=...) got a cancelled event: {sentinel!r} "
                        "was withdrawn and will never fire")
                return sentinel.value
            self._drain(None, sentinel)
            return sentinel.value
        deadline = int(until)
        if deadline < self._now:
            raise ValueError(
                f"until={deadline} is in the past (now={self._now})")
        self._drain(deadline, None)
        self._now = deadline
        return None

    # -- reporting -----------------------------------------------------------

    def pending(self) -> int:
        return len(self._queue)

    def partition_stats(self) -> dict:
        """Per-partition event counters plus engine-level totals."""
        return {
            "partitions": {
                part.name: part.stats() for part in self._partitions
            },
            "control": {
                "events_dispatched": self.events_dispatched,
                "pending": len(self._queue),
            },
            "drain_runs": self.drain_runs,
            "lookahead_edges": {
                f"{src}->{dst}": ns
                for (src, dst), ns in sorted(self._edges.items())
            },
            "channel_messages": sum(c.messages for c in self._channels),
        }

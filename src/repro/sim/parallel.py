"""Opt-in parallel executor: partitions advance inside lookahead windows.

Conservative synchronous PDES over a :class:`PartitionedEnvironment`:
the global window width is the minimum declared lookahead ``L``, and every
window ``[t, t + L)`` is safe to run in parallel — any cross-partition
message generated inside the window fires at least ``L`` later, so it
cannot affect the window itself.  Workers exchange messages and horizon
announcements ("null messages", in Chandy–Misra terms) only at window
barriers.

Mechanics: the model is built in the parent process, then workers are
*forked*, each owning a fixed set of partitions — fork inheritance is what
lets generators, closures, and heaps cross into the workers without being
picklable.  Only two things cross process boundaries afterwards:

* parent -> worker: ``(horizon, inbox...)`` — the window command;
* worker -> parent: ``(next_event_time, outbox, dispatched)``.

Cross-partition traffic must therefore flow through
:class:`~repro.sim.partition.Channel` objects with picklable payloads;
anything scheduled on the control wheel, or any direct cross-partition
object sharing, is unsupported in this mode (the single-process scheduler
has no such restriction).

``workers=0`` selects *critical-path emulation*: the exact same windowed
schedule runs in-process, timing each partition's window separately.  The
projected wall time — ``sum over windows of max(per-partition time)`` — is
the standard PDES critical-path bound, reported alongside measured numbers
so speedups stay meaningful on single-core machines.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.sim.core import SimulationError
from repro.sim.partition import PartitionedEnvironment

_INFINITY = float("inf")


class ParallelExecutor:
    """Run a fully partitioned model to a deadline, windows in parallel.

    ``workers`` is the number of forked OS processes (default: one per
    partition, capped at CPU count); ``workers=0`` runs the same windowed
    schedule in-process and reports the critical-path projection instead.
    """

    def __init__(self, env: PartitionedEnvironment,
                 workers: Optional[int] = None):
        if not isinstance(env, PartitionedEnvironment):
            raise TypeError("ParallelExecutor needs a PartitionedEnvironment")
        if not env._partitions:
            raise SimulationError("no partitions to execute")
        if env._queue:
            raise SimulationError(
                "control wheel must be empty for parallel execution: "
                "assign every process to a partition")
        lookahead = env.min_lookahead()
        if lookahead is None:
            raise SimulationError(
                "no lookahead edges declared: open channels (or declare "
                "edges) before running in parallel")
        self.env = env
        self.lookahead_ns = lookahead
        if workers is None:
            import os
            cores = os.cpu_count() or 1
            workers = min(len(env._partitions), max(1, cores))
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = min(workers, len(env._partitions))
        # Barrier statistics (the telemetry surface).
        self.windows = 0
        self.null_messages = 0
        self.channel_messages = 0
        self.events = 0
        self.window_events: list[int] = []
        self.wall_s = 0.0
        self.projected_wall_s = 0.0
        self._forked_once = False

    # -- shared window bookkeeping --------------------------------------------

    def _route(self, outbox, inboxes) -> None:
        """Sort one window's messages into per-partition inboxes.

        The sort key ``(fire_time, channel_id, payload order)`` is
        independent of worker count and gather order, so parallel runs are
        self-deterministic: same seed, same workers or not, same delivery
        order at every receiver.
        """
        self.channel_messages += len(outbox)
        for message in outbox:
            channel = self.env._channels[message[1]]
            inboxes[channel.dst.index - 1].append(message)

    def stats(self) -> dict:
        events = self.window_events
        return {
            "mode": "emulated" if self.workers == 0 else "forked",
            "workers": self.workers or len(self.env._partitions),
            "lookahead_ns": self.lookahead_ns,
            "windows": self.windows,
            "null_messages": self.null_messages,
            "channel_messages": self.channel_messages,
            "events": self.events,
            "events_per_window": {
                "min": min(events) if events else 0,
                "mean": round(sum(events) / len(events), 1) if events else 0,
                "max": max(events) if events else 0,
            },
            "wall_s": round(self.wall_s, 4),
            "projected_wall_s": round(self.projected_wall_s, 4),
        }

    # -- critical-path emulation ----------------------------------------------

    def _run_emulated(self, until_ns: int) -> dict:
        env = self.env
        parts = env._partitions
        lookahead = self.lookahead_ns
        inboxes: list[list] = [[] for _ in parts]
        perf = time.perf_counter
        start_wall = perf()
        while True:
            now = min((p._queue[0][0] for p in parts if p._queue),
                      default=_INFINITY)
            for inbox in inboxes:
                if inbox:
                    now = min(now, min(m[0] for m in inbox))
            if now >= until_ns:
                break
            horizon = min(now + lookahead, until_ns)
            outbox: list = []
            window_events = 0
            critical = 0.0
            for part, inbox in zip(parts, inboxes):
                # Rewind the shared clock to the window start before
                # injecting this partition's inbox: a sibling partition's
                # window may have advanced it past these fire times.
                env._now = now
                _deliver(env, part, inbox)
                inbox.clear()
                lap = perf()
                window_events += part.run_window(horizon, outbox)
                lap = perf() - lap
                if lap > critical:
                    critical = lap
            self._route(outbox, inboxes)
            self.windows += 1
            self.null_messages += len(parts)
            self.window_events.append(window_events)
            self.events += window_events
            self.projected_wall_s += critical
        env._now = until_ns
        # Messages still in flight at the deadline (fire times >= until_ns,
        # or they would have extended the loop) go back onto the destination
        # wheels so a later run() — or the single-process scheduler — still
        # delivers them instead of silently dropping them.
        for part, inbox in zip(parts, inboxes):
            if inbox:
                _deliver(env, part, inbox)
                inbox.clear()
        self.wall_s = perf() - start_wall
        return self.stats()

    # -- forked execution -----------------------------------------------------

    def _run_forked(self, until_ns: int) -> dict:
        import multiprocessing

        if self._forked_once:
            raise SimulationError(
                "forked ParallelExecutor.run() is single-shot: after a run "
                "the parent's wheels are stale pre-fork copies, so a second "
                "window schedule would replay from wrong state (use "
                "workers=0 emulation for multi-phase runs)")
        self._forked_once = True
        env = self.env
        parts = env._partitions
        context = multiprocessing.get_context("fork")
        assignment = [list(range(w, len(parts), self.workers))
                      for w in range(self.workers)]
        connections = []
        processes = []
        perf = time.perf_counter
        start_wall = perf()
        try:
            for indices in assignment:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main, args=(child_conn, env, indices),
                    daemon=True)
                process.start()
                child_conn.close()
                connections.append(parent_conn)
                processes.append(process)

            # Initial next-event times come from the parent's pre-fork
            # copy of the wheels — identical to what each worker inherits.
            next_times = [
                min((parts[i]._queue[0][0] for i in indices
                     if parts[i]._queue), default=_INFINITY)
                for indices in assignment
            ]
            inboxes: list[list] = [[] for _ in parts]
            lookahead = self.lookahead_ns
            while True:
                now = min(next_times)
                for inbox in inboxes:
                    if inbox:
                        now = min(now, min(m[0] for m in inbox))
                if now >= until_ns:
                    break
                horizon = min(now + lookahead, until_ns)
                for conn, indices in zip(connections, assignment):
                    batch = []
                    for i in indices:
                        batch.append(inboxes[i])
                        inboxes[i] = []
                    conn.send(("window", now, horizon, batch))
                    self.null_messages += 1
                window_events = 0
                for w, conn in enumerate(connections):
                    next_time, outbox, dispatched = conn.recv()
                    next_times[w] = next_time
                    window_events += dispatched
                    self._route(outbox, inboxes)
                self.windows += 1
                self.window_events.append(window_events)
                self.events += window_events
            for conn in connections:
                conn.send(("quit",))
            for conn in connections:
                conn.recv()     # worker acknowledged; wheels drained there
            env._now = until_ns
        finally:
            for conn in connections:
                conn.close()
            for process in processes:
                process.join(timeout=5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
        self.wall_s = perf() - start_wall
        return self.stats()

    def run(self, until_ns: int) -> dict:
        """Advance every partition to ``until_ns``; returns barrier stats.

        Emulated mode (``workers=0``) may be run again to a later deadline:
        in-flight channel messages are parked on the destination wheels at
        the deadline.  Forked mode is single-shot — the parent's wheels are
        stale pre-fork copies afterwards — and raises on a second call.
        """
        if until_ns < self.env._now:
            raise ValueError(
                f"until={until_ns} is in the past (now={self.env._now})")
        if self.workers == 0:
            return self._run_emulated(until_ns)
        return self._run_forked(until_ns)


def _deliver(env, partition, inbox) -> None:
    """Inject one window's inbound messages onto a partition's wheel.

    The sort key ``(fire_time, channel_id)`` plus the stable gather order
    makes delivery order independent of worker count.
    """
    inbox.sort(key=lambda m: (m[0], m[1]))
    channels = env._channels
    for when, cid, payload in inbox:
        handler = channels[cid].handler
        partition.schedule_at(when, lambda h=handler, p=payload: h(p))


def _worker_main(connection, env, indices) -> None:
    """Forked worker: drive the assigned partitions window by window."""
    parts = [env._partitions[i] for i in indices]
    try:
        while True:
            message = connection.recv()
            if message[0] != "window":
                connection.send("bye")
                break
            _, start, horizon, batch = message
            outbox: list = []
            dispatched = 0
            for part, inbox in zip(parts, batch):
                env._now = start
                _deliver(env, part, inbox)
                dispatched += part.run_window(horizon, outbox)
            next_time = min((p._queue[0][0] for p in parts if p._queue),
                            default=_INFINITY)
            connection.send((next_time, outbox, dispatched))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        connection.close()

"""Deterministic discrete-event simulation engine.

A small, dependency-free engine in the style of simpy: an
:class:`Environment` drives generator-based :class:`Process` coroutines
through an event queue with integer-nanosecond timestamps.  Determinism is
a design requirement (the benches must be reproducible), so ties are broken
by insertion order and all randomness flows through seeded
:mod:`repro.sim.rng` streams.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Callback,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.parallel import ParallelExecutor
from repro.sim.partition import Channel, Partition, PartitionedEnvironment
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RandomStream

__all__ = [
    "AllOf",
    "AnyOf",
    "Callback",
    "Channel",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "ParallelExecutor",
    "Partition",
    "PartitionedEnvironment",
    "Process",
    "RandomStream",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]

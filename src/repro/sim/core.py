"""Event loop, events, and processes for the simulation engine.

Time is an integer number of nanoseconds.  The scheduler is a binary heap
keyed on ``(time, priority, sequence)`` so that simultaneous events fire in
insertion order, which keeps every run bit-for-bit reproducible.

The engine is the hot path of every experiment, so the event classes are
slotted, fully-processed :class:`Timeout` instances are recycled through a
small pool, and pure-delay work can use :meth:`Environment.schedule_callback`
instead of paying for a generator :class:`Process` per occurrence.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for illegal engine operations (double-trigger, bad yields)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Scheduling priorities: URGENT fires before NORMAL at the same timestamp.
URGENT = 0
NORMAL = 1

#: Upper bound on recycled Timeout instances kept by an Environment.
_TIMEOUT_POOL_MAX = 256


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* (scheduled to fire), then *processed* (its
    callbacks run).  ``succeed`` sets a value; ``fail`` sets an exception
    that propagates into every waiting process.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_ok",
                 "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None  # None = untriggered
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._exception = exception
        self.env._schedule(self, NORMAL)
        return self

    def __repr__(self) -> str:
        if self.callbacks is None:
            state = "processed" if self._ok is not None else "cancelled"
        else:
            state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` ns after creation.

    Instances created through :meth:`Environment.timeout` may be recycled
    once fully processed and unreferenced; hold the returned object (or
    create ``Timeout`` directly) to opt out.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay=delay)


class Callback(Event):
    """A pre-triggered event that invokes ``fn()`` when it fires.

    The cheap alternative to a one-yield :class:`Process` for pure-delay
    work: one heap entry, no generator, no Initialize event.
    """

    __slots__ = ("_fn",)

    def __init__(self, env: "Environment", delay: int,
                 fn: Callable[[], None], priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._ok = True
        self._fn = fn
        self.callbacks.append(self._invoke)
        env._schedule(self, priority, delay=delay)

    def _invoke(self, _event: Event) -> None:
        self._fn()


class Initialize(Event):
    """Internal event that starts a process at its creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event fires, receiving its value (or exception).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._exception = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT)
        # Detach from whatever the process was waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        self._target = None
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                elif event._ok is None:
                    # Cancelled event (withdrawn untriggered, e.g. a
                    # cancelled Request): it carries neither value nor
                    # exception and can never fire.
                    next_event = generator.throw(SimulationError(
                        f"process is waiting on a cancelled event: "
                        f"{event!r}"))
                else:
                    event._defused = True
                    next_event = generator.throw(event._exception)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._exception = exc
                env._schedule(self, NORMAL)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}")
                self._ok = False
                self._exception = exc
                env._schedule(self, NORMAL)
                break

            if next_event.callbacks is not None:
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already-processed event: continue immediately with its outcome.
            event = next_event

        env._active_process = None


class Condition(Event):
    """Waits on several events; fires according to ``evaluate``."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[list[Event], int], bool]):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if not isinstance(event, Event):
                raise TypeError(f"condition needs events, got {event!r}")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        # Timeouts are born triggered (_ok set at creation), so membership
        # must be judged by *processed* (callbacks drained), not triggered.
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if event._ok is None:
            # Cancelled constituent (withdrawn untriggered): it can never
            # fire, so the condition can never complete through it.
            self.fail(SimulationError(
                f"condition is waiting on a cancelled event: {event!r}"))
            return
        if not event._ok:
            event._defused = True
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= len(events))


class AnyOf(Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda events, count: count >= 1)


class Environment:
    """The simulation driver: clock plus event queue."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process",
                 "_timeout_pool")

    def __init__(self, initial_time: int = 0):
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            delay = int(delay)
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._exception = None
            timeout._ok = True
            timeout._defused = False
            timeout.delay = delay
            self._schedule(timeout, NORMAL, delay=delay)
            return timeout
        return Timeout(self, int(delay), value)

    def schedule_callback(self, delay: int,
                          fn: Callable[[], None]) -> Callback:
        """Run ``fn()`` after ``delay`` ns without spawning a process.

        For fire-and-forget work with no suspension point after the delay
        (packet delivery, NACK generation, ...).  ``fn`` takes no
        arguments; use ``functools.partial`` to bind some.
        """
        return Callback(self, delay, fn)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: int = 0) -> None:
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event; raises :class:`SimulationError` when empty."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _seq, event = heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._exception  # type: ignore[misc]
        # Recycle fully-processed, unreferenced timeouts.  The refcount
        # guard (event local + getrefcount argument = 2) proves no process,
        # condition, or user variable still holds the object, so reuse can
        # never be observed from outside the engine.
        if (type(event) is Timeout
                and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
                and getrefcount(event) == 2):
            event._value = None
            self._timeout_pool.append(event)

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be an absolute time (ns) or an :class:`Event`; when an
        event is given, its value is returned.
        """
        step = self.step
        if until is None:
            queue = self._queue
            while queue:
                step()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel.callbacks is None:
                # Already processed (or cancelled): resolve immediately and
                # deterministically instead of touching the queue at all.
                # A processed event returns its value (re-raising if it
                # failed); a cancelled one — withdrawn without ever being
                # triggered — can never fire, so waiting on it is an error.
                if sentinel._ok is None:
                    raise SimulationError(
                        f"run(until=...) got a cancelled event: {sentinel!r} "
                        "was withdrawn and will never fire")
                return sentinel.value
            while not sentinel.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired")
                step()
            return sentinel.value

        deadline = int(until)
        if deadline < self._now:
            raise ValueError(
                f"until={deadline} is in the past (now={self._now})")
        queue = self._queue
        while queue and queue[0][0] <= deadline:
            step()
        self._now = deadline
        return None

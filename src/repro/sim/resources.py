"""Shared-resource primitives: Resource, Store, and Container.

These follow simpy semantics closely: ``request``/``put``/``get`` return
events that a process yields on; FIFO ordering among waiters is guaranteed,
which the engine's deterministic scheduler turns into reproducible runs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Environment, Event


class Request(Event):
    """Pending claim on a :class:`Resource` slot; usable as a context token."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def cancel(self) -> None:
        """Withdraw an unfired request from the wait queue.

        A cancelled request can never fire.  When nothing is waiting on it
        the event moves to the terminal *cancelled* state (``callbacks``
        cleared while untriggered), which ``Environment.run(until=...)``
        rejects immediately instead of draining the queue hunting for a
        trigger that will never come.  A request some process is already
        yielding on keeps its callback list — cancelling out from under a
        waiter is a caller bug this method will not paper over.
        """
        if not self.triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass
            if not self.callbacks:
                self.callbacks = None


class Resource:
    """A counted resource with ``capacity`` concurrent slots."""

    __slots__ = ("env", "capacity", "_users", "_queue")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: list[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        try:
            self._users.remove(request)
        except ValueError:
            raise ValueError("releasing a request that does not hold the resource")
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO buffer of items with optional capacity bound."""

    __slots__ = ("env", "capacity", "items", "_put_queue", "_get_queue")

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity if capacity is not None else float("inf")
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.popleft())
                progressed = True


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A homogeneous quantity (tokens, bytes) with put/get semantics."""

    __slots__ = ("env", "capacity", "_level", "_put_queue", "_get_queue")

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if (self._put_queue
                    and self._level + self._put_queue[0].amount <= self.capacity):
                put = self._put_queue.popleft()
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._get_queue and self._level >= self._get_queue[0].amount:
                get = self._get_queue.popleft()
                self._level -= get.amount
                get.succeed(get.amount)
                progressed = True

"""Seeded random streams for reproducible simulation.

Every stochastic component (link jitter, loss injection, workload key
choice) takes a :class:`RandomStream` derived from a root seed plus a
component name, so adding a new random consumer never perturbs the draws
seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


class RandomStream:
    """A named, independently-seeded PRNG stream."""

    def __init__(self, seed: int, name: str = "root"):
        self.seed = seed
        self.name = name
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))

    def fork(self, name: str) -> "RandomStream":
        """Create an independent child stream; same inputs -> same stream."""
        return RandomStream(self.seed, f"{self.name}/{name}")

    def uniform_int(self, low: int, high: int) -> int:
        """Inclusive uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(low, high)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def sample(self, population: Sequence, k: int) -> list:
        return self._rng.sample(population, k)

    def zipf_index(self, n: int, theta: float, table: "ZipfTable | None" = None) -> int:
        """Draw a 0-based index from a Zipf(theta) distribution over n items."""
        if table is None:
            table = ZipfTable(n, theta)
        return table.draw(self._rng.random())


class ZipfTable:
    """Precomputed CDF for Zipf-distributed draws (YCSB-style, theta=0.99)."""

    def __init__(self, n: int, theta: float):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self.n = n
        self.theta = theta
        weights = [1.0 / ((i + 1) ** theta) for i in range(n)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def draw(self, u: float) -> int:
        """Map a uniform draw u in [0,1) to a 0-based item index."""
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

"""CLib: the compute-node user-space library (paper sections 3.1, 5).

Applications allocate and access disaggregated memory through explicit
calls: ``ralloc``/``rfree``, ``rread``/``rwrite`` (synchronous and
asynchronous), ``rpoll``, and synchronization primitives (``rlock``,
``runlock``, ``rfence``, atomics).  CLib owns request ordering, retry,
and congestion control; the MN stays transportless.

All operations are simulation process-generators: application code runs
as processes on a :class:`repro.sim.Environment` and ``yield from``s the
API, mirroring how real CLib calls block (sync) or return handles
(async).
"""

from repro.clib.client import (
    ClioProcess,
    ClioThread,
    ComputeNode,
    RemoteAccessError,
)
from repro.clib.handles import AsyncHandle
from repro.clib.lock import LockNotHeldError, RemoteLock
from repro.clib.transparent import TransparentMemory

__all__ = [
    "AsyncHandle",
    "ClioProcess",
    "ClioThread",
    "ComputeNode",
    "LockNotHeldError",
    "RemoteAccessError",
    "RemoteLock",
    "TransparentMemory",
]

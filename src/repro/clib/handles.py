"""Completion handles for asynchronous CLib operations.

One protocol for every async family: ``ralloc_async``, ``rfree_async``,
``rread_async``, ``rwrite_async``, and the vector/batched ops all return
an :class:`AsyncHandle`, and ``rpoll`` redeems any mix of them into
:class:`Completion` records with per-op status — call sites no longer
need to know which family a handle came from or wrap rpoll in
try/except per shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim import Environment, Event
from repro.transport.clib_transport import RequestFailed


@dataclass(slots=True)
class Completion:
    """Outcome of one asynchronous operation, as returned by ``rpoll``.

    ``status`` is a short machine-readable string: ``"ok"`` on success,
    the MN's rejection status (``"invalid_va"``, ``"permission"``,
    ``"oom"``) when the board answered with an error, or
    ``"request_failed"`` when retransmission was exhausted.
    """

    kind: str                              # "read"/"write"/"alloc"/"free"
    ok: bool
    value: Any = None                      # read bytes / alloc VA / ...
    status: str = "ok"
    error: Optional[BaseException] = None

    @property
    def result(self) -> Any:
        """The value; re-raises the operation's failure if it has one."""
        if self.error is not None:
            raise self.error
        return self.value


def _failure(kind: str, exc: BaseException) -> Completion:
    status = getattr(exc, "status", None)   # RemoteAccessError carries one
    if status is not None:
        status = status.value
    elif isinstance(exc, RequestFailed):
        status = "request_failed"
    else:
        status = "error"
    return Completion(kind=kind, ok=False, status=status, error=exc)


class AsyncHandle:
    """Handle returned by every asynchronous CLib op; redeemed via rpoll.

    Wraps the operation's completion event — either a background
    simulation process (classic per-op issue) or a plain event fulfilled
    by the thread batcher when the op rode a multi-op frame.  The result
    (read bytes, alloc VA, None for writes) is available after the
    handle completes; touching it earlier raises.
    """

    __slots__ = ("env", "kind", "_event")

    def __init__(self, env: Environment, completion_event: Event, kind: str):
        self.env = env
        self.kind = kind
        self._event = completion_event
        # The failure (e.g. RequestFailed after exhausted retries)
        # belongs to whoever polls the handle, not to the event loop:
        # mark the event defused so an early failure waits for rpoll.
        completion_event._defused = True

    @property
    def completion_event(self) -> Event:
        return self._event

    @property
    def complete(self) -> bool:
        return self._event.triggered

    @property
    def result(self) -> Any:
        if not self._event.triggered:
            raise RuntimeError("async operation still in flight; rpoll first")
        return self._event.value

    def completion(self) -> Completion:
        """The op's :class:`Completion`; only valid once complete."""
        if not self._event.triggered:
            raise RuntimeError("async operation still in flight; rpoll first")
        try:
            return Completion(kind=self.kind, ok=True,
                              value=self._event.value)
        except BaseException as exc:
            return _failure(self.kind, exc)

    def poll(self):
        """Process-generator: wait for completion, return a Completion."""
        event = self._event
        if not event.triggered:
            try:
                yield event
            except BaseException as exc:
                return _failure(self.kind, exc)
        return self.completion()

"""Completion handles for asynchronous CLib operations."""

from __future__ import annotations

from typing import Any, Optional

from repro.sim import Environment, Process


class AsyncHandle:
    """Handle returned by asynchronous rread/rwrite; redeemed via rpoll.

    Wraps the background simulation process executing the request.  The
    result (read bytes, or None for writes) is available after the handle
    completes; touching it earlier raises.
    """

    def __init__(self, env: Environment, process: Process, kind: str):
        self.env = env
        self._process = process
        self.kind = kind
        # The failure (e.g. RequestFailedError after exhausted retries)
        # belongs to whoever polls the handle, not to the event loop:
        # mark the process defused so an early failure waits for rpoll.
        process._defused = True  # type: ignore[attr-defined]

    @property
    def completion_event(self) -> Process:
        return self._process

    @property
    def complete(self) -> bool:
        return not self._process.is_alive

    @property
    def result(self) -> Optional[Any]:
        if self._process.is_alive:
            raise RuntimeError("async operation still in flight; rpoll first")
        return self._process.value

    def poll(self):
        """Process-generator: wait for completion, return the result."""
        if self._process.is_alive:
            yield self._process
            return self._process.value
        return self._process.value

"""Transparent remote-memory interface (paper section 3.3).

The paper's CLib API is explicit, but it notes that the same CBoard
supports transparent usage unchanged: "the CN kernel or hardware captures
misses in CN's local memory and then calls Clio's APIs to fulfill the
misses" (LegoOS pComponent style), or a runtime like AIFM calls the APIs
under its own abstractions.

:class:`TransparentMemory` is that layer in library form: a bounded local
page cache over one RAS.  ``read``/``write`` hit local memory when the
page is cached; a miss fetches the remote page via ``rread`` (and evicts
an LRU victim, writing it back if dirty).  ``flush`` gives the
write-back durability point.

Caching granularity is a *cache page* (default 64 KB), independent of the
MN's translation page size — mirroring how a CN-side cache would track
far smaller units than the MN's 4 MB huge pages.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.clib.client import ClioThread

KB = 1 << 10

#: CN-side cost of a local cache hit (a memcpy within local DRAM).
LOCAL_HIT_NS = 80


@dataclass
class _CachePage:
    data: bytearray
    dirty: bool = False


class TransparentMemory:
    """A local write-back page cache in front of one remote allocation."""

    def __init__(self, thread: ClioThread, size: int,
                 cache_pages: int = 64, cache_page_size: int = 64 * KB):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if cache_pages <= 0:
            raise ValueError(f"cache_pages must be positive, got {cache_pages}")
        if cache_page_size <= 0 or cache_page_size & (cache_page_size - 1):
            raise ValueError("cache_page_size must be a power of two")
        self.thread = thread
        self.env = thread.env
        self.size = size
        self.cache_pages = cache_pages
        self.cache_page_size = cache_page_size
        self._base_va: Optional[int] = None
        self._cache: OrderedDict[int, _CachePage] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- lifecycle -----------------------------------------------------------------

    def attach(self):
        """Process-generator: allocate the backing remote region."""
        if self._base_va is not None:
            raise RuntimeError("already attached")
        self._base_va = yield from self.thread.ralloc(self.size)
        return self._base_va

    def detach(self):
        """Process-generator: flush dirty pages and free the region."""
        yield from self.flush()
        yield from self.thread.rfree(self._base_va)
        self._base_va = None
        self._cache.clear()

    # -- cache mechanics ---------------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if self._base_va is None:
            raise RuntimeError("attach() first")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if addr < 0 or addr + size > self.size:
            raise ValueError(
                f"access [{addr}, {addr + size}) outside region of {self.size}")

    def _page_of(self, addr: int) -> int:
        return addr // self.cache_page_size

    def _ensure_cached(self, page: int):
        """Process-generator: fault the page into the local cache."""
        cached = self._cache.get(page)
        if cached is not None:
            self._cache.move_to_end(page)
            self.hits += 1
            return cached
        self.misses += 1
        if len(self._cache) >= self.cache_pages:
            yield from self._evict_one()
        offset = page * self.cache_page_size
        length = min(self.cache_page_size, self.size - offset)
        data = yield from self.thread.rread(self._base_va + offset, length)
        cached = _CachePage(data=bytearray(data))
        self._cache[page] = cached
        return cached

    def _evict_one(self):
        victim_page, victim = self._cache.popitem(last=False)
        if victim.dirty:
            self.writebacks += 1
            yield from self.thread.rwrite(
                self._base_va + victim_page * self.cache_page_size,
                bytes(victim.data))

    # -- the transparent API -----------------------------------------------------------

    def read(self, addr: int, size: int):
        """Process-generator: read bytes; remote fetch only on a miss."""
        self._check(addr, size)
        out = bytearray()
        position = addr
        remaining = size
        while remaining > 0:
            page = self._page_of(position)
            page_offset = position - page * self.cache_page_size
            take = min(remaining, self.cache_page_size - page_offset)
            cached = yield from self._ensure_cached(page)
            yield self.env.timeout(LOCAL_HIT_NS)
            out += cached.data[page_offset:page_offset + take]
            position += take
            remaining -= take
        return bytes(out)

    def write(self, addr: int, data: bytes):
        """Process-generator: write bytes into the cache (write-back)."""
        self._check(addr, len(data))
        position = addr
        offset = 0
        while offset < len(data):
            page = self._page_of(position)
            page_offset = position - page * self.cache_page_size
            take = min(len(data) - offset,
                       self.cache_page_size - page_offset)
            cached = yield from self._ensure_cached(page)
            yield self.env.timeout(LOCAL_HIT_NS)
            cached.data[page_offset:page_offset + take] = \
                data[offset:offset + take]
            cached.dirty = True
            position += take
            offset += take

    def flush(self):
        """Process-generator: write every dirty cached page back to the MN."""
        for page, cached in list(self._cache.items()):
            if not cached.dirty:
                continue
            self.writebacks += 1
            yield from self.thread.rwrite(
                self._base_va + page * self.cache_page_size,
                bytes(cached.data))
            cached.dirty = False

    # -- diagnostics -----------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def cached_bytes(self) -> int:
        return sum(len(page.data) for page in self._cache.values())

"""RemoteLock: the `ras_lock` of the paper's Figure 1, as an object.

A remote lock is an 8-byte word in some RAS; acquisition is a TAS at the
MN with exponential backoff, release is an atomic store (with release
ordering: the thread's in-flight asynchronous operations complete first).

    lock = yield from RemoteLock.create(thread)
    yield from lock.acquire()
    ...critical section...
    yield from lock.release()

One RemoteLock object may be shared by threads on any CN (construct more
handles with :meth:`handle_for` for threads using other transports).
"""

from __future__ import annotations

from repro.clib.client import ClioThread


class LockNotHeldError(Exception):
    """release() without a matching acquire() on this handle."""


class RemoteLock:
    """A handle to one remote lock word, bound to one thread."""

    def __init__(self, thread: ClioThread, lock_va: int):
        self.thread = thread
        self.lock_va = lock_va
        self.held = False
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @classmethod
    def create(cls, thread: ClioThread):
        """Process-generator: allocate a fresh lock word and wrap it."""
        lock_va = yield from thread.ralloc(8)
        return cls(thread, lock_va)

    def handle_for(self, thread: ClioThread) -> "RemoteLock":
        """A handle to the *same* lock for another thread (any CN)."""
        return RemoteLock(thread, self.lock_va)

    def acquire(self, backoff_ns: int = 200, max_backoff_ns: int = 8000):
        """Process-generator: TAS loop with exponential backoff."""
        if self.held:
            raise LockNotHeldError("lock already held by this handle "
                                   "(non-reentrant)")
        attempts = yield from self.thread.rlock(
            self.lock_va, backoff_ns=backoff_ns,
            max_backoff_ns=max_backoff_ns)
        self.held = True
        self.acquisitions += 1
        if attempts > 1:
            self.contended_acquisitions += 1
        return attempts

    def release(self):
        """Process-generator: release with release-ordering semantics."""
        if not self.held:
            raise LockNotHeldError("release() without acquire()")
        self.held = False
        yield from self.thread.runlock(self.lock_va)

    def locked(self):
        """Process-generator: observe the lock word (non-atomic peek)."""
        word = yield from self.thread.rread(self.lock_va, 8)
        return int.from_bytes(word, "little") != 0

    def with_lock(self, critical_section):
        """Process-generator: run ``critical_section()`` under the lock.

        ``critical_section`` is a generator function taking no arguments;
        its return value passes through.  The lock is released whether
        the section returns or raises.
        """
        yield from self.acquire()
        try:
            result = yield from critical_section()
        except BaseException:
            yield from self.release()
            raise
        yield from self.release()
        return result

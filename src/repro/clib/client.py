"""Compute-node objects: ComputeNode, ClioProcess, ClioThread.

A :class:`ComputeNode` is a regular server with one Ethernet NIC and one
CLib transport endpoint.  A :class:`ClioProcess` owns a remote virtual
address space (RAS) identified by a global PID assigned at start, bound
to one MN.  A :class:`ClioThread` carries the per-thread ordering state:
synchronous calls block the thread; asynchronous calls return an
:class:`AsyncHandle` after dependency admission.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.clib.handles import AsyncHandle, Completion
from repro.core.addr import Permission
from repro.core.pipeline import Status
from repro.core.sync import AtomicOp, AtomicResult
from repro.net.packet import PacketType
from repro.params import ClioParams
from repro.sim import Environment
from repro.transport.clib_transport import RequestOutcome, Transport
from repro.transport.ordering import DependencyTracker

#: Global PID source — "a unique global PID across all CNs" (section 3.1).
_pids = itertools.count(1)


class RemoteAccessError(Exception):
    """An MN rejected the access (bad VA, permission, or out of memory)."""

    def __init__(self, status: Status, message: str):
        super().__init__(f"{message}: {status.value}")
        self.status = status


class ComputeNode:
    """A regular server attached to the ToR switch, running CLib."""

    def __init__(self, env: Environment, name: str, topology,
                 params: ClioParams, default_page_size: Optional[int] = None,
                 registry=None):
        self.env = env
        self.name = name
        self.params = params
        self.default_page_size = (default_page_size
                                  or params.cboard.default_page_size)
        self.transport = Transport(env, name, topology, params,
                                   registry=registry)
        # Runtime correctness checking (repro.verify); None = disabled,
        # and every hook below sits behind a single `is not None` check.
        self.verifier = None
        # Hot-page cache (repro.cache); None = disabled.  Data ops check
        # `cache is not None and cache.enabled` and otherwise take the
        # exact pre-cache path.
        self.cache = None

    def process(self, mn: str, page_size: Optional[int] = None,
                pid: Optional[int] = None) -> "ClioProcess":
        """Start an application process with a fresh RAS on MN ``mn``.

        ``page_size`` must match the target MN's configured page size —
        CLib tracks dependencies and splits requests at that granularity.
        ``pid`` pins the global PID explicitly; PIDs feed the page-table
        hash, so deterministic harnesses (chaos scenarios, golden-run
        regression tests) pin them instead of drawing from the shared
        counter, which other tests may have advanced.
        """
        return ClioProcess(self, mn, next(_pids) if pid is None else pid,
                           page_size or self.default_page_size)


class ClioProcess:
    """One application process: a PID plus its RAS on a single MN."""

    def __init__(self, node: ComputeNode, mn: str, pid: int, page_size: int):
        from repro.core.addr import PageSpec
        self.node = node
        self.mn = mn
        self.pid = pid
        self.page_spec = PageSpec(page_size)
        self._thread_count = 0

    def thread(self, ordering_granularity: str = "page") -> "ClioThread":
        """New thread; ``ordering_granularity`` is "page" (paper default)
        or "byte" (exact ranges — no false dependencies, more metadata)."""
        return ClioThread(self, ordering_granularity=ordering_granularity)


class ClioThread:
    """Per-thread API surface with intra-thread ordering enforcement."""

    def __init__(self, process: ClioProcess,
                 ordering_granularity: str = "page"):
        self.process = process
        self.env = process.node.env
        self._transport = process.node.transport
        self._tracker = DependencyTracker(self.env, process.page_spec,
                                          granularity=ordering_granularity)
        self.ops_issued = 0
        # Adaptive request batching (repro.batch): None = off (default);
        # enable_batching installs a ThreadBatcher that coalesces small
        # async data ops into multi-op frames.
        self._batcher = None
        process._thread_count += 1
        #: Stable identity for verification histories (who invoked an op).
        self.label = (f"{process.node.name}/p{process.pid}"
                      f"/t{process._thread_count}")

    # -- internals -----------------------------------------------------------------

    @property
    def tracker(self) -> DependencyTracker:
        return self._tracker

    @property
    def batcher(self):
        """The thread's ThreadBatcher, or None when batching is off."""
        return self._batcher

    # -- request batching (repro.batch, opt-in) ---------------------------------------

    def enable_batching(self, max_ops: Optional[int] = None,
                        window_ns: Optional[int] = None,
                        max_frame_bytes: Optional[int] = None):
        """Opt this thread into adaptive request batching.

        Async data ops (``rread_async``/``rwrite_async``) issued within
        ``window_ns`` of each other coalesce into one multi-op frame of
        up to ``max_ops`` sub-ops (defaults from
        :class:`~repro.params.CLibParams`).  Returns the
        :class:`~repro.clib.batch.ThreadBatcher` handle; idempotent.
        Synchronous ops and ops too large for a frame are unaffected.
        """
        if self._batcher is None:
            from repro.clib.batch import ThreadBatcher
            self._batcher = ThreadBatcher(self, max_ops=max_ops,
                                          window_ns=window_ns,
                                          max_frame_bytes=max_frame_bytes)
        return self._batcher

    def disable_batching(self) -> None:
        """Flush anything pending and return to per-op issue."""
        if self._batcher is not None:
            self._batcher.flush()
            self._batcher = None

    def _flush_batches(self) -> None:
        """Push pending batched ops onto the wire before a drain point."""
        if self._batcher is not None:
            self._batcher.flush()

    def _check(self, outcome: RequestOutcome, what: str) -> RequestOutcome:
        status = outcome.body.status if outcome.body is not None else Status.INVALID_VA
        if status is not Status.OK:
            raise RemoteAccessError(status, what)
        return outcome

    def _data_request(self, packet_type: PacketType, va: int, size: int,
                      data: Optional[bytes]):
        process = self.process
        outcome = yield from self._transport.request(
            process.mn, packet_type, pid=process.pid, va=va, size=size,
            data=data)
        return outcome

    # -- metadata (slow path) ---------------------------------------------------------

    def ralloc(self, size: int,
               permission: Permission = Permission.READ_WRITE,
               fixed_va: Optional[int] = None):
        """Process-generator: allocate ``size`` bytes in the RAS, return VA."""
        self.ops_issued += 1
        outcome = yield from self._transport.request(
            self.process.mn, PacketType.ALLOC, pid=self.process.pid,
            payload=(size, permission, fixed_va))
        self._check(outcome, f"ralloc({size})")
        verifier = self.process.node.verifier
        if verifier is not None:
            verifier.alloc_done(self, outcome.body.value.va,
                                outcome.body.value.size)
        cache = self.process.node.cache
        if cache is not None:
            cache.note_alloc(self.process.mn, self.process.pid,
                             outcome.body.value.va, outcome.body.value.size)
        return outcome.body.value.va

    def rfree(self, va: int):
        """Process-generator: free an allocation.

        Metadata/data consistency (section 3.1): conflicting operations
        execute synchronously in program order, so the free first drains
        any in-flight access of this thread.
        """
        self.ops_issued += 1
        self._flush_batches()
        yield from self._tracker.drain()
        cache = self.process.node.cache
        guard = None
        if cache is not None and cache.enabled:
            # Recall every cached line of the allocation *before* the MN
            # frees it, holding the directory locks across the free so no
            # new fill can resurrect a dead line.  When the allocation
            # size wasn't observed (region handed over out of band), the
            # recall happens after the free using the freed page count.
            known = cache.allocation_size(self.process.mn, self.process.pid,
                                          va)
            if known:
                guard = yield from cache.write_guard(self, va, known)
        try:
            outcome = yield from self._transport.request(
                self.process.mn, PacketType.FREE, pid=self.process.pid, va=va)
            self._check(outcome, f"rfree({va:#x})")
            freed_pages = outcome.body.value.freed_pages
            if cache is not None and cache.enabled:
                cache.forget_alloc(self.process.mn, self.process.pid, va)
                if guard is None and freed_pages:
                    late = yield from cache.write_guard(
                        self, va,
                        freed_pages * self.process.page_spec.page_size)
                    cache.guard_end(late)
            verifier = self.process.node.verifier
            if verifier is not None:
                verifier.free_done(
                    self, va, freed_pages * self.process.page_spec.page_size)
            return freed_pages
        finally:
            if guard is not None:
                cache.guard_end(guard)

    # -- asynchronous metadata (section 3.1 offers both versions) ---------------------

    def ralloc_async(self, size: int,
                     permission: Permission = Permission.READ_WRITE):
        """Process-generator: issue a non-blocking ralloc, return a handle.

        The handle's result is the allocated VA.  A fresh allocation can
        conflict with nothing in flight, so issuing never blocks.
        """
        self.ops_issued += 1

        def runner():
            outcome = yield from self._transport.request(
                self.process.mn, PacketType.ALLOC, pid=self.process.pid,
                payload=(size, permission, None))
            self._check(outcome, f"async ralloc({size})")
            verifier = self.process.node.verifier
            if verifier is not None:
                verifier.alloc_done(self, outcome.body.value.va,
                                    outcome.body.value.size)
            cache = self.process.node.cache
            if cache is not None:
                cache.note_alloc(self.process.mn, self.process.pid,
                                 outcome.body.value.va,
                                 outcome.body.value.size)
            return outcome.body.value.va

        process = self.env.process(runner())
        return AsyncHandle(self.env, process, "alloc")
        # Unreachable yield: keeps this a generator like every other
        # async API, so call sites uniformly use `yield from`.
        yield  # pragma: no cover

    def rfree_async(self, va: int, size_hint: int = 0):
        """Process-generator: issue a non-blocking rfree, return a handle.

        Consistency with data operations (section 3.1): the free is
        registered as a *write* over the freed range, so any later access
        of this thread to that range blocks until the free completes (and
        then fails with INVALID_VA, as it must).  ``size_hint`` bounds the
        tracked range; when 0 one page is assumed.
        """
        self.ops_issued += 1
        span = max(size_hint, 1)
        yield from self._tracker.wait_for_conflicts(va, span, is_write=True)
        done = self._tracker.register(va, span, is_write=True)

        def runner():
            try:
                outcome = yield from self._transport.request(
                    self.process.mn, PacketType.FREE, pid=self.process.pid,
                    va=va)
                self._check(outcome, f"async rfree({va:#x})")
                freed_pages = outcome.body.value.freed_pages
                verifier = self.process.node.verifier
                if verifier is not None:
                    verifier.free_done(
                        self, va,
                        freed_pages * self.process.page_spec.page_size)
                return freed_pages
            finally:
                if not done.triggered:
                    done.succeed()

        process = self.env.process(runner())
        return AsyncHandle(self.env, process, "free")

    # -- synchronous data path ----------------------------------------------------------

    def rread(self, va: int, size: int):
        """Process-generator: blocking read; returns the bytes."""
        self.ops_issued += 1
        yield from self._tracker.wait_for_conflicts(va, size, is_write=False)
        cache = self.process.node.cache
        if cache is not None and cache.enabled:
            # The cache owns the oracle tokens for cached ops (hit windows
            # open at serve time; miss windows after directory admission).
            data = yield from cache.read(self, va, size)
            return data
        verifier = self.process.node.verifier
        token = (verifier.read_begin(self, va, size)
                 if verifier is not None else None)
        try:
            outcome = yield from self._data_request(PacketType.READ, va,
                                                    size, None)
            self._check(outcome, f"rread({va:#x}, {size})")
        except BaseException:
            if token is not None:
                verifier.read_failed(token)
            raise
        if token is not None:
            verifier.read_checked(token, outcome.data, outcome.retries)
        return outcome.data

    def rwrite(self, va: int, data: bytes):
        """Process-generator: blocking write."""
        if not data:
            raise ValueError("rwrite needs a non-empty payload")
        self.ops_issued += 1
        yield from self._tracker.wait_for_conflicts(va, len(data), is_write=True)
        cache = self.process.node.cache
        if cache is not None and cache.enabled:
            yield from cache.write(self, va, bytes(data))
            return
        verifier = self.process.node.verifier
        token = (verifier.write_begin(self, va, data)
                 if verifier is not None else None)
        try:
            outcome = yield from self._data_request(
                PacketType.WRITE, va, len(data), bytes(data))
            self._check(outcome, f"rwrite({va:#x}, {len(data)})")
        except BaseException:
            # A failed or rejected write may still have applied at the MN
            # (a crash can eat the ack after the data landed): the oracle
            # keeps its bytes as acceptable "ghost" values.
            if token is not None:
                verifier.write_failed(token)
            raise
        if token is not None:
            verifier.write_acked(token, outcome.retries)

    # -- asynchronous data path ------------------------------------------------------------

    def _async_op(self, packet_type: PacketType, va: int, size: int,
                  data: Optional[bytes], done, vtoken=None):
        verifier = (self.process.node.verifier
                    if vtoken is not None else None)
        try:
            try:
                outcome = yield from self._data_request(packet_type, va,
                                                        size, data)
                self._check(
                    outcome,
                    f"async {packet_type.value}({va:#x}, {size})")
            except BaseException:
                if verifier is not None:
                    if packet_type is PacketType.WRITE:
                        verifier.write_failed(vtoken)
                    else:
                        verifier.read_failed(vtoken)
                raise
            if verifier is not None:
                if packet_type is PacketType.WRITE:
                    verifier.write_acked(vtoken, outcome.retries)
                else:
                    verifier.read_checked(vtoken, outcome.data,
                                          outcome.retries)
            return outcome.data
        finally:
            if not done.triggered:
                done.succeed()

    def _cached_async(self, cache, kind: str, va: int, size: int,
                      data: Optional[bytes], done):
        """Run one async data op through the cache, releasing the
        dependency tracker on completion (tokens live in the cache)."""
        try:
            if kind == "read":
                result = yield from cache.read(self, va, size)
            else:
                result = yield from cache.write(self, va, data)
            return result
        finally:
            if not done.triggered:
                done.succeed()

    def rread_async(self, va: int, size: int):
        """Process-generator: issue a non-blocking read, return a handle.

        Issuing blocks only while a WAR/RAW/WAW conflict with an in-flight
        request of this thread drains (section 4.5).
        """
        self.ops_issued += 1
        yield from self._tracker.wait_for_conflicts(va, size, is_write=False)
        done = self._tracker.register(va, size, is_write=False)
        cache = self.process.node.cache
        if cache is not None and cache.enabled:
            process = self.env.process(
                self._cached_async(cache, "read", va, size, None, done))
            return AsyncHandle(self.env, process, "read")
        verifier = self.process.node.verifier
        vtoken = (verifier.read_begin(self, va, size)
                  if verifier is not None else None)
        batcher = self._batcher
        if batcher is not None and batcher.admits("read", size):
            completion = batcher.submit("read", va, size, None, done, vtoken)
            return AsyncHandle(self.env, completion, "read")
        process = self.env.process(
            self._async_op(PacketType.READ, va, size, None, done,
                           vtoken=vtoken))
        return AsyncHandle(self.env, process, "read")

    def rwrite_async(self, va: int, data: bytes):
        """Process-generator: issue a non-blocking write, return a handle."""
        if not data:
            raise ValueError("rwrite needs a non-empty payload")
        self.ops_issued += 1
        size = len(data)
        yield from self._tracker.wait_for_conflicts(va, size, is_write=True)
        done = self._tracker.register(va, size, is_write=True)
        cache = self.process.node.cache
        if cache is not None and cache.enabled:
            process = self.env.process(
                self._cached_async(cache, "write", va, size, bytes(data),
                                   done))
            return AsyncHandle(self.env, process, "write")
        verifier = self.process.node.verifier
        vtoken = (verifier.write_begin(self, va, data)
                  if verifier is not None else None)
        batcher = self._batcher
        if batcher is not None and batcher.admits("write", size):
            completion = batcher.submit("write", va, size, bytes(data),
                                        done, vtoken)
            return AsyncHandle(self.env, completion, "write")
        process = self.env.process(
            self._async_op(PacketType.WRITE, va, size, bytes(data), done,
                           vtoken=vtoken))
        return AsyncHandle(self.env, process, "write")

    # -- vector data path (scatter/gather) ---------------------------------------------

    def rreadv_async(self, ops: Sequence[tuple[int, int]]):
        """Process-generator: scatter-read ``[(va, size), ...]``.

        The list is chunked into multi-op frames (one header + window
        slot per frame instead of per op) that are all in flight
        concurrently on return.  Returns one handle per op, in order;
        each handle's result is that op's bytes.
        """
        if not ops:
            raise ValueError("rreadv needs at least one (va, size) op")
        cache = self.process.node.cache
        if cache is not None and cache.enabled:
            # Caching and multi-op frames are mutually exclusive: a frame
            # would bypass the line store.  Each op takes the cached path.
            handles = []
            for va, size in ops:
                handle = yield from self.rread_async(va, size)
                handles.append(handle)
            return handles
        from repro.clib.batch import issue_vector
        handles = yield from issue_vector(
            self, "read", [(va, size, None) for va, size in ops])
        return handles

    def rwritev_async(self, ops: Sequence[tuple[int, bytes]]):
        """Process-generator: gather-write ``[(va, data), ...]``; see
        :meth:`rreadv_async`."""
        if not ops:
            raise ValueError("rwritev needs at least one (va, data) op")
        for _va, data in ops:
            if not data:
                raise ValueError("rwritev needs non-empty payloads")
        cache = self.process.node.cache
        if cache is not None and cache.enabled:
            handles = []
            for va, data in ops:
                handle = yield from self.rwrite_async(va, data)
                handles.append(handle)
            return handles
        from repro.clib.batch import issue_vector
        handles = yield from issue_vector(
            self, "write",
            [(va, len(data), bytes(data)) for va, data in ops])
        return handles

    def rreadv(self, ops: Sequence[tuple[int, int]]):
        """Process-generator: blocking scatter read; returns the per-op
        bytes in order (raises on the first failed op)."""
        handles = yield from self.rreadv_async(ops)
        completions = yield from self.rpoll(handles)
        return [completion.result for completion in completions]

    def rwritev(self, ops: Sequence[tuple[int, bytes]]):
        """Process-generator: blocking gather write (raises on the first
        failed op)."""
        handles = yield from self.rwritev_async(ops)
        completions = yield from self.rpoll(handles)
        for completion in completions:
            completion.result   # surface any per-op failure
        return None

    def rpoll(self, handles: Sequence[AsyncHandle]):
        """Process-generator: wait for the given async operations.

        Accepts any mix of handle kinds (alloc/free/read/write, batched
        or not) and returns one :class:`~repro.clib.handles.Completion`
        per handle, in order.  Per-op failures land in the completion's
        ``status``/``error`` instead of raising here; use
        ``completion.result`` to unwrap (re-raising the failure).
        """
        completions = []
        for handle in handles:
            completion = yield from handle.poll()
            completions.append(completion)
        return completions

    # -- synchronization ---------------------------------------------------------------------

    def _atomic(self, va: int, op: AtomicOp) -> "AtomicResult":
        self.ops_issued += 1
        cache = self.process.node.cache
        guard = None
        if cache is not None and cache.enabled:
            # Atomics execute at the MN; recall every cached copy of the
            # word's line — including our own — for the duration, so no
            # CN serves a pre-atomic value from its cache afterwards.
            guard = yield from cache.write_guard(self, va, 8)
        try:
            verifier = self.process.node.verifier
            token = (verifier.atomic_begin(self, va, op)
                     if verifier is not None else None)
            try:
                outcome = yield from self._transport.request(
                    self.process.mn, PacketType.ATOMIC, pid=self.process.pid,
                    va=va, payload=op)
            except BaseException:
                # Retries exhausted: the op may or may not have executed
                # (indeterminate in the recorded history).
                if token is not None:
                    verifier.atomic_failed(token, maybe_applied=True)
                raise
            try:
                self._check(outcome, f"atomic {op.kind}({va:#x})")
            except RemoteAccessError:
                # The MN answered with a rejection: the op never executed.
                if token is not None:
                    verifier.atomic_failed(token, maybe_applied=False)
                raise
            if token is not None:
                verifier.atomic_acked(token, outcome.body.atomic,
                                      outcome.retries)
            return outcome.body.atomic
        finally:
            if guard is not None:
                cache.guard_end(guard)

    def rlock(self, lock_va: int, backoff_ns: int = 200,
              max_backoff_ns: int = 8000):
        """Process-generator: acquire a remote lock (TAS with backoff)."""
        wait = backoff_ns
        attempts = 0
        while True:
            result = yield from self._atomic(lock_va, AtomicOp(kind="tas"))
            attempts += 1
            if result.success:
                return attempts
            yield self.env.timeout(wait)
            wait = min(wait * 2, max_backoff_ns)

    def runlock(self, lock_va: int):
        """Process-generator: release a lock (release semantics).

        All earlier asynchronous operations of this thread complete before
        the unlock is issued — the release ordering of section 3.1.
        """
        self._flush_batches()
        yield from self._tracker.drain()
        yield from self._atomic(lock_va, AtomicOp(kind="store", value=0))

    def rfence(self):
        """Process-generator: full fence.

        Drains this thread's in-flight requests, then asks the MN to
        block all future requests until its own in-flight ones complete.
        """
        self._flush_batches()
        yield from self._tracker.drain()
        self.ops_issued += 1
        outcome = yield from self._transport.request(
            self.process.mn, PacketType.FENCE, pid=self.process.pid)
        self._check(outcome, "rfence")

    def rfaa(self, va: int, delta: int):
        """Process-generator: fetch-and-add; returns the old value."""
        result = yield from self._atomic(va, AtomicOp(kind="faa", value=delta))
        return result.old_value

    def rcas(self, va: int, expected: int, value: int):
        """Process-generator: compare-and-swap; returns (old, success)."""
        result = yield from self._atomic(
            va, AtomicOp(kind="cas", expected=expected, value=value))
        return result.old_value, result.success

    # -- extend path -----------------------------------------------------------------------------

    def invoke_offload(self, name: str, args):
        """Process-generator: call a computation offload at the MN."""
        self.ops_issued += 1
        outcome = yield from self._transport.request(
            self.process.mn, PacketType.OFFLOAD, pid=self.process.pid,
            payload=(name, args))
        self._check(outcome, f"offload {name}")
        result = outcome.body.value
        if not result.ok:
            raise RemoteAccessError(Status.INVALID_VA,
                                    f"offload {name}: {result.error}")
        return result.value

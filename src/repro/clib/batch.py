"""Per-thread request batching: the CLib half of repro.batch.

Small remote ops pay a full Clio header and a congestion-window slot
each; a :class:`ThreadBatcher` coalesces ops issued within a time/count
window into one multi-op BATCH frame so the header, the CLib per-request
overhead, and the window slot amortize across the batch.  Batching is
strictly opt-in (``ClioThread.enable_batching``): with it off, no code
in this module runs and event sequences stay bit-identical.

The explicit vector ops (``rreadv``/``rwritev``) reuse the same frame
machinery without the adaptive window: the caller's list *is* the batch,
greedily chunked into MTU-sized frames that are all issued concurrently
(pipelined), one window slot per frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.net.packet import BatchSubOp, PacketType
from repro.sim import Event


@dataclass(slots=True)
class _PendingOp:
    """One submitted op waiting for (or riding) a frame."""

    kind: str                     # "read" or "write"
    va: int
    size: int
    data: Optional[bytes]
    done: Event                   # dependency-tracker completion
    completion: Event             # fulfils the op's AsyncHandle
    vtoken: Any                   # verifier token (None when disabled)


def _subop_cost(net, kind: str, size: int) -> int:
    """Wire bytes one sub-op adds to a frame."""
    return net.subop_header_bytes + (size if kind == "write" else 0)


def _issue_frame(thread, ops: list[_PendingOp]):
    """Process-generator: one frame on the wire, fan the ack back out.

    The transport treats the frame as a single request (one ID, one
    retransmission unit); this generator distributes the per-sub-op
    statuses to each op's completion event and verifier token.
    """
    process = thread.process
    transport = process.node.transport
    verifier = process.node.verifier
    sub_ops = tuple(
        BatchSubOp(op=PacketType.WRITE if op.kind == "write"
                   else PacketType.READ,
                   va=op.va, size=op.size, data=op.data)
        for op in ops)
    try:
        outcome = yield from transport.request_batch(
            process.mn, process.pid, sub_ops)
    except BaseException as exc:
        # Whole-frame failure (retries exhausted): every rider fails the
        # same way a lone op would — writes become oracle "ghosts".
        for op in ops:
            if verifier is not None and op.vtoken is not None:
                if op.kind == "write":
                    verifier.write_failed(op.vtoken)
                else:
                    verifier.read_failed(op.vtoken)
            op.completion.fail(exc)
            if not op.done.triggered:
                op.done.succeed()
        return
    from repro.clib.client import RemoteAccessError
    from repro.core.pipeline import Status
    offset = 0
    for op, status in zip(ops, outcome.statuses):
        part = None
        if op.kind == "read" and status is Status.OK:
            part = outcome.data[offset:offset + op.size]
            offset += op.size
        if verifier is not None and op.vtoken is not None:
            if status is Status.OK:
                if op.kind == "write":
                    verifier.write_acked(op.vtoken, outcome.retries)
                else:
                    verifier.read_checked(op.vtoken, part, outcome.retries)
            elif op.kind == "write":
                verifier.write_failed(op.vtoken)
            else:
                verifier.read_failed(op.vtoken)
        if status is Status.OK:
            op.completion.succeed(part)
        else:
            op.completion.fail(RemoteAccessError(
                status, f"batched {op.kind}({op.va:#x}, {op.size})"))
        if not op.done.triggered:
            op.done.succeed()


class ThreadBatcher:
    """Coalesces one thread's small async ops into multi-op frames.

    Flush policy (adaptive window):

    * a frame fills to ``max_ops`` sub-ops → flushed immediately;
    * adding an op would overflow the frame byte budget → the pending
      frame is flushed first, the op starts a new one;
    * otherwise a timer flushes whatever accumulated ``window_ns`` after
      the first op of the frame arrived (0 = coalesce only ops issued at
      the same instant).
    """

    def __init__(self, thread, max_ops: Optional[int] = None,
                 window_ns: Optional[int] = None,
                 max_frame_bytes: Optional[int] = None):
        params = thread.process.node.params
        clib = params.clib
        net = params.network
        self.thread = thread
        self.env = thread.env
        self.max_ops = max_ops if max_ops is not None else clib.batch_max_ops
        self.window_ns = (window_ns if window_ns is not None
                          else clib.batch_window_ns)
        # Frame payload budget: descriptors + write payloads must fit one
        # link-layer packet, so a frame never needs request fragmentation.
        self.max_frame_bytes = (max_frame_bytes if max_frame_bytes is not None
                                else net.mtu)
        if self.max_ops < 1:
            raise ValueError(f"max_ops must be >= 1, got {self.max_ops}")
        if self.max_frame_bytes < net.subop_header_bytes + 1:
            raise ValueError("max_frame_bytes below one sub-op descriptor")
        self._net = net
        self._pending: list[_PendingOp] = []
        self._pending_bytes = 0
        self._timer_armed = False
        self.frames_issued = 0
        self.subops_batched = 0

    def admits(self, kind: str, size: int) -> bool:
        """True when an op of this shape can ride a frame at all."""
        return _subop_cost(self._net, kind, size) <= self.max_frame_bytes

    def submit(self, kind: str, va: int, size: int, data: Optional[bytes],
               done: Event, vtoken: Any) -> Event:
        """Queue one op; returns the event that fulfils its handle."""
        cost = _subop_cost(self._net, kind, size)
        if self._pending and self._pending_bytes + cost > self.max_frame_bytes:
            self.flush()
        completion = self.env.event()
        self._pending.append(_PendingOp(kind=kind, va=va, size=size,
                                        data=data, done=done,
                                        completion=completion, vtoken=vtoken))
        self._pending_bytes += cost
        if len(self._pending) >= self.max_ops:
            self.flush()
        elif not self._timer_armed:
            self._timer_armed = True
            self.env.schedule_callback(self.window_ns, self._on_timer)
        return completion

    def _on_timer(self) -> None:
        self._timer_armed = False
        if self._pending:
            self.flush()

    def flush(self) -> None:
        """Issue the pending frame now (no-op when nothing is pending)."""
        if not self._pending:
            return
        frame = self._pending
        self._pending = []
        self._pending_bytes = 0
        self.frames_issued += 1
        self.subops_batched += len(frame)
        self.env.process(_issue_frame(self.thread, frame))


def issue_vector(thread, kind: str, specs):
    """Process-generator shared by rreadv_async/rwritev_async.

    ``specs`` is a list of (va, size, data) triples.  Each op goes
    through dependency admission in list order; batchable ops are
    greedily chunked into MTU-sized frames, oversized ops fall back to
    the classic per-op path.  Every frame (and fallback op) is in flight
    concurrently when this returns — the pipelined issue the paper's
    async API exists for.  Returns one AsyncHandle per op, in order.
    """
    from repro.clib.handles import AsyncHandle
    params = thread.process.node.params
    net = params.network
    batcher = thread.batcher
    if batcher is not None:
        max_ops = batcher.max_ops
        budget = batcher.max_frame_bytes
    else:
        max_ops = params.clib.batch_max_ops
        budget = net.mtu
    handles: list[AsyncHandle] = []
    chunk: list[_PendingOp] = []
    chunk_bytes = 0

    def seal():
        nonlocal chunk, chunk_bytes
        if chunk:
            thread.env.process(_issue_frame(thread, chunk))
            chunk = []
            chunk_bytes = 0

    is_write = kind == "write"
    for va, size, data in specs:
        thread.ops_issued += 1
        if chunk and thread.tracker.conflicts(va, size, is_write=is_write):
            # The conflict may be with an op in the unsent chunk, whose
            # completion needs the chunk on the wire: seal before waiting
            # (ops conflicting within a vector serialize, frame by frame,
            # exactly like the classic per-op async path).
            seal()
        yield from thread.tracker.wait_for_conflicts(va, size,
                                                     is_write=is_write)
        done = thread.tracker.register(va, size, is_write=is_write)
        verifier = thread.process.node.verifier
        if verifier is None:
            vtoken = None
        elif is_write:
            vtoken = verifier.write_begin(thread, va, data)
        else:
            vtoken = verifier.read_begin(thread, va, size)
        cost = _subop_cost(net, kind, size)
        if cost > budget:
            # Too big for any frame: classic per-op issue (the existing
            # path already fragments large writes at the MTU).
            packet_type = PacketType.WRITE if is_write else PacketType.READ
            process = thread.env.process(thread._async_op(
                packet_type, va, size, data, done, vtoken=vtoken))
            handles.append(AsyncHandle(thread.env, process, kind))
            continue
        if chunk and (len(chunk) >= max_ops
                      or chunk_bytes + cost > budget):
            seal()
        completion = thread.env.event()
        chunk.append(_PendingOp(kind=kind, va=va, size=size, data=data,
                                done=done, completion=completion,
                                vtoken=vtoken))
        chunk_bytes += cost
        handles.append(AsyncHandle(thread.env, completion, kind))
    seal()
    return handles

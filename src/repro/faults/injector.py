"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a cluster.

The injector is pure mechanism: at arm time it walks the schedule and
registers one scheduled callback per event (relative to ``env.now``), so
fault application costs nothing on the simulation hot path and perturbs
no RNG stream — a schedule with zero events leaves a run bit-identical
to an uninjected one.

Every application (or deliberate skip, e.g. crashing a board that a
previous event already crashed) is recorded in :attr:`applied`, which is
part of the chaos fingerprint: same seed, same schedule, same log.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule


@dataclass(frozen=True)
class AppliedFault:
    """One injector action as it actually happened (absolute sim time)."""

    at_ns: int
    kind: FaultKind
    target: str
    applied: bool          # False when the event was a no-op (e.g. double crash)
    note: str = ""


class FaultInjector:
    """Arms a schedule against a :class:`~repro.cluster.ClioCluster`."""

    def __init__(self, cluster, schedule: FaultSchedule):
        schedule.validate()
        self.cluster = cluster
        self.env = cluster.env
        self.schedule = schedule
        self.applied: list[AppliedFault] = []
        self._boards = {board.name: board for board in cluster.mns}
        self._armed = False
        # Burst restore state: (node, attr) -> original per-link rates.
        self._burst_depth: dict[tuple[str, str], int] = {}
        self._saved_rates: dict[tuple[str, str], tuple[float, float]] = {}

    def arm(self) -> None:
        """Schedule every event relative to the current simulated time."""
        if self._armed:
            raise ValueError("injector is already armed")
        self._armed = True
        for event in self.schedule.events():
            self.env.schedule_callback(event.at_ns,
                                       partial(self._apply, event))

    # -- application ------------------------------------------------------------

    def _log(self, event: FaultEvent, applied: bool, note: str = "") -> None:
        self.applied.append(AppliedFault(self.env.now, event.kind,
                                         event.target, applied, note))
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.instant(f"fault:{event.kind.value}", "fault",
                           event.target,
                           args={"applied": applied, "note": note})

    def _board(self, name: str):
        board = self._boards.get(name)
        if board is None:
            raise KeyError(f"unknown board {name!r} in fault schedule")
        return board

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind is FaultKind.BOARD_CRASH:
            board = self._board(event.target)
            if not board.alive:
                self._log(event, False, "already crashed")
                return
            board.crash()
            self._log(event, True)
        elif kind is FaultKind.BOARD_RESTART:
            board = self._board(event.target)
            if board.alive:
                self._log(event, False, "not crashed")
                return
            board.restart()
            self._log(event, True)
        elif kind is FaultKind.LINK_DOWN:
            self.cluster.topology.set_node_up(event.target, False)
            self._log(event, True)
        elif kind is FaultKind.LINK_UP:
            self.cluster.topology.set_node_up(event.target, True)
            self._log(event, True)
        elif kind is FaultKind.STALL_BEGIN:
            board = self._board(event.target)
            if board.slow_path.stalled:
                self._log(event, False, "already stalled")
                return
            board.slow_path.begin_stall()
            self._log(event, True)
        elif kind is FaultKind.STALL_END:
            board = self._board(event.target)
            if not board.slow_path.stalled:
                self._log(event, False, "not stalled")
                return
            board.slow_path.end_stall()
            self._log(event, True)
        elif kind is FaultKind.LOSS_BURST:
            self._begin_burst(event, "loss_rate")
        elif kind is FaultKind.CORRUPTION_BURST:
            self._begin_burst(event, "corruption_rate")
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unhandled fault kind {kind}")

    # -- bursts -----------------------------------------------------------------

    def _begin_burst(self, event: FaultEvent, attr: str) -> None:
        """Raise a link-rate attribute on both of a node's links, and
        schedule the restore; nested bursts restore only when the last
        one ends (depth counting keeps overlapping schedules sane)."""
        links = self.cluster.topology.links_for(event.target)
        key = (event.target, attr)
        if self._burst_depth.get(key, 0) == 0:
            self._saved_rates[key] = tuple(getattr(l, attr) for l in links)
        self._burst_depth[key] = self._burst_depth.get(key, 0) + 1
        for link in links:
            setattr(link, attr, event.rate)
        self._log(event, True, f"{attr}={event.rate:g} "
                               f"for {event.duration_ns} ns")
        self.env.schedule_callback(event.duration_ns,
                                   partial(self._end_burst, event, attr))

    def _end_burst(self, event: FaultEvent, attr: str) -> None:
        key = (event.target, attr)
        self._burst_depth[key] -= 1
        if self._burst_depth[key] > 0:
            return
        links = self.cluster.topology.links_for(event.target)
        for link, rate in zip(links, self._saved_rates.pop(key)):
            setattr(link, attr, rate)

    # -- reporting ---------------------------------------------------------------

    def applied_fingerprint(self) -> tuple:
        """Hashable, order-sensitive digest of everything that happened."""
        return tuple((a.at_ns, a.kind.value, a.target, a.applied)
                     for a in self.applied)

"""Deterministic fault schedules.

A :class:`FaultSchedule` is a validated, ordered list of timed
:class:`FaultEvent`\\ s — *what* goes wrong and *when*, decoupled from the
cluster it is applied to.  Schedules are built either explicitly through
the fluent helpers (``crash_board``, ``link_down`` ...) or drawn from a
seeded stream (:meth:`FaultSchedule.random`), so the same seed always
yields the same fault timeline — the foundation of the bit-identical
chaos-run guarantee.

Times are *relative*: event offsets are interpreted against the instant
the :class:`~repro.faults.injector.FaultInjector` is armed, so one
schedule can be replayed against workloads that start at different
simulated times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.sim.rng import RandomStream


class FaultKind(enum.Enum):
    """Every fault primitive the injector knows how to apply."""

    LINK_DOWN = "link_down"            # node's up+down links go dark
    LINK_UP = "link_up"                # ... and come back
    BOARD_CRASH = "board_crash"        # CBoard fail-stop (volatile state lost)
    BOARD_RESTART = "board_restart"    # crashed CBoard powers back on
    STALL_BEGIN = "stall_begin"        # MN ARM slow path stops polling
    STALL_END = "stall_end"            # ... and resumes
    LOSS_BURST = "loss_burst"          # transient packet loss on a node's links
    CORRUPTION_BURST = "corruption_burst"  # transient corruption on a node's links


#: Kinds that need a duration (the injector schedules the matching end).
_BURST_KINDS = frozenset({FaultKind.LOSS_BURST, FaultKind.CORRUPTION_BURST})
#: Kinds that need a rate in [0, 1].
_RATE_KINDS = _BURST_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: apply ``kind`` to ``target`` at ``at_ns``.

    ``at_ns`` is relative to injector arm time.  ``duration_ns`` is only
    meaningful for burst kinds (loss/corruption), where the injector
    restores the original link rates at ``at_ns + duration_ns``.
    ``rate`` is the burst Bernoulli probability.
    """

    at_ns: int
    kind: FaultKind
    target: str
    duration_ns: int = 0
    rate: float = 0.0

    def __post_init__(self):
        if self.at_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_ns}")
        if not self.target:
            raise ValueError("fault needs a target node/board name")
        if self.kind in _BURST_KINDS and self.duration_ns <= 0:
            raise ValueError(
                f"{self.kind.value} needs a positive duration_ns")
        if self.kind in _RATE_KINDS and not 0.0 < self.rate <= 1.0:
            raise ValueError(
                f"{self.kind.value} rate must be in (0, 1], got {self.rate}")

    @property
    def sort_key(self) -> tuple:
        # Stable total order: time, then kind name, then target — two
        # events at the same instant always apply in the same order.
        return (self.at_ns, self.kind.value, self.target)


class FaultSchedule:
    """An ordered, validated collection of :class:`FaultEvent`\\ s."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: list[FaultEvent] = list(events)

    # -- fluent builders (each returns self for chaining) -----------------------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._events.append(event)
        return self

    def link_down(self, at_ns: int, node: str,
                  duration_ns: Optional[int] = None) -> "FaultSchedule":
        """Sever a node's links; reconnect after ``duration_ns`` if given."""
        self.add(FaultEvent(at_ns, FaultKind.LINK_DOWN, node))
        if duration_ns is not None:
            if duration_ns <= 0:
                raise ValueError(f"duration must be positive, got {duration_ns}")
            self.add(FaultEvent(at_ns + duration_ns, FaultKind.LINK_UP, node))
        return self

    def link_up(self, at_ns: int, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at_ns, FaultKind.LINK_UP, node))

    def crash_board(self, at_ns: int, board: str,
                    restart_after_ns: Optional[int] = None) -> "FaultSchedule":
        """Fail-stop a CBoard; power it back on after ``restart_after_ns``."""
        self.add(FaultEvent(at_ns, FaultKind.BOARD_CRASH, board))
        if restart_after_ns is not None:
            if restart_after_ns <= 0:
                raise ValueError(
                    f"restart delay must be positive, got {restart_after_ns}")
            self.add(FaultEvent(at_ns + restart_after_ns,
                                FaultKind.BOARD_RESTART, board))
        return self

    def restart_board(self, at_ns: int, board: str) -> "FaultSchedule":
        return self.add(FaultEvent(at_ns, FaultKind.BOARD_RESTART, board))

    def stall_slowpath(self, at_ns: int, board: str,
                       duration_ns: int) -> "FaultSchedule":
        """Freeze a board's ARM slow path for ``duration_ns``."""
        if duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {duration_ns}")
        self.add(FaultEvent(at_ns, FaultKind.STALL_BEGIN, board))
        self.add(FaultEvent(at_ns + duration_ns, FaultKind.STALL_END, board))
        return self

    def loss_burst(self, at_ns: int, node: str, duration_ns: int,
                   rate: float) -> "FaultSchedule":
        """Transiently drop packets on a node's links at ``rate``."""
        return self.add(FaultEvent(at_ns, FaultKind.LOSS_BURST, node,
                                   duration_ns=duration_ns, rate=rate))

    def corruption_burst(self, at_ns: int, node: str, duration_ns: int,
                         rate: float) -> "FaultSchedule":
        """Transiently corrupt packets on a node's links at ``rate``."""
        return self.add(FaultEvent(at_ns, FaultKind.CORRUPTION_BURST, node,
                                   duration_ns=duration_ns, rate=rate))

    # -- access -----------------------------------------------------------------

    def events(self) -> tuple[FaultEvent, ...]:
        """Events in deterministic application order."""
        return tuple(sorted(self._events, key=lambda e: e.sort_key))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events())

    def validate(self) -> None:
        """Check pairwise consistency (down/up, crash/restart nesting).

        Individual events are validated at construction; this checks the
        cross-event invariants: no double-crash without a restart, no
        restart of a board that is not down, same for links and stalls.
        """
        paired = {
            FaultKind.LINK_DOWN: FaultKind.LINK_UP,
            FaultKind.BOARD_CRASH: FaultKind.BOARD_RESTART,
            FaultKind.STALL_BEGIN: FaultKind.STALL_END,
        }
        closers = {v: k for k, v in paired.items()}
        open_state: dict[tuple[FaultKind, str], int] = {}
        for event in self.events():
            if event.kind in paired:
                key = (event.kind, event.target)
                if open_state.get(key):
                    raise ValueError(
                        f"{event.kind.value} on {event.target} at "
                        f"{event.at_ns} ns while already applied")
                open_state[key] = 1
            elif event.kind in closers:
                key = (closers[event.kind], event.target)
                if not open_state.get(key):
                    raise ValueError(
                        f"{event.kind.value} on {event.target} at "
                        f"{event.at_ns} ns without a matching open fault")
                open_state[key] = 0

    # -- seeded random generation ------------------------------------------------

    @classmethod
    def random(cls, seed: int, duration_ns: int, boards: Sequence[str],
               nodes: Sequence[str] = (), fault_count: int = 4,
               min_gap_ns: int = 10_000) -> "FaultSchedule":
        """Draw a valid random schedule from a dedicated seeded stream.

        Crashes and link-downs are always paired with their recovery
        within the window, so a random schedule never leaves the cluster
        permanently degraded — the workload must be able to finish.
        """
        if fault_count < 1:
            raise ValueError(f"fault_count must be >= 1, got {fault_count}")
        if not boards:
            raise ValueError("need at least one board name")
        # Each fault gets its own slot of the window so a random schedule
        # never opens a fault (stall, crash, link-down) that is already
        # open on the same target — overlap-free by construction.
        slot = duration_ns // fault_count
        if slot <= 4 * min_gap_ns:
            raise ValueError("window too short for a random schedule")
        rng = RandomStream(seed, "faults/schedule")
        schedule = cls()
        targets = list(nodes)
        for index in range(fault_count):
            base = index * slot
            start = base + rng.uniform_int(0, slot // 4)
            hold = rng.uniform_int(min_gap_ns, slot // 2)
            roll = rng.uniform_int(0, 3 if targets else 1)
            if roll == 0:
                schedule.crash_board(start, rng.choice(list(boards)),
                                     restart_after_ns=hold)
            elif roll == 1:
                schedule.stall_slowpath(start, rng.choice(list(boards)), hold)
            elif roll == 2:
                schedule.link_down(start, rng.choice(targets),
                                   duration_ns=hold)
            else:
                schedule.loss_burst(start, rng.choice(targets), hold,
                                    rate=0.05 + 0.15 * rng.uniform())
        return schedule

"""Canned chaos scenarios: a workload plus a fault schedule plus checks.

The harness runs a YCSB-style read/write mix on every CN while a
:class:`~repro.faults.injector.FaultInjector` replays a schedule against
the cluster, then audits the wreckage:

* **liveness** — every worker finished before the deadline (no hangs);
* **typed completion** — every operation either succeeded or raised a
  typed error (``RequestFailed`` / ``RemoteAccessError``), never an
  untyped one;
* **counter balance** — per CN, requests issued equals completed plus
  failed once the run drains;
* **determinism** — :meth:`ChaosReport.fingerprint` is bit-identical
  across same-seed runs.

Workers pin their PIDs explicitly: PIDs feed the page-table hash, so
drawing them from the shared global counter would make fingerprints
depend on how many processes earlier tests created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.clib.client import RemoteAccessError
from repro.cluster import ClioCluster
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.params import MB, MS, US, ClioParams
from repro.sim.rng import RandomStream
from repro.transport.clib_transport import RequestFailed

#: PID base for chaos workers; far from anything the global counter issues.
_CHAOS_PID_BASE = 9001


@dataclass(frozen=True)
class OpRecord:
    """One workload operation as observed by the worker."""

    worker: int
    index: int
    op: str           # "read" | "write"
    started_ns: int
    finished_ns: int
    status: str       # "ok" | "request_failed" | "remote_error"


@dataclass
class ChaosReport:
    """Everything a chaos run produced, in deterministic form."""

    scenario: str
    seed: int
    finished: bool                      # all workers completed by deadline
    now_ns: int
    ops: list[OpRecord]
    faults: tuple                       # injector.applied_fingerprint()
    cn_counters: dict[str, dict]
    board_counters: dict[str, dict]
    crash_window: Optional[tuple[int, int]] = None  # (crash_ns, restart_ns)
    notes: list[str] = field(default_factory=list)
    #: ClusterVerifier.report() when the run was verified; None otherwise.
    #: Deliberately NOT part of fingerprint(): verification is passive, and
    #: the fingerprint must stay bit-identical with it on or off.
    verification: Optional[dict] = None
    #: Per-CN cache + directory counters when the run was cached; None
    #: otherwise.  Not in fingerprint(): the cached and uncached data
    #: paths differ by design, and the op records already pin cached-run
    #: determinism.
    cache_counters: Optional[dict] = None

    # -- derived ---------------------------------------------------------------

    @property
    def completed_ops(self) -> int:
        return sum(1 for op in self.ops if op.status == "ok")

    @property
    def failed_ops(self) -> int:
        return sum(1 for op in self.ops if op.status != "ok")

    def fingerprint(self) -> tuple:
        """Hashable digest that must be bit-identical for the same seed."""
        return (
            self.scenario, self.seed, self.finished, self.now_ns,
            tuple((o.worker, o.index, o.op, o.started_ns, o.finished_ns,
                   o.status) for o in self.ops),
            self.faults,
            tuple(sorted((name, tuple(sorted(c.items())))
                         for name, c in self.cn_counters.items())),
        )

    def check_invariants(self) -> list[str]:
        """Audit the run; returns a list of violations (empty == healthy)."""
        problems = []
        if not self.finished:
            problems.append("workload hung: not all workers finished")
        for op in self.ops:
            if op.status not in ("ok", "request_failed", "remote_error"):
                problems.append(
                    f"op {op.worker}/{op.index} ended untyped: {op.status}")
            if op.finished_ns < op.started_ns:
                problems.append(
                    f"op {op.worker}/{op.index} finished before it started")
        for name, counters in self.cn_counters.items():
            issued = counters["requests_issued"]
            settled = (counters["requests_completed"]
                       + counters["requests_failed"])
            if issued != settled:
                problems.append(
                    f"{name}: {issued} issued != {settled} settled "
                    "(a request neither completed nor failed)")
        if self.verification is not None:
            if self.verification["read_mismatches"]:
                problems.extend(self.verification["mismatch_details"])
            if self.verification["epoch_violations"]:
                problems.extend(self.verification["epoch_details"])
            if self.verification["invariant_violations"]:
                problems.extend(self.verification["violations"])
        return problems

    def phase_throughput(self, settle_ns: int = 100 * US) -> Optional[dict]:
        """Ops/s before the crash vs. after the restart (+ settle margin).

        Only meaningful for scenarios with a single crash window; returns
        None otherwise or when either phase saw no completed ops.
        """
        if self.crash_window is None:
            return None
        crash_ns, restart_ns = self.crash_window
        pre = [o for o in self.ops
               if o.status == "ok" and o.finished_ns < crash_ns]
        post_start = restart_ns + settle_ns
        post = [o for o in self.ops
                if o.status == "ok" and o.started_ns >= post_start]
        if not pre or not post:
            return None
        pre_span = max(o.finished_ns for o in pre) - min(o.started_ns
                                                         for o in pre)
        post_span = max(o.finished_ns for o in post) - min(o.started_ns
                                                           for o in post)
        if pre_span <= 0 or post_span <= 0:
            return None
        pre_tput = len(pre) * 1_000_000_000 / pre_span
        post_tput = len(post) * 1_000_000_000 / post_span
        return {
            "pre_ops": len(pre), "post_ops": len(post),
            "pre_ops_per_sec": pre_tput, "post_ops_per_sec": post_tput,
            "recovery_ratio": post_tput / pre_tput,
        }


def _chaos_params() -> ClioParams:
    """Prototype params with failure timeouts shrunk to chaos scale.

    The default 100 ms backoff ceiling is right for production but makes
    a 5 ms chaos window spend its whole budget in one retry sleep; the
    cap stays (satellite: bounded retransmission), just smaller.
    """
    from dataclasses import replace
    params = ClioParams.prototype()
    return replace(params, clib=replace(params.clib, timeout_ns=20 * US,
                                        slow_timeout_ns=1 * MS,
                                        max_retries=3))


# -- scenario definitions ------------------------------------------------------

def _schedule_board_crash(seed: int) -> tuple[FaultSchedule, tuple[int, int]]:
    crash, restart = 1 * MS, int(2.5 * MS)
    schedule = FaultSchedule().crash_board(crash, "mn0",
                                           restart_after_ns=restart - crash)
    return schedule, (crash, restart)


def _schedule_link_flap(seed: int):
    schedule = (FaultSchedule()
                .link_down(1 * MS, "cn1", duration_ns=1 * MS)
                .link_down(3 * MS, "cn1", duration_ns=500 * US))
    return schedule, None


def _schedule_slowpath_stall(seed: int):
    schedule = FaultSchedule().stall_slowpath(500 * US, "mn0", 300 * US)
    return schedule, None


def _schedule_loss_burst(seed: int):
    schedule = (FaultSchedule()
                .loss_burst(1 * MS, "cn0", 1 * MS, rate=0.3)
                .corruption_burst(2 * MS, "cn1", 500 * US, rate=0.2))
    return schedule, None


def _schedule_random(seed: int):
    schedule = FaultSchedule.random(seed, duration_ns=4 * MS,
                                    boards=["mn0"], nodes=["cn0", "cn1"])
    return schedule, None


SCENARIOS: dict[str, Callable] = {
    "board-crash": _schedule_board_crash,
    "link-flap": _schedule_link_flap,
    "slowpath-stall": _schedule_slowpath_stall,
    "loss-burst": _schedule_loss_burst,
    "random": _schedule_random,
}


# -- the harness ---------------------------------------------------------------

def run_chaos(scenario: str = "board-crash", seed: int = 1234,
              ops_per_worker: int = 1200, num_cns: int = 2,
              region_bytes: int = 4 * MB, io_bytes: int = 64,
              read_fraction: float = 0.5,
              deadline_ns: int = 200 * MS,
              params: Optional[ClioParams] = None,
              schedule: Optional[FaultSchedule] = None,
              verify: bool = False,
              cached: Optional[str] = None,
              partitioned: bool = False) -> ChaosReport:
    """Run one chaos scenario end to end and return its report.

    ``schedule`` overrides the canned one (scenario then only names the
    report).  The workload is a YCSB-A-style mix: each worker does
    ``ops_per_worker`` reads/writes of ``io_bytes`` at seeded offsets in
    its own region, tolerating typed failures and recording every op.

    With ``verify=True`` the full checking stack (shadow oracle +
    invariant sweeps) rides along; checking is passive, so the report's
    fingerprint is bit-identical either way, and its findings land in
    ``report.verification`` (audited by ``check_invariants``).

    ``partitioned=True`` runs the same scenario on the partitioned
    engine (one event wheel per board/CN plus the switch tier); the
    single-process partitioned scheduler is bit-identical to the flat
    engine, so the report fingerprint must not change.

    ``cached="through"`` / ``cached="back"`` opts every CN into the
    hot-page cache — and, so coherence traffic actually crosses CNs,
    flips the workload from per-worker regions to ONE shared region
    (worker 0 allocates, everyone hammers it under the same PID).  The
    faults then land while lines are cached (and dirty, under
    write-back): recalls race crashes, invalidations ride flapping
    links.  Per-CN and directory counters land in
    ``report.cache_counters``.
    """
    if scenario not in SCENARIOS and schedule is None:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"pick one of {sorted(SCENARIOS)}")
    crash_window = None
    if schedule is None:
        schedule, crash_window = SCENARIOS[scenario](seed)

    cluster = ClioCluster(params=params or _chaos_params(), seed=seed,
                          num_cns=num_cns, mn_capacity=256 * MB,
                          partitioned=partitioned)
    verifier = cluster.enable_verification() if verify else None
    if cached is not None:
        cluster.enable_caching(policy=cached, capacity_lines=64)
    injector = FaultInjector(cluster, schedule)
    env = cluster.env
    records: list[OpRecord] = []
    done_events = [env.event() for _ in range(num_cns)]
    rng = RandomStream(seed, "faults/chaos")
    # Cached runs share one region (see docstring); worker 0 allocates
    # and signals the rest through `region_ready`.
    region_ready = env.event()
    shared_region = {}

    def worker(index: int):
        pid = (_CHAOS_PID_BASE if cached is not None
               else _CHAOS_PID_BASE + index)
        thread = cluster.cn(index).process("mn0", pid=pid).thread()
        wrng = rng.fork(f"worker{index}")
        try:
            if cached is not None and index > 0:
                yield region_ready
                va = shared_region["va"]
            else:
                va = yield from thread.ralloc(region_bytes)
                if cached is not None:
                    shared_region["va"] = va
                    region_ready.succeed()
            payload = bytes((index + 1,)) * io_bytes
            span = region_bytes - io_bytes
            for op_index in range(ops_per_worker):
                offset = (wrng.uniform_int(0, span // io_bytes)) * io_bytes
                is_read = wrng.uniform() < read_fraction
                op = "read" if is_read else "write"
                started = env.now
                status = "ok"
                try:
                    if is_read:
                        yield from thread.rread(va + offset, io_bytes)
                    else:
                        yield from thread.rwrite(va + offset, payload)
                except RequestFailed:
                    status = "request_failed"
                except RemoteAccessError:
                    status = "remote_error"
                records.append(OpRecord(index, op_index, op, started,
                                        env.now, status))
        finally:
            done_events[index].succeed()

    for index in range(num_cns):
        env.process(worker(index))
    injector.arm()

    # run(until=deadline), NOT until=event: a hung worker must surface as
    # `finished=False`, not as a wall-clock hang (background MN processes
    # keep the queue alive forever).
    all_done = env.all_of(done_events)
    cluster.run(until=deadline_ns)
    finished = all_done.triggered

    report = ChaosReport(
        scenario=scenario, seed=seed, finished=finished, now_ns=env.now,
        ops=sorted(records, key=lambda o: (o.worker, o.index)),
        faults=injector.applied_fingerprint(),
        cn_counters={
            node.name: {
                "requests_issued": node.transport.requests_issued,
                "requests_completed": node.transport.requests_completed,
                "requests_failed": node.transport.requests_failed,
                "total_retries": node.transport.total_retries,
            } for node in cluster.cns
        },
        board_counters={board.name: board.stats() for board in cluster.mns},
        crash_window=crash_window,
    )
    if verifier is not None:
        verifier.sweep()
        report.verification = verifier.report()
    if cached is not None:
        counters = {
            node.name: {
                "hits": node.cache.hits, "misses": node.cache.misses,
                "evictions": node.cache.evictions,
                "invalidations": node.cache.invalidations,
                "writebacks": node.cache.writebacks,
                "flush_retries": node.cache.flush_retries,
            } for node in cluster.cns
        }
        directory = cluster.cache_dir
        counters["dir"] = {
            "requests_served": directory.requests_served,
            "fills": directory.fills,
            "write_txns": directory.write_txns,
            "recalls": directory.recalls,
            "downgrades": directory.downgrades,
            "invals_sent": directory.invals_sent,
            "inval_retries": directory.inval_retries,
        }
        report.cache_counters = counters
    return report


# -- rack-scale chaos -----------------------------------------------------------
#
# Rack membership events (drains, joins, crashes mid-migration, lease-expiry
# evictions) are chaos in the same spirit as the schedules above, but they
# need the sharded tier — a controller, a ring, and the membership state
# machine — which the flat chaos harness deliberately does not build.  The
# verify harness owns that assembly, so rack chaos delegates to it and this
# module just names the scenarios alongside the classic ones.

from repro.verify.harness import RACK_SCENARIOS  # noqa: E402  (re-export)


def run_rack_chaos(scenario: str = "drain", seed: int = 1234,
                   boards: int = 8, tors: int = 2,
                   clients: int = 64, ops_per_client: int = 4,
                   partitioned: bool = False):
    """Run one rack membership-chaos scenario; returns a
    :class:`~repro.verify.harness.VerifyRunResult`.

    The workload is the rack zipfian YCSB with the full checking stack
    attached (shadow oracle, linearizability on the sync word), and the
    named membership event fired mid-traffic.  Scenarios are
    ``RACK_SCENARIOS``: ``"drain"``, ``"add"``, ``"crash-mid-migration"``,
    ``"evict"``.
    """
    from repro.verify.harness import run_rack_ycsb
    if scenario not in RACK_SCENARIOS:
        raise ValueError(f"unknown rack scenario {scenario!r}; "
                         f"pick one of {sorted(RACK_SCENARIOS)}")
    return run_rack_ycsb(seed=seed, boards=boards, tors=tors,
                         clients=clients, ops_per_client=ops_per_client,
                         scenario=scenario, partitioned=partitioned)

"""Heartbeat-based board health tracking.

The global controller must not place regions on a dead board, but — like
a real control plane — it cannot observe ``board.alive`` directly; it
only sees missed heartbeats.  :class:`HealthMonitor` polls each board on
a fixed interval and declares it dead after ``miss_threshold``
consecutive misses, giving failure *detection latency* its real shape:
a crashed board keeps receiving (and dropping) traffic until the monitor
notices.

The monitor is deterministic: fixed interval, no RNG, and it is off by
default (``ClioCluster.start_health_monitor`` opts in), so a no-fault
run's event sequence is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.telemetry.metrics import MetricsRegistry, StatsView


@dataclass(frozen=True)
class HealthTransition:
    """One belief change: the monitor marked a board up or down."""

    at_ns: int
    board: str
    alive: bool


class HealthMonitor:
    """Polls boards every ``interval_ns``; belief lags reality by design."""

    def __init__(self, env, boards: Sequence, interval_ns: int = 100_000,
                 miss_threshold: int = 3,
                 registry: Optional[MetricsRegistry] = None):
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        if miss_threshold < 1:
            raise ValueError(
                f"miss threshold must be >= 1, got {miss_threshold}")
        self.env = env
        self.interval_ns = interval_ns
        self.miss_threshold = miss_threshold
        self._boards = list(boards)
        self._misses = {board.name: 0 for board in self._boards}
        self._believed_alive = {board.name: True for board in self._boards}
        self.transitions: list[HealthTransition] = []
        self.heartbeats = 0
        self._started = False
        self._armed = False    # a sweep callback is scheduled
        self.tracer = None
        self.metrics = (registry if registry is not None
                        else MetricsRegistry()).scope("health")
        self._stats = StatsView({
            "heartbeats": self.metrics.counter(
                "heartbeats", fn=lambda: self.heartbeats),
            "dead_boards": self.metrics.gauge(
                "dead_boards", fn=self.dead_boards),
            "transitions": self.metrics.counter(
                "transitions", fn=lambda: len(self.transitions)),
        })

    def start(self) -> None:
        """Begin the periodic heartbeat sweep (idempotent)."""
        if self._started:
            return
        self._started = True
        if not self._armed:
            self._armed = True
            self.env.schedule_callback(self.interval_ns, self._sweep)

    def stop(self) -> None:
        """Stop sweeping (idempotent); beliefs and history are kept.

        The already-scheduled callback still fires once but does nothing
        and does not re-arm, so no further sweeps (or events) occur —
        unless ``start`` re-enables the monitor first.
        """
        self._started = False

    def _sweep(self) -> None:
        if not self._started:
            self._armed = False
            return
        for board in self._boards:
            name = board.name
            if board.alive:
                # Heartbeat answered: instant (mis)trust recovery.
                self.heartbeats += 1
                self._misses[name] = 0
                if not self._believed_alive[name]:
                    self._believed_alive[name] = True
                    self.transitions.append(
                        HealthTransition(self.env.now, name, True))
                    if self.tracer is not None:
                        self.tracer.instant("board_up", "health", name)
            else:
                self._misses[name] += 1
                if (self._believed_alive[name]
                        and self._misses[name] >= self.miss_threshold):
                    self._believed_alive[name] = False
                    self.transitions.append(
                        HealthTransition(self.env.now, name, False))
                    if self.tracer is not None:
                        self.tracer.instant("board_down", "health", name,
                                            args={"misses": self._misses[name]})
        self.env.schedule_callback(self.interval_ns, self._sweep)

    # -- queries -----------------------------------------------------------------

    def is_alive(self, name: str) -> bool:
        """Current *belief* — lags the board's true state by detection time."""
        return self._believed_alive.get(name, False)

    def dead_boards(self) -> list[str]:
        return sorted(name for name, alive in self._believed_alive.items()
                      if not alive)

    def stats(self) -> dict:
        return self._stats.snapshot()

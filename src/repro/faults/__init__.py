"""repro.faults — deterministic fault injection and failure recovery.

Faults are data: a seeded :class:`FaultSchedule` of timed events, armed
against a live cluster by a :class:`FaultInjector`, with failure
*detection* modeled separately by the heartbeat :class:`HealthMonitor`.
Canned end-to-end scenarios (chaos harness) live in
:mod:`repro.faults.scenarios` — imported lazily because scenarios pull
in the whole cluster stack.
"""

from repro.faults.health import HealthMonitor, HealthTransition
from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "AppliedFault",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "HealthMonitor",
    "HealthTransition",
]

"""Calibration parameters for the Clio reproduction.

Every timing, capacity, and energy constant used by the simulation lives
here, in one frozen dataclass per subsystem, so that experiments can swap
profiles (FPGA prototype, ASIC projection, CloudLab RNIC) without touching
model code.  The values are taken from the paper's text and its cited
measurements; see DESIGN.md section 4 for the provenance of each number.

All times are integer nanoseconds; all sizes are bytes; all rates are
bits per second unless a name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

# ---------------------------------------------------------------------------
# Unit helpers
# ---------------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30
TB = 1 << 40

GBPS = 1_000_000_000  # bits per second


def transmit_time_ns(size_bytes: int, rate_bps: int) -> int:
    """Serialization delay of ``size_bytes`` on a ``rate_bps`` link, in ns."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return max(1, (size_bytes * 8 * SEC) // rate_bps)


# ---------------------------------------------------------------------------
# CBoard (memory node) parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CBoardParams:
    """Timing/capacity model of the CBoard memory node.

    The prototype profile matches the Xilinx ZCU106 board used in the
    paper (250 MHz FPGA, 512-bit datapath, 2 GB on-board DRAM); the ASIC
    projection scales the clock to 2 GHz and uses server-class DDR access
    time, mirroring the paper's Figure 6 projection methodology.
    """

    # Fast-path clock
    cycle_ns: float = 4.0                  # 250 MHz FPGA
    datapath_bits: int = 512               # bits ingested per cycle (II = 1)

    # Pipeline stage depths, in cycles.  The paper says every request
    # completes in a fixed number of cycles; these depths reflect the
    # described stages (MAT dispatch, translation, permission check,
    # request decode/response formation).
    mat_cycles: int = 2
    decode_cycles: int = 3
    translate_cycles: int = 2              # TLB CAM lookup
    permission_cycles: int = 1
    fault_cycles: int = 3                  # bounded page-fault handling
    response_cycles: int = 3

    # Memory system
    dram_capacity: int = 2 * GB
    dram_access_ns: int = 300              # FPGA board memory controller
    dram_bandwidth_bps: int = 120 * GBPS   # on-board DDR4 stream bandwidth
    tlb_entries: int = 64
    page_table_slots_per_bucket: int = 8   # 8 x 16B PTEs = one DRAM burst
    page_table_overprovision: float = 2.0  # 2x extra slots (paper default)
    default_page_size: int = 4 * MB        # huge pages (paper default)

    # Network stack on the board (thin checksum + ack layer)
    netstack_cycles: int = 4
    port_rate_bps: int = 10 * GBPS         # ZCU106 SFP+ port

    # Slow path (ARM Cortex-A53)
    arm_cores: int = 4
    fpga_arm_crossing_ns: int = 40 * US    # interconnect delay (paper §5)
    arm_polling_handoff_ns: int = 2 * US   # RX-ring poll + worker handoff
    arm_va_search_ns: int = 3 * US         # one VA-tree search pass
    arm_retry_ns: int = 500 * US           # per retry when PT nearly full (paper: ~0.5ms)
    arm_pa_alloc_ns: int = 15 * US         # single PA allocation (paper: <20us)
    # Pre-reserved free PAs.  Each entry is one 8-byte PPN, so a deep
    # buffer is still tiny on-chip state; depth bounds how large a fault
    # burst the board absorbs before the ARM's refill rate matters.
    async_buffer_depth: int = 512

    # Retry dedup buffer: 3 x TIMEOUT x bandwidth (30 KB in the paper)
    retry_buffer_bytes: int = 30 * KB

    @property
    def pipeline_cycles(self) -> int:
        """Fixed number of cycles a no-fault request spends in the pipeline."""
        return (
            self.mat_cycles
            + self.decode_cycles
            + self.translate_cycles
            + self.permission_cycles
            + self.response_cycles
            + self.netstack_cycles
        )

    def pipeline_ns(self, faulted: bool = False) -> int:
        cycles = self.pipeline_cycles + (self.fault_cycles if faulted else 0)
        return int(round(cycles * self.cycle_ns))

    def asic_projection(self) -> "CBoardParams":
        """Scale FPGA clock to a 2 GHz ASIC and use server DDR access time."""
        return replace(self, cycle_ns=0.5, dram_access_ns=100)


# ---------------------------------------------------------------------------
# Network parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NetworkParams:
    """Ethernet fabric model: CN NIC -- ToR switch -- CBoard."""

    mtu: int = 1500                        # link-layer payload bytes
    header_bytes: int = 64                 # Ethernet + Clio header per packet
    # Per-sub-op descriptor inside a multi-op BATCH frame (opcode, VA,
    # size).  Small relative to header_bytes: that gap is exactly the
    # header amortization batching buys.
    subop_header_bytes: int = 16
    cn_nic_rate_bps: int = 40 * GBPS       # ConnectX-3 at the CN
    mn_port_rate_bps: int = 10 * GBPS      # ZCU106 SFP+ at the MN
    switch_rate_bps: int = 40 * GBPS
    propagation_ns: int = 200              # per hop
    switch_forward_ns: int = 300
    loss_rate: float = 0.0                 # packet loss probability
    corruption_rate: float = 0.0           # packet corruption probability
    jitter_ns: int = 120                   # per-packet uniform jitter bound


# ---------------------------------------------------------------------------
# CLib (compute-node library) parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CLibParams:
    """CN-side library costs and transport policy."""

    request_overhead_ns: int = 250         # total CLib processing (paper §7.1)
    poll_interval_ns: int = 100
    # Data-path retry TIMEOUT.  Must sit comfortably above the RTT band
    # the congestion controller tolerates (target_rtt), or healthy
    # requests under load retry spuriously and feed the queue they wait in.
    timeout_ns: int = 30 * US
    # Slow-path and offload requests legitimately take far longer than a
    # data access (VA allocation can retry for milliseconds near-full), so
    # they use a separate, generous timeout.
    slow_timeout_ns: int = 100 * MS
    # Hard cap on retransmission: original + max_retries attempts, then the
    # transport raises a typed RequestFailed.  This is what turns a dead
    # board or severed link into a bounded, loud failure instead of an
    # unbounded retry loop once the backoff saturates at slow_timeout_ns.
    max_retries: int = 4                   # retries before reporting an error

    # Congestion control. The algorithm is CN-side software and therefore
    # swappable (R7): "swift" (delay AIMD, the paper's design), "timely"
    # (gradient-based), or "static" (fixed window).
    cc_algorithm: str = "swift"
    cwnd_init: float = 8.0
    cwnd_min: float = 0.1                  # may fall below one packet
    cwnd_max: float = 256.0
    cwnd_additive_increase: float = 1.0
    cwnd_multiplicative_decrease: float = 0.7
    # Delay target for AIMD.  Keeping ~10 bulk responses queued at a
    # 10 Gbps port costs ~9 us, so the target must allow that much
    # standing queue or the controller throttles below line rate.
    target_rtt_ns: int = 15 * US

    # Incast control
    iwnd_bytes: int = 256 * KB             # max outstanding expected response bytes

    # Request batching (repro.batch) — opt-in per thread and therefore
    # inert by default: nothing reads these unless a thread calls
    # ``enable_batching`` or issues a vector op.
    batch_max_ops: int = 16                # sub-ops coalesced per frame
    batch_window_ns: int = 500             # max linger before a forced flush

    def __post_init__(self) -> None:
        if self.batch_max_ops < 1:
            raise ValueError(
                f"batch_max_ops must be >= 1, got {self.batch_max_ops}")
        if self.batch_window_ns < 0:
            raise ValueError(
                f"batch_window_ns must be non-negative, "
                f"got {self.batch_window_ns}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}")
        if self.timeout_ns <= 0:
            raise ValueError(
                f"timeout_ns must be positive, got {self.timeout_ns}")
        if self.slow_timeout_ns < self.timeout_ns:
            raise ValueError(
                f"slow_timeout_ns ({self.slow_timeout_ns}) must be >= "
                f"timeout_ns ({self.timeout_ns}): it is the backoff ceiling")


# ---------------------------------------------------------------------------
# CN-side hot-page cache parameters (repro.cache)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheParams:
    """CN-local DRAM hot-page cache (repro.cache) — opt-in, inert by default.

    Nothing reads these unless ``ClioCluster.enable_caching()`` is called;
    a cache-off run schedules zero extra events and stays bit-identical to
    the pre-cache goldens.
    """

    line_bytes: int = 4 * KB               # cache-line granularity
    capacity_lines: int = 1024             # per-CN line capacity
    eviction: str = "lru"                  # "lru" | "clock"
    policy: str = "through"                # "through" | "back"
    hit_ns: int = 300                      # local DRAM access on a hit
    dir_process_ns: int = 500              # directory per-request processing
    flush_retry_ns: int = 20 * US          # backoff between flush attempts

    def __post_init__(self) -> None:
        if self.line_bytes < 8:
            raise ValueError(
                f"line_bytes must be >= 8 (atomic word), got {self.line_bytes}")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(
                f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.capacity_lines < 2:
            raise ValueError(
                f"capacity_lines must be >= 2, got {self.capacity_lines}")
        if self.eviction not in ("lru", "clock"):
            raise ValueError(
                f"eviction must be 'lru' or 'clock', got {self.eviction!r}")
        if self.policy not in ("through", "back"):
            raise ValueError(
                f"policy must be 'through' or 'back', got {self.policy!r}")
        if self.hit_ns <= 0:
            raise ValueError(f"hit_ns must be positive, got {self.hit_ns}")
        if self.dir_process_ns <= 0:
            raise ValueError(
                f"dir_process_ns must be positive, got {self.dir_process_ns}")
        if self.flush_retry_ns <= 0:
            raise ValueError(
                f"flush_retry_ns must be positive, got {self.flush_retry_ns}")


@dataclass(frozen=True)
class AllocParams:
    """ARM slow-path allocation strategy selection (repro.alloc).

    The defaults reproduce the paper exactly: a FIFO free-list for
    physical pages and first-fit VA search, bit-identical to the
    original allocators.  Alternative strategies are pure-bookkeeping
    swaps — no extra events, no RNG — so two runs differing only here
    diverge only where the allocator itself decides differently.
    """

    pa_strategy: str = "freelist"          # "freelist"|"slab"|"buddy"|"arena"
    va_policy: str = "first-fit"           # "first-fit"|"next-fit"|"best-fit"|"jump"
    slab_pages: int = 64                   # contiguous pages per slab
    slab_classes: int = 4                  # size classes (pids hash onto these)
    arena_batch_pages: int = 16            # global-pool pages per arena refill
    arena_stash_max: int = 64              # stash size triggering a lazy spill
    arena_buffer_depth: int = 32           # per-process async free-page buffer

    def __post_init__(self) -> None:
        if self.pa_strategy not in ("freelist", "slab", "buddy", "arena"):
            raise ValueError(
                f"pa_strategy must be one of freelist/slab/buddy/arena, "
                f"got {self.pa_strategy!r}")
        if self.va_policy not in ("first-fit", "next-fit", "best-fit", "jump"):
            raise ValueError(
                f"va_policy must be one of first-fit/next-fit/best-fit/jump, "
                f"got {self.va_policy!r}")
        for name in ("slab_pages", "slab_classes", "arena_batch_pages",
                     "arena_buffer_depth"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.arena_stash_max < self.arena_batch_pages:
            raise ValueError(
                f"arena_stash_max ({self.arena_stash_max}) must be >= "
                f"arena_batch_pages ({self.arena_batch_pages})")


# ---------------------------------------------------------------------------
# Multi-tenant QoS parameters (repro.net.qos + controller quotas)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantConfig:
    """One tenant of a pooled memory deployment.

    ``clients`` are CN node names (``"cn0"``): the switch-egress shaper
    classifies packets by their source node, so a tenant is the set of
    compute nodes it runs on.  ``share`` is the fraction of the shaped
    egress port (or of the CXL pool port) reserved for the tenant;
    ``quota_bytes`` caps the tenant's allocated capacity (``None`` =
    uncapped) wherever capacity QoS is enforced (the global controller,
    the CXL pool allocator).
    """

    name: str
    clients: tuple = ()
    share: float = 1.0
    quota_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a non-empty name")
        if not 0.0 < self.share <= 1.0:
            raise ValueError(
                f"tenant {self.name!r}: share must be in (0, 1], "
                f"got {self.share}")
        if self.quota_bytes is not None and self.quota_bytes <= 0:
            raise ValueError(
                f"tenant {self.name!r}: quota_bytes must be positive, "
                f"got {self.quota_bytes}")


@dataclass(frozen=True)
class QoSParams:
    """Multi-tenant isolation knobs — opt-in, inert by default.

    Nothing reads these unless ``ClioCluster.enable_qos()`` is called
    (or the CXL pool is built with tenants): a QoS-off run installs no
    shaper, schedules zero extra events, and stays bit-identical to the
    pre-QoS goldens.

    ``burst_bytes`` is the token-bucket depth per tenant at a shaped
    egress queue: how far a tenant may exceed its reserved rate before
    its packets queue in the shaper.  Shares are *reservations*, not
    work-conserving weights: a tenant is never throttled below its
    share, and never rides above it through another tenant's idleness —
    that hard ceiling is what makes the isolation guarantee composable.
    """

    tenants: tuple = ()
    burst_bytes: int = 3 * KB              # ~2 MTU-sized packets
    shape_mn_egress: bool = True           # shape switch->MN downlinks

    def __post_init__(self) -> None:
        if self.burst_bytes <= 0:
            raise ValueError(
                f"burst_bytes must be positive, got {self.burst_bytes}")
        names = [tenant.name for tenant in self.tenants]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate tenant names: {names}")
        total = sum(tenant.share for tenant in self.tenants)
        if self.tenants and total > 1.0 + 1e-9:
            raise ValueError(
                f"tenant shares sum to {total}, must be <= 1.0 "
                "(shares are hard reservations of one port)")
        clients = [c for tenant in self.tenants for c in tenant.clients]
        if len(clients) != len(set(clients)):
            raise ValueError(
                f"a client node may belong to only one tenant: {clients}")

    def tenant_of(self, node: str):
        """The tenant a CN node belongs to, or ``None`` (unshaped)."""
        for tenant in self.tenants:
            if node in tenant.clients:
                return tenant
        return None


# ---------------------------------------------------------------------------
# CXL load/store backend parameters (repro.baselines.cxl)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CXLParams:
    """Cache-line-granularity load/store pooled memory (CXL 2.0-style).

    The model is a timing model in the spirit of the other baselines —
    calibrated to published CXL.mem measurements (CXL-DMSim, emucxl):
    a far-memory line load lands in the 300-400 ns band, roughly 2-3x
    local DRAM and ~5x *below* an RDMA round trip, because a load/store
    has no RPC framing, no NIC doorbell, and no header amortization to
    win back.  The flip side the model also keeps: every access moves
    whole 64 B lines (sub-line wins, bulk loses), and pooled sharing
    pays coherence — a store to a line another host holds dirty must
    snoop and back-invalidate it first.
    """

    line_bytes: int = 64                   # CXL.mem transfer granularity
    load_ns: int = 350                     # far-memory line load (pooled)
    store_ns: int = 300                    # posted store to pooled device
    hdm_decode_ns: int = 30                # HDM decoder + interleave math
    switch_hop_ns: int = 80                # CXL switch traversal (pooling)
    line_pipeline_ns: int = 40             # per extra line, pipelined
    port_rate_bps: int = 64 * GBPS         # x8 CXL 2.0 link
    hdm_program_ns: int = 500              # decoder reprogram on alloc
    coherence: bool = True                 # track cross-host line sharing
    snoop_ns: int = 180                    # probe a clean remote copy
    back_invalidate_ns: int = 500          # recall a dirty remote line
    back_invalidate_pipelined_ns: int = 200  # per extra recalled line

    def __post_init__(self) -> None:
        if self.line_bytes < 8 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(
                f"line_bytes must be a power of two >= 8, "
                f"got {self.line_bytes}")
        for name in ("load_ns", "store_ns", "port_rate_bps"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}")
        for name in ("hdm_decode_ns", "switch_hop_ns", "line_pipeline_ns",
                     "hdm_program_ns", "snoop_ns", "back_invalidate_ns",
                     "back_invalidate_pipelined_ns"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)}")


# ---------------------------------------------------------------------------
# Backend selection (repro.baselines.api)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendParams:
    """Setup knobs for the comparison backends, in one place.

    Mirrors :class:`AllocParams`: the per-backend constructor kwargs that
    used to be scattered across ``benchmarks/`` (``dram_capacity=...``,
    ``on_bluefield=...``, ``capacity_slots=...``) fold into this block,
    so an experiment swaps backends by swapping ``ClioParams.backend``
    and nothing else.  Direct constructor kwargs still work but are
    deprecated (they warn).
    """

    name: str = "clio"                     # default comparison subject
    dram_capacity: int | None = None     # None = CBoardParams default
    pinned: bool = True                    # RDMA: pin MRs at registration
    capacity_slots: int = 1 << 16          # Clover: value slots in the MR
    server_cores: int | None = None      # HERD: RPC polling cores
    tenant: str = "default"                # CXL: tenant the backend runs as

    _KNOWN = ("clio", "rdma", "legoos", "clover", "herd", "herd-bf", "cxl")

    def __post_init__(self) -> None:
        if self.name not in self._KNOWN:
            raise ValueError(
                f"backend must be one of {self._KNOWN}, got {self.name!r}")
        if self.dram_capacity is not None and self.dram_capacity <= 0:
            raise ValueError(
                f"dram_capacity must be positive, got {self.dram_capacity}")
        if self.capacity_slots <= 0:
            raise ValueError(
                f"capacity_slots must be positive, got {self.capacity_slots}")
        if self.server_cores is not None and self.server_cores <= 0:
            raise ValueError(
                f"server_cores must be positive, got {self.server_cores}")


# ---------------------------------------------------------------------------
# RDMA baseline parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RDMAParams:
    """Model of a commodity RNIC (ConnectX-3 'local' profile by default).

    The scalability cliffs (Figure 4/5) come from finite on-chip caches for
    QP state, page-table entries (MTT), and memory-region metadata, with a
    PCIe crossing on every miss; the fault path goes through the host OS.
    """

    base_read_rtt_ns: int = 2000           # no-miss 16B read round trip (CX3)
    base_write_rtt_ns: int = 1200          # RNIC acks writes before DRAM commit
    per_byte_ns_num: int = 8               # serialization handled by net model
    qp_cache_entries: int = 256
    pte_cache_entries: int = 256           # 2^8 local cluster profile
    mr_cache_entries: int = 256
    pcie_miss_penalty_ns: int = 900        # PCIe round trip to host memory
    miss_amplification: float = 4.0        # paper: 4x when metadata off-chip
    qp_state_bytes: int = 375              # per-connection state
    max_mrs: int = 1 << 18                 # RDMA fails beyond 2^18 MRs
    mr_register_base_ns: int = 10 * US
    mr_register_per_page_ns: int = 600     # pinning cost per 4 KB page
    odp_page_fault_ns: int = 16_800 * US   # 16.8 ms (paper measurement)
    host_page_size: int = 4 * KB

    @classmethod
    def cloudlab(cls) -> "RDMAParams":
        """ConnectX-5 profile: bigger caches, same cliffs later (2^12)."""
        return cls(
            base_read_rtt_ns=1500,
            base_write_rtt_ns=1100,
            qp_cache_entries=1024,
            pte_cache_entries=4096,        # 2^12
            mr_cache_entries=1024,
        )


# ---------------------------------------------------------------------------
# Other baselines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LegoOSParams:
    """LegoOS software MN: thread pool + software hash translation over RDMA."""

    software_handling_ns: int = 2400       # per-request MN software cost
    thread_pool_size: int = 8
    peak_goodput_bps: int = 77 * GBPS      # paper measurement


@dataclass(frozen=True)
class CloverParams:
    """Clover-style passive disaggregated memory (PDM)."""

    write_round_trips: int = 3             # "at least 2 RTTs" per write:
                                           # out-of-place data write, cursor
                                           # lookup, metadata CAS commit
    metadata_lookup_ns: int = 450          # CN-side management work per op
    cursor_chase_probability: float = 0.15 # extra RTT chance on reads under contention


@dataclass(frozen=True)
class HERDParams:
    """HERD RPC key-value over RDMA; optionally on a BlueField SmartNIC."""

    cpu_handling_ns: int = 350             # MN CPU per-op RPC processing
    cpu_per_byte_ns: float = 0.8           # request/response memcpy on CPU
    bluefield_crossing_ns: int = 1500      # ConnectX-5 chip <-> ARM chip hop
    bluefield_handling_ns: int = 900       # slower ARM cores
    bluefield_per_byte_ns: float = 1.6     # slower ARM memcpy
    server_cores: int = 4                  # dedicated RPC polling cores


# ---------------------------------------------------------------------------
# Energy / cost model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnergyParams:
    """Per-unit power draw used in Figure 18 / section 7.3 accounting."""

    xeon_core_watt: float = 9.5            # Intel Xeon Gold 5218 per active core
    arm_core_watt: float = 0.75            # Cortex-A53 per core
    fpga_watt: float = 9.0                 # measured FPGA power (paper)
    bluefield_watt: float = 20.0           # BlueField card
    cn_library_watt: float = 9.5           # one busy CN core running CLib

    # CapEx inputs (USD, market prices circa the paper).  The paper's
    # framing: "a server box costs more than the DRAM it hosts".
    server_base_cost: float = 4500.0       # 2-socket host server, no DRAM
    cboard_cost: float = 2495.0            # ZCU106 market price (paper §5)
    dram_cost_per_gb: float = 4.0
    optane_cost_per_gb: float = 2.0
    server_idle_watt: float = 120.0
    cboard_idle_watt: float = 20.0
    optane_watt_per_dimm: float = 15.0     # host-attached, full-power mode
    optane_lowpower_watt_per_dimm: float = 2.0  # CBoard-driven standby mode
    dram_watt_per_64gb: float = 5.0


# ---------------------------------------------------------------------------
# Top-level bundle
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClioParams:
    """Bundle of all subsystem parameter sets, with named profiles."""

    cboard: CBoardParams = field(default_factory=CBoardParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    clib: CLibParams = field(default_factory=CLibParams)
    cache: CacheParams = field(default_factory=CacheParams)
    alloc: AllocParams = field(default_factory=AllocParams)
    rdma: RDMAParams = field(default_factory=RDMAParams)
    legoos: LegoOSParams = field(default_factory=LegoOSParams)
    clover: CloverParams = field(default_factory=CloverParams)
    herd: HERDParams = field(default_factory=HERDParams)
    cxl: CXLParams = field(default_factory=CXLParams)
    qos: QoSParams = field(default_factory=QoSParams)
    backend: BackendParams = field(default_factory=BackendParams)
    energy: EnergyParams = field(default_factory=EnergyParams)

    @classmethod
    def prototype(cls) -> "ClioParams":
        """The FPGA prototype used for all headline numbers."""
        return cls()

    @classmethod
    def asic_projection(cls) -> "ClioParams":
        """Figure 6's 'Clio if built as a 2 GHz ASIC' projection."""
        base = cls()
        return replace(base, cboard=base.cboard.asic_projection())

    @classmethod
    def cloudlab(cls) -> "ClioParams":
        """CloudLab profile: ConnectX-5 RNIC baseline parameters."""
        return replace(cls(), rdma=RDMAParams.cloudlab())


DEFAULT_PARAMS = ClioParams.prototype()

"""Command-line experiment runner: ``python -m repro <command>``.

Quick, scriptable access to the common experiments without writing a
simulation program:

* ``latency``  — end-to-end read/write latency distribution on Clio;
* ``goodput``  — end-to-end goodput for a thread count / request size;
* ``compare``  — one-op latency across Clio and every baseline;
* ``alloc``    — VA/PA allocation costs vs RDMA MR registration;
* ``ycsb``     — Clio-KV under a YCSB mix;
* ``chaos``    — a fault-injection scenario with invariant checks;
* ``verify``   — the runtime correctness stack: shadow oracle, invariant
  sweeps, and linearizability checks over recorded histories;
* ``metrics``  — an instrumented run: metrics dashboard, span summary,
  and an optional Chrome/Perfetto trace export.

Every command prints a table via :mod:`repro.analysis.report` and returns
a process exit code of 0 on success.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis.report import render_table
from repro.analysis.stats import LatencyRecorder, rate_gbps
from repro.cluster import ClioCluster
from repro.params import ClioParams

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


def _parse_size(text: str) -> int:
    """'64', '4KB', '16MB', '2GB' -> bytes."""
    text = text.strip().upper()
    for suffix, factor in (("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * factor)
    return int(text)


def _profile(name: str) -> ClioParams:
    profiles = {
        "prototype": ClioParams.prototype,
        "asic": ClioParams.asic_projection,
        "cloudlab": ClioParams.cloudlab,
    }
    if name not in profiles:
        raise SystemExit(f"unknown profile {name!r}; "
                         f"choose from {sorted(profiles)}")
    return profiles[name]()


# -- commands ----------------------------------------------------------------------


def cmd_latency(args) -> int:
    cluster = ClioCluster(params=_profile(args.profile), seed=args.seed,
                          mn_capacity=1 * GB)
    thread = cluster.cn(0).process("mn0").thread()
    recorder = LatencyRecorder("clio")
    size = _parse_size(args.size)
    payload = b"x" * size

    def app():
        va = yield from thread.ralloc(max(size, 4 * MB))
        yield from thread.rwrite(va, payload)
        for _ in range(args.ops):
            start = cluster.env.now
            if args.write:
                yield from thread.rwrite(va, payload)
            else:
                yield from thread.rread(va, size)
            recorder.add(cluster.env.now - start)

    cluster.run(until=cluster.env.process(app()))
    summary = recorder.summary()
    print(render_table(
        f"Clio {'write' if args.write else 'read'} latency, "
        f"{size}B x {args.ops} ops ({args.profile})",
        ["median us", "mean us", "p99 us", "p99.9 us", "max us"],
        [[summary["median_us"], summary["mean_us"], summary["p99_us"],
          summary["p999_us"], summary["max_us"]]]))
    return 0


def cmd_goodput(args) -> int:
    size = _parse_size(args.size)
    cluster = ClioCluster(params=_profile(args.profile), seed=args.seed,
                          num_cns=min(4, args.threads), mn_capacity=2 * GB,
                          page_size=64 * KB)
    ready = []

    def setup():
        for index in range(args.threads):
            thread = cluster.cn(index % len(cluster.cns)).process(
                "mn0").thread()
            va = yield from thread.ralloc(8 * MB)
            for offset in range(0, 8 * MB, 64 * KB):
                yield from thread.rwrite(va + offset, b"\0" * 64)
            ready.append((thread, va))

    cluster.run(until=cluster.env.process(setup()))
    payload = b"g" * size
    started = cluster.env.now

    def worker(thread, va):
        outstanding = []
        page = 64 * KB
        for index in range(args.ops):
            offset = (index * page) % (8 * MB - size)
            if args.asynchronous:
                handle = yield from thread.rwrite_async(va + offset, payload)
                outstanding.append(handle)
                if len(outstanding) >= 16:
                    yield from thread.rpoll([outstanding.pop(0)])
            else:
                yield from thread.rwrite(va + offset, payload)
        yield from thread.rpoll(outstanding)

    procs = [cluster.env.process(worker(thread, va))
             for thread, va in ready]
    cluster.run(until=cluster.env.all_of(procs))
    total = args.threads * args.ops * size
    goodput = rate_gbps(total, cluster.env.now - started)
    print(render_table(
        f"Clio write goodput ({args.profile})",
        ["threads", "size_B", "mode", "goodput_Gbps"],
        [[args.threads, size,
          "async" if args.asynchronous else "sync", round(goodput, 2)]]))
    return 0


def cmd_compare(args) -> int:
    """Same workload through every backend via the MemoryBackend protocol.

    One generic loop — setup, alloc, prime, timed reads (and, with
    ``--write``, timed writes) — runs unchanged against each selected
    backend; nothing here knows any system's native API.  Adding a
    backend to :data:`repro.baselines.api.BACKEND_NAMES` adds its row.
    """
    from repro.baselines.api import BACKEND_NAMES, create_backend

    size = _parse_size(args.size)
    params = _profile(args.profile)
    if args.backends == "all":
        names = BACKEND_NAMES
    else:
        names = tuple(name.strip() for name in args.backends.split(","))
        unknown = [name for name in names if name not in BACKEND_NAMES]
        if unknown:
            raise SystemExit(f"unknown backends {unknown}; "
                             f"choose from {', '.join(BACKEND_NAMES)}")
    rows = []
    for name in names:
        backend = create_backend(name, params=params, seed=args.seed)
        reads = LatencyRecorder(f"{name}/read")
        writes = LatencyRecorder(f"{name}/write")
        payload = b"g" * size

        def app(backend=backend, reads=reads, writes=writes):
            yield from backend.setup()
            handle = yield from backend.alloc(4 * MB)
            yield from backend.write(handle, 0, b"p" * size)
            for _ in range(args.ops):
                start = backend.env.now
                yield from backend.read(handle, 0, size)
                reads.add(backend.env.now - start)
            if args.write:
                for _ in range(args.ops):
                    start = backend.env.now
                    yield from backend.write(handle, 0, payload)
                    writes.add(backend.env.now - start)
            yield from backend.free(handle)

        backend.run_process(app())
        row = [name, round(reads.median_ns / 1000, 2),
               round(reads.p99_ns / 1000, 2)]
        if args.write:
            row += [round(writes.median_ns / 1000, 2),
                    round(writes.p99_ns / 1000, 2)]
        rows.append(row)

    headers = ["backend", "read median us", "read p99 us"]
    if args.write:
        headers += ["write median us", "write p99 us"]
    print(render_table(
        f"{size}B latency across backends ({args.profile})", headers, rows))
    return 0


def cmd_alloc(args) -> int:
    if args.churn:
        return _cmd_alloc_churn(args)
    from repro.baselines.rdma import RDMAMemoryNode
    from repro.sim import Environment

    size = _parse_size(args.size)
    params = _profile(args.profile)
    cluster = ClioCluster(params=params, seed=args.seed, mn_capacity=8 * GB)
    board = cluster.mn
    timings = {}

    def clio_app():
        start = cluster.env.now
        response = yield from board.slow_path.handle_alloc(pid=1, size=size)
        timings["va_us"] = (cluster.env.now - start) / 1000
        timings["retries"] = response.retries
        start = cluster.env.now
        yield from board.slow_path.single_pa_alloc()
        timings["pa_us"] = (cluster.env.now - start) / 1000

    cluster.run(until=cluster.env.process(clio_app()))

    from dataclasses import replace

    from repro.params import BackendParams

    env = Environment()
    node = RDMAMemoryNode(
        env, replace(params, backend=BackendParams(dram_capacity=8 * GB)))

    def rdma_app():
        start = env.now
        yield from node.register_mr(size, pinned=True)
        timings["mr_us"] = (env.now - start) / 1000

    env.run(until=env.process(rdma_app()))
    print(render_table(
        f"Allocation costs for {args.size} ({args.profile})",
        ["Clio VA us", "retries", "Clio PA us", "RDMA MR reg us"],
        [[timings["va_us"], timings["retries"], timings["pa_us"],
          timings["mr_us"]]]))
    return 0


def _cmd_alloc_churn(args) -> int:
    """Fragmentation/churn scenario across allocation strategies."""
    from repro.workloads.churn import CHURN_SCENARIOS, run_churn

    scenario = args.churn
    if scenario not in CHURN_SCENARIOS:
        raise SystemExit(f"unknown churn scenario {scenario!r}; choose from "
                         f"{sorted(CHURN_SCENARIOS)}")
    strategies = ([args.strategy] if args.strategy
                  else ["freelist", "slab", "buddy", "arena"])
    policies = [args.va_policy] if args.va_policy else ["first-fit"]
    rows = []
    failures = 0
    fingerprints = {}
    for strategy in strategies:
        for policy in policies:
            report = run_churn(scenario, pa_strategy=strategy,
                               va_policy=policy, seed=args.seed,
                               ops=args.ops, partitioned=args.pdes)
            summary = report.summary()
            failures += len(report.violations)
            fingerprints[(strategy, policy)] = report.fingerprint()
            rows.append([
                strategy, policy, summary["ops"], summary["failed"],
                round(summary["alloc_p50_us"], 1),
                round(summary["alloc_p99_us"], 1),
                summary["retries"], summary["retry_max"],
                summary["slow_crossings"], summary["fragmentation"],
                len(report.violations), summary["fingerprint"][:12],
            ])
    print(render_table(
        f"churn scenario '{scenario}' (seed {args.seed}"
        + (", pdes" if args.pdes else "") + ")",
        ["strategy", "va policy", "ops", "failed", "p50 us", "p99 us",
         "retries", "retry max", "crossings", "frag", "violations",
         "fingerprint"], rows))
    if args.check_determinism:
        for (strategy, policy), fingerprint in fingerprints.items():
            rerun = run_churn(scenario, pa_strategy=strategy,
                              va_policy=policy, seed=args.seed,
                              ops=args.ops, partitioned=not args.pdes)
            tag = f"{strategy}/{policy}"
            if rerun.fingerprint() != fingerprint:
                print(f"DETERMINISM VIOLATION: {tag} diverges across engines")
                failures += 1
            else:
                print(f"determinism ok: {tag} matches on the other engine")
    if failures:
        print(f"{failures} problem(s) detected")
        return 1
    return 0


def cmd_ycsb(args) -> int:
    from repro.apps.kv_store import ClioKV, register_kv_offload
    from repro.sim.rng import RandomStream
    from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload

    mix = args.workload.upper()
    if mix not in YCSB_WORKLOADS:
        raise SystemExit(f"unknown YCSB workload {mix!r}; choose A, B, or C")
    cluster = ClioCluster(params=_profile(args.profile), seed=args.seed,
                          num_cns=2, mn_capacity=2 * GB)
    register_kv_offload(cluster.mn.extend_path, buckets=4 * args.keys)
    kv = ClioKV(cluster.cn(0).process("mn0").thread())
    workload = YCSBWorkload(YCSB_WORKLOADS[mix], RandomStream(args.seed, "cli"),
                            num_keys=args.keys, value_size=1024)
    recorder = LatencyRecorder("ycsb")

    def app():
        for key, value in workload.load_phase():
            yield from kv.put(key, value)
        for op in workload.operations(args.ops):
            start = cluster.env.now
            if op[0] == "get":
                yield from kv.get(op[1])
            else:
                yield from kv.put(op[1], op[2])
            recorder.add(cluster.env.now - start)

    cluster.run(until=cluster.env.process(app()))
    summary = recorder.summary()
    print(render_table(
        f"Clio-KV YCSB-{mix}: {args.keys} keys, {args.ops} ops "
        f"({args.profile})",
        ["median us", "mean us", "p99 us"],
        [[summary["median_us"], summary["mean_us"], summary["p99_us"]]]))
    return 0


def cmd_chaos(args) -> int:
    from repro.faults.scenarios import SCENARIOS, run_chaos

    if args.scenario not in SCENARIOS:
        raise SystemExit(f"unknown scenario {args.scenario!r}; "
                         f"choose from {sorted(SCENARIOS)}")
    cached = "back" if args.cache else None
    kwargs = dict(ops_per_worker=args.ops, cached=cached, verify=args.cache)
    if args.cache:
        # A small shared region keeps the workers on each other's lines.
        kwargs["region_bytes"] = 64 * 1024
    report = run_chaos(args.scenario, seed=args.seed,
                       partitioned=args.pdes, **kwargs)
    problems = report.check_invariants()
    failures = sorted({op.status for op in report.ops if op.status != "ok"})
    rows = [[report.scenario, "yes" if report.finished else "NO",
             report.completed_ops, report.failed_ops,
             ",".join(failures) or "-", len(report.faults)]]
    print(render_table(
        f"chaos: {args.scenario} (seed {args.seed})",
        ["scenario", "finished", "ops ok", "ops failed", "failure kinds",
         "faults applied"], rows))
    tput = report.phase_throughput()
    if tput is not None:
        print(render_table(
            "crash recovery (ops/s before crash vs after restart)",
            ["pre ops/s", "post ops/s", "recovery"],
            [[round(tput["pre_ops_per_sec"]), round(tput["post_ops_per_sec"]),
              f"{tput['recovery_ratio']:.1%}"]]))
    if report.cache_counters is not None:
        directory = report.cache_counters["dir"]
        hits = sum(c["hits"] for n, c in report.cache_counters.items()
                   if n != "dir")
        misses = sum(c["misses"] for n, c in report.cache_counters.items()
                     if n != "dir")
        print(render_table(
            "cache coherence under faults",
            ["hits", "misses", "recalls", "downgrades", "inval retries",
             "flush retries"],
            [[hits, misses, directory["recalls"], directory["downgrades"],
              directory["inval_retries"],
              sum(c["flush_retries"] for n, c in
                  report.cache_counters.items() if n != "dir")]]))
    if args.check_determinism:
        # Rerun on the *other* engine too: the single-process partitioned
        # scheduler must match the flat engine bit for bit.
        repeat = run_chaos(args.scenario, seed=args.seed,
                           partitioned=not args.pdes, **kwargs)
        if repeat.fingerprint() != report.fingerprint():
            problems.append("partitioned/flat engines disagree on the "
                            "same-seed fingerprint")
        else:
            print("determinism: flat and partitioned fingerprints "
                  "bit-identical")
    if problems:
        for problem in problems:
            print(f"INVARIANT VIOLATED: {problem}")
        return 1
    print("invariants: all hold")
    return 0


def cmd_verify(args) -> int:
    """Run the correctness-checking stack end to end (docs/correctness.md).

    Four passes: the MN atomic unit under multi-CN contention with a
    crash mid-run (linearizability + invariants), Clio-KV get/put under
    a YCSB-A-style mix with a crash (linearizability), a YCSB-A data mix
    over batched rread/rwrite (shadow oracle + linearizability with the
    adaptive batcher on), and a verified chaos scenario (shadow oracle +
    invariant sweeps).  Exit 1 on any violation, with the offending
    telemetry spans printed for context.
    """
    from repro.verify import (
        run_batched_ycsb,
        run_cached_ycsb,
        run_kv_linearizability,
        run_sync_linearizability,
        run_verified_chaos,
        spans_near,
    )

    failures: list[str] = []
    rows = []

    def audit(result):
        status = "ok" if result.ok else "VIOLATED"
        if result.lin is not None and result.lin.ok is None:
            status = "undecided"
        rows.append([result.name, result.history_len,
                     "yes" if (result.lin and result.lin.ok) else
                     ("n/a" if result.lin is None else "NO"),
                     result.report.get("read_mismatches", 0),
                     len(result.violations), status])
        for problem in result.problems():
            failures.append(problem)
            at_ns = None
            for violation in result.violations:
                at_ns = violation.at_ns
                break
            if at_ns is not None:
                failures.extend(spans_near(result.tracer, at_ns))

    sync_result = run_sync_linearizability(
        seed=args.seed, num_clients=args.clients,
        ops_per_client=args.ops, crash=not args.no_crash,
        partitioned=args.pdes)
    audit(sync_result)
    kv_result = run_kv_linearizability(
        seed=args.seed, ops_per_client=args.ops, crash=not args.no_crash,
        partitioned=args.pdes)
    audit(kv_result)
    batched_result = run_batched_ycsb(
        seed=args.seed, num_clients=args.clients, ops_per_client=args.ops,
        partitioned=args.pdes)
    audit(batched_result)
    if args.cache:
        # The coherence acceptance passes: plain write-through, then the
        # two hard histories — crash and migration while lines are
        # cached and dirty (docs/caching.md).
        audit(run_cached_ycsb(seed=args.seed, ops_per_client=args.ops,
                              policy="through", partitioned=args.pdes))
        audit(run_cached_ycsb(seed=args.seed, ops_per_client=args.ops,
                              policy="back", crash=not args.no_crash,
                              partitioned=args.pdes))
        audit(run_cached_ycsb(seed=args.seed, ops_per_client=args.ops,
                              policy="back", migrate=True,
                              partitioned=args.pdes))

    if getattr(args, "alloc", False):
        # The allocator acceptance rows: the mixed-size churn scenario
        # through every PA strategy with the oracle and per-metadata-op
        # invariant sweeps (PA conservation, double-map, strategy audit).
        from repro.verify import ALLOC_STRATEGIES, run_alloc_churn
        for strategy in ALLOC_STRATEGIES:
            audit(run_alloc_churn(scenario="small-large-mix",
                                  pa_strategy=strategy,
                                  seed=args.seed, ops=args.ops * 2,
                                  partitioned=args.pdes))

    if getattr(args, "rack", False):
        # The rack acceptance rows: a graceful drain and a crash landing
        # mid-migration, both under the zipfian YCSB with the oracle and
        # the sync-word linearizability check attached.
        from repro.verify import run_rack_ycsb
        for scenario in ("drain", "crash-mid-migration"):
            audit(run_rack_ycsb(
                seed=args.seed, boards=args.rack_boards,
                clients=args.rack_clients, ops_per_client=args.ops,
                scenario=scenario, partitioned=args.pdes))

    if getattr(args, "qos", False):
        # The multi-tenant acceptance rows: the noisy-neighbor scenario
        # shaped and unshaped, with the oracle and invariant sweeps on.
        # Shaped must hold the victim's p99 inflation to <= 1.5x; the
        # unshaped row documents the leak QoS closes (>= 2x).
        from repro.verify import run_qos_noisy_neighbor
        for shaping in (True, False):
            result = run_qos_noisy_neighbor(
                seed=args.seed, shaping=shaping, partitioned=args.pdes)
            audit(result)
            inflation = result.extras["victim_p99_inflation"]
            if shaping and inflation > 1.5:
                failures.append(
                    f"{result.name}: victim p99 inflated {inflation:.2f}x "
                    "with shaping on (bar: <= 1.5x)")
            if not shaping and inflation < 2.0:
                failures.append(
                    f"{result.name}: victim p99 inflated only "
                    f"{inflation:.2f}x unshaped — the scenario no longer "
                    "congests the shared egress (expected >= 2x)")

    chaos = run_verified_chaos(args.scenario, seed=args.seed or 1234,
                               ops_per_worker=args.ops * 10,
                               partitioned=args.pdes)
    chaos_problems = chaos.check_invariants()
    verification = chaos.verification or {}
    rows.append([f"chaos:{args.scenario}", len(chaos.ops),
                 "n/a", verification.get("read_mismatches", 0),
                 verification.get("invariant_violations", 0),
                 "ok" if not chaos_problems else "VIOLATED"])
    failures.extend(chaos_problems)

    print(render_table(
        f"repro verify (seed {args.seed})",
        ["workload", "history ops", "linearizable", "read mismatches",
         "invariant violations", "verdict"], rows))
    if failures:
        for failure in failures:
            print(f"VIOLATION: {failure}")
        return 1
    print("verification: oracle clean, invariants hold, "
          "histories linearizable")
    return 0


def cmd_rack(args) -> int:
    """Run the sharded rack tier under a zipfian YCSB with a membership
    event mid-traffic, and report throughput plus tail recovery.

    Exit 1 if the oracle, invariants, or the linearizability check flag
    anything, or if the post-event p99 fails to recover to within 1.5x
    of the pre-event p99 (the rebalance-quality bar).
    """
    from repro.verify import RACK_SCENARIOS, run_rack_ycsb

    scenario = None if args.scenario in ("none", "") else args.scenario
    if scenario is not None and scenario not in RACK_SCENARIOS:
        raise SystemExit(f"unknown rack scenario {args.scenario!r}; "
                         f"choose from {sorted(RACK_SCENARIOS)} or 'none'")
    result = run_rack_ycsb(
        seed=args.seed, boards=args.boards, tors=args.tors,
        clients=args.clients, ops_per_client=args.ops,
        scenario=scenario, partitioned=args.pdes)
    extras = result.extras
    pre_p99 = extras["pre_p99_ns"]
    post_p99 = extras["post_p99_ns"]
    recovery = (post_p99 / pre_p99) if pre_p99 else 0.0
    elapsed_s = extras["event_done_ns"] / 1e9 if extras["event_done_ns"] \
        else result.report.get("now_ns", 0) / 1e9
    ops_per_s = extras["ops_ok"] / elapsed_s if elapsed_s else 0.0
    print(render_table(
        f"rack: {args.boards} boards / {args.tors} ToRs, "
        f"{args.clients} clients, scenario {scenario or 'none'} "
        f"(seed {args.seed})",
        ["ops ok", "ops attempted", "sim Mops/s", "p99 pre (ns)",
         "p99 post (ns)", "recovery", "migrations", "evictions", "epoch"],
        [[extras["ops_ok"], extras["ops_attempted"],
          f"{ops_per_s / 1e6:.2f}", pre_p99, post_p99,
          f"{recovery:.2f}x" if pre_p99 else "n/a",
          extras["migrations"], extras["evictions"], extras["epoch"]]]))
    problems = result.problems()
    if scenario is not None and pre_p99 and post_p99 and recovery > 1.5:
        problems.append(
            f"post-event p99 {post_p99}ns is {recovery:.2f}x the "
            f"pre-event p99 {pre_p99}ns (bar: 1.5x)")
    if args.check_determinism:
        repeat = run_rack_ycsb(
            seed=args.seed, boards=args.boards, tors=args.tors,
            clients=args.clients, ops_per_client=args.ops,
            scenario=scenario, partitioned=not args.pdes)
        if repeat.extras["fingerprint"] != extras["fingerprint"]:
            problems.append("partitioned/flat engines disagree on the "
                            "same-seed rack fingerprint")
        else:
            print("determinism: flat and partitioned rack fingerprints "
                  "bit-identical")
    if problems:
        for problem in problems:
            print(f"VIOLATION: {problem}")
        return 1
    print("rack: oracle clean, history linearizable"
          + (", tail recovered" if scenario is not None else ""))
    return 0


def cmd_metrics(args) -> int:
    from repro.telemetry import render_dashboard, write_chrome_trace

    cluster = ClioCluster(params=_profile(args.profile), seed=args.seed,
                          mn_capacity=1 * GB)
    tracer = cluster.enable_tracing()
    if args.interval_us:
        cluster.metrics.start_sampling(cluster.env,
                                       args.interval_us * 1000)
    thread = cluster.cn(0).process("mn0").thread()
    size = _parse_size(args.size)
    payload = b"m" * size

    def app():
        va = yield from thread.ralloc(max(size, 4 * MB))
        for _ in range(args.ops):
            yield from thread.rwrite(va, payload)
            yield from thread.rread(va, size)

    cluster.run(until=cluster.env.process(app()))
    cluster.metrics.stop_sampling()
    print(render_dashboard(
        cluster.metrics, tracer,
        title=f"instrumented run: {args.ops}x {size}B write+read "
              f"({args.profile})",
        prefix=args.prefix))
    if args.trace_out:
        write_chrome_trace(args.trace_out, tracer, cluster.metrics)
        print(f"chrome trace written to {args.trace_out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


# -- argument parsing ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clio reproduction: command-line experiment runner")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    parser.add_argument("--profile", default="prototype",
                        choices=("prototype", "asic", "cloudlab"),
                        help="parameter profile (default: prototype)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cprofile", action="store_true",
                        help="wrap the run in cProfile and print the top-25 "
                             "cumulative entries (perf work starts from data)")
    sub = parser.add_subparsers(dest="command", required=True)

    latency = sub.add_parser("latency", help="Clio latency distribution")
    latency.add_argument("--size", default="16")
    latency.add_argument("--ops", type=int, default=2000)
    latency.add_argument("--write", action="store_true")
    latency.set_defaults(func=cmd_latency)

    goodput = sub.add_parser("goodput", help="Clio end-to-end goodput")
    goodput.add_argument("--size", default="1KB")
    goodput.add_argument("--threads", type=int, default=4)
    goodput.add_argument("--ops", type=int, default=150)
    goodput.add_argument("--async", dest="asynchronous",
                         action="store_true")
    goodput.set_defaults(func=cmd_goodput)

    compare = sub.add_parser("compare", help="latency across systems")
    compare.add_argument("--size", default="16")
    compare.add_argument("--ops", type=int, default=400)
    compare.add_argument("--backends", default="all",
                         help="comma-separated backend names, or 'all' "
                              "(clio, cxl, rdma, legoos, clover, herd, "
                              "herd-bf)")
    compare.add_argument("--write", action="store_true",
                         help="also time writes (second column pair)")
    compare.set_defaults(func=cmd_compare)

    alloc = sub.add_parser(
        "alloc", help="allocation cost comparison, or --churn for the "
                      "strategy/fragmentation scenario suite")
    alloc.add_argument("--size", default="64MB")
    alloc.add_argument("--churn", default=None,
                       help="run a churn scenario across PA strategies: "
                            "small-churn, small-large-mix, "
                            "ephemeral-longlived, or retry-storm")
    alloc.add_argument("--strategy", default=None,
                       help="restrict --churn to one PA strategy "
                            "(freelist, slab, buddy, arena)")
    alloc.add_argument("--va-policy", default=None,
                       help="VA search policy for --churn (first-fit, "
                            "next-fit, best-fit, jump)")
    alloc.add_argument("--ops", type=int, default=None,
                       help="override the scenario's allocation count")
    alloc.add_argument("--pdes", action="store_true",
                       help="run --churn on the partitioned engine")
    alloc.add_argument("--check-determinism", action="store_true",
                       help="rerun each --churn row on the other engine "
                            "and compare fingerprints bit-for-bit")
    alloc.set_defaults(func=cmd_alloc)

    ycsb = sub.add_parser("ycsb", help="Clio-KV under YCSB")
    ycsb.add_argument("--workload", default="B")
    ycsb.add_argument("--keys", type=int, default=500)
    ycsb.add_argument("--ops", type=int, default=500)
    ycsb.set_defaults(func=cmd_ycsb)

    chaos = sub.add_parser("chaos", help="fault-injection scenario")
    chaos.add_argument("--scenario", default="board-crash",
                       help="board-crash, link-flap, slowpath-stall, "
                            "loss-burst, or random")
    chaos.add_argument("--ops", type=int, default=1200,
                       help="operations per worker")
    chaos.add_argument("--check-determinism", action="store_true",
                       help="rerun on the other engine (flat vs "
                            "partitioned) and compare fingerprints "
                            "bit-for-bit")
    chaos.add_argument("--pdes", action="store_true",
                       help="run on the single-process partitioned "
                            "engine (one event wheel per board/CN)")
    chaos.add_argument("--cache", action="store_true",
                       help="run with the CN hot-page cache on "
                            "(write-back, one shared region) so faults "
                            "land on cached dirty lines")
    chaos.set_defaults(func=cmd_chaos)

    verify = sub.add_parser(
        "verify", help="runtime correctness checks: oracle, invariants, "
                       "linearizability (docs/correctness.md)")
    verify.add_argument("--ops", type=int, default=30,
                        help="atomic/KV ops per client (chaos runs 10x)")
    verify.add_argument("--clients", type=int, default=3,
                        help="CNs hammering the shared atomic word")
    verify.add_argument("--scenario", default="board-crash",
                        help="chaos scenario to run under the oracle")
    verify.add_argument("--no-crash", action="store_true",
                        help="skip the mid-run board crash/restart")
    verify.add_argument("--pdes", action="store_true",
                        help="run every pass on the single-process "
                             "partitioned engine")
    verify.add_argument("--cache", action="store_true",
                        help="add the cached-YCSB passes: write-through, "
                             "write-back + crash, write-back + migration")
    verify.add_argument("--alloc", action="store_true",
                        help="add the allocator passes: the mixed-size "
                             "churn scenario through every PA strategy "
                             "under the oracle + invariant sweeps")
    verify.add_argument("--rack", action="store_true",
                        help="add the rack passes: zipfian YCSB over the "
                             "sharded tier with a drain and a "
                             "crash-mid-migration")
    verify.add_argument("--rack-boards", type=int, default=8,
                        help="boards in the rack passes (default: 8)")
    verify.add_argument("--rack-clients", type=int, default=64,
                        help="zipfian clients in the rack passes "
                             "(default: 64)")
    verify.add_argument("--qos", action="store_true",
                        help="add the multi-tenant passes: the "
                             "noisy-neighbor scenario shaped (victim "
                             "p99 inflation <= 1.5x) and unshaped")
    verify.set_defaults(func=cmd_verify)

    rack = sub.add_parser(
        "rack", help="sharded rack tier: zipfian YCSB with live "
                     "migration and elastic membership")
    rack.add_argument("--boards", type=int, default=16,
                      help="CBoards in service (default: 16)")
    rack.add_argument("--tors", type=int, default=2,
                      help="top-of-rack switches (default: 2)")
    rack.add_argument("--clients", type=int, default=256,
                      help="zipfian client threads (default: 256)")
    rack.add_argument("--ops", type=int, default=4,
                      help="operations per client (default: 4)")
    rack.add_argument("--scenario", default="drain",
                      help="membership event mid-traffic: drain, add, "
                           "crash-mid-migration, evict, or none")
    rack.add_argument("--pdes", action="store_true",
                      help="run on the partitioned engine (one event "
                           "wheel per ToR plus the spine)")
    rack.add_argument("--check-determinism", action="store_true",
                      help="rerun on the other engine and compare the "
                           "op-log fingerprints bit-for-bit")
    rack.set_defaults(func=cmd_rack)

    metrics = sub.add_parser(
        "metrics", help="instrumented run with dashboard + trace export")
    metrics.add_argument("--size", default="64")
    metrics.add_argument("--ops", type=int, default=200)
    metrics.add_argument("--interval-us", type=int, default=0,
                         help="sample the registry every N us of sim time "
                              "(0 = no timeseries)")
    metrics.add_argument("--prefix", default="",
                         help="only show instruments under this prefix "
                              "(e.g. cboard.mn0)")
    metrics.add_argument("--trace-out", default="",
                         help="write a Chrome/Perfetto trace_event JSON "
                              "file to this path")
    metrics.set_defaults(func=cmd_metrics)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cprofile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return args.func(args)
        finally:
            profiler.disable()
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""First-class observability: metrics, spans, and exporters.

See ``docs/observability.md`` for the instrument and span models, the
exporter formats, and the zero-cost-when-disabled guarantees.
"""

from repro.telemetry.export import chrome_trace, render_dashboard, write_chrome_trace
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    MetricsScope,
    StatsView,
)
from repro.telemetry.spans import Instant, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "Instrument",
    "MetricsRegistry",
    "MetricsScope",
    "Span",
    "StatsView",
    "Tracer",
    "chrome_trace",
    "render_dashboard",
    "write_chrome_trace",
]

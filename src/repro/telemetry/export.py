"""Exporters: Chrome/Perfetto ``trace_event`` JSON and a text dashboard.

The Chrome trace format (the ``chrome://tracing`` / Perfetto JSON
flavor) wants a ``traceEvents`` list where each event carries ``name``,
``ph`` (phase), ``ts`` (microseconds), and ``pid``/``tid`` integers.
Tracks map to synthetic process IDs (with ``process_name`` metadata) and
categories to thread IDs within the track, so one board's fast-path,
slow-path, and fault activity stack as separate rows in the UI.

The text dashboard renders the same registry/tracer state through
:mod:`repro.analysis.report` tables for terminal consumption.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.analysis.report import render_table
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Tracer

#: Synthetic pid for registry counter series (no track of their own).
_METRICS_PID = 1


def chrome_trace(tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None) -> dict:
    """Build a Chrome ``trace_event`` document from spans and samples.

    Timestamps convert from simulated ns to the format's microseconds
    (floats keep full ns precision).  Open spans export as ``B`` (begin)
    events without a matching ``E`` — the viewers render them as
    unfinished, which is exactly what an un-restarted crash window is.
    """
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_for(track: str) -> int:
        pid = pids.get(track)
        if pid is None:
            pid = _METRICS_PID + 1 + len(pids)
            pids[track] = pid
            events.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": 0,
                           "args": {"name": track}})
        return pid

    def tid_for(track: str, category: str) -> int:
        key = (track, category)
        tid = tids.get(key)
        if tid is None:
            tid = 1 + sum(1 for other in tids if other[0] == track)
            tids[key] = tid
            events.append({"name": "thread_name", "ph": "M", "ts": 0,
                           "pid": pid_for(track), "tid": tid,
                           "args": {"name": category}})
        return tid

    if tracer is not None:
        for span in tracer.spans:
            event = {
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ns / 1000,
                "pid": pid_for(span.track),
                "tid": tid_for(span.track, span.category),
                "args": dict(span.args) if span.args else {},
            }
            if span.end_ns is None:
                event["ph"] = "B"
            else:
                event["ph"] = "X"
                event["dur"] = (span.end_ns - span.start_ns) / 1000
            events.append(event)
        for instant in tracer.instants:
            events.append({
                "name": instant.name,
                "cat": instant.category,
                "ph": "i",
                "s": "t",
                "ts": instant.at_ns / 1000,
                "pid": pid_for(instant.track),
                "tid": tid_for(instant.track, instant.category),
                "args": dict(instant.args) if instant.args else {},
            })

    if registry is not None and registry.series:
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": _METRICS_PID, "tid": 0,
                       "args": {"name": "metrics"}})
        for at_ns, sample in registry.series:
            for name, value in sample.items():
                events.append({
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": at_ns / 1000,
                    "pid": _METRICS_PID,
                    "args": {"value": value},
                })

    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None,
                       registry: Optional[MetricsRegistry] = None) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the document."""
    document = chrome_trace(tracer, registry)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


# -- text dashboard --------------------------------------------------------------


def render_dashboard(registry: Optional[MetricsRegistry] = None,
                     tracer: Optional[Tracer] = None,
                     title: str = "telemetry",
                     prefix: str = "") -> str:
    """Plain-text dashboard: scalar metrics, histograms, span aggregates."""
    sections: list[str] = []

    if registry is not None:
        scalar_rows = []
        histogram_rows = []
        for instrument in registry.instruments(prefix):
            if isinstance(instrument, Histogram):
                histogram_rows.append([
                    instrument.name, instrument.count,
                    round(instrument.mean, 1) if instrument.count else "-",
                    round(instrument.quantile(0.5), 1)
                    if instrument.samples else "-",
                    round(instrument.quantile(0.99), 1)
                    if instrument.samples else "-",
                    instrument.max if instrument.count else "-",
                ])
            else:
                value = instrument.value
                if isinstance(value, float):
                    value = round(value, 4)
                scalar_rows.append([instrument.name, instrument.kind, value])
        if scalar_rows:
            sections.append(render_table(
                f"{title}: metrics", ["name", "kind", "value"], scalar_rows,
                width=34))
        if histogram_rows:
            sections.append(render_table(
                f"{title}: histograms",
                ["name", "count", "mean", "p50", "p99", "max"],
                histogram_rows, width=18))
        if registry.series:
            first_ns = registry.series[0][0]
            last_ns = registry.series[-1][0]
            sections.append(render_table(
                f"{title}: timeseries",
                ["samples", "first_us", "last_us", "interval_us"],
                [[len(registry.series), first_ns / 1000, last_ns / 1000,
                  registry.sample_interval_ns / 1000]]))

    if tracer is not None:
        span_rows = []
        summary = tracer.summary()
        for name in sorted(summary):
            entry = summary[name]
            span_rows.append([
                name, entry["count"], entry["open"],
                round(entry["total_ns"] / 1000, 2),
                round(entry["mean_ns"] / 1000, 3)
                if entry["mean_ns"] is not None else "-",
            ])
        if span_rows:
            sections.append(render_table(
                f"{title}: spans",
                ["span", "count", "open", "total_us", "mean_us"],
                span_rows, width=22))
        if tracer.dropped:
            sections.append(f"(tracer dropped {tracer.dropped} records "
                            f"over the {tracer.max_records} cap)")

    return "\n\n".join(sections) if sections else f"== {title}: empty =="

"""Typed instruments and the cluster-wide metrics registry.

Every component that used to carry an ad-hoc ``stats()`` dict now
registers *instruments* — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — under hierarchical dotted names
(``cboard.mn0.tlb.hits``) in a :class:`MetricsRegistry`.  Two usage
modes coexist:

* **Function-backed views** (the default for hot-path counters): the
  component keeps incrementing a plain attribute — zero new cost per
  event — and the instrument reads it through a callable on demand.
  ``stats()`` then becomes a :class:`StatsView` over those instruments,
  byte-for-byte compatible with the old dicts.
* **Owned instruments**: the instrument itself holds the value
  (``counter.inc()``, ``gauge.set()``, ``histogram.observe()``) for code
  that has no pre-existing attribute to mirror.

The registry is *passive*: creating instruments schedules nothing and
draws no RNG, so a cluster with a registry wired in is bit-identical to
one without.  Periodic timeseries sampling is the one active feature and
is strictly opt-in (:meth:`MetricsRegistry.start_sampling`); it uses
``Environment.schedule_callback`` and only *reads* values, so even a
sampled run keeps every workload timestamp unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: Cap on raw samples a histogram retains for percentile queries; beyond
#: it, observations still update count/sum/min/max but are not stored.
_HISTOGRAM_SAMPLE_CAP = 65_536


class Instrument:
    """Base class: a named, typed source of one observable value."""

    __slots__ = ("name", "description", "unit", "_fn", "_value")

    kind = "instrument"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 fn: Optional[Callable[[], Any]] = None):
        if not name:
            raise ValueError("instrument needs a non-empty name")
        self.name = name
        self.description = description
        self.unit = unit
        self._fn = fn
        self._value: Any = 0

    @property
    def value(self) -> Any:
        """Current value — the callback's result for function-backed views."""
        if self._fn is not None:
            return self._fn()
        return self._value

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}={self.value!r}>"


class Counter(Instrument):
    """Monotonically increasing count (requests served, packets dropped)."""

    __slots__ = ()

    kind = "counter"

    def inc(self, amount: int = 1) -> None:
        if self._fn is not None:
            raise ValueError(
                f"counter {self.name!r} is function-backed; "
                "increment the underlying attribute instead")
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._value += amount


class Gauge(Instrument):
    """Point-in-time reading (queue depth, utilization, liveness)."""

    __slots__ = ()

    kind = "gauge"

    def set(self, value: Any) -> None:
        if self._fn is not None:
            raise ValueError(
                f"gauge {self.name!r} is function-backed and read-only")
        self._value = value


class Histogram(Instrument):
    """Distribution of observations (latencies, sizes).

    Keeps exact count/sum/min/max plus up to ``_HISTOGRAM_SAMPLE_CAP``
    raw samples for percentile queries; past the cap the summary stays
    exact while percentiles degrade to the retained prefix (the
    ``truncated`` counter says by how much).
    """

    __slots__ = ("count", "total", "min", "max", "samples", "truncated")

    kind = "histogram"

    def __init__(self, name: str, description: str = "", unit: str = ""):
        super().__init__(name, description, unit)
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: list[float] = []
        self.truncated = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < _HISTOGRAM_SAMPLE_CAP:
            self.samples.append(value)
        else:
            self.truncated += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, fraction: float) -> Optional[float]:
        if not self.samples:
            return None
        from repro.analysis.stats import quantile
        return quantile(self.samples, fraction)

    @property
    def value(self) -> dict:
        """Summary dict (histograms have no single scalar value)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class StatsView:
    """An ordered public-key -> instrument mapping behind a ``stats()``.

    Components build one at construction; ``snapshot()`` reproduces the
    historical ``stats()`` dict — same keys, same order, same values —
    while every entry is a live registry instrument.
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: dict[str, Instrument]):
        self._fields = dict(fields)

    def __getitem__(self, key: str) -> Instrument:
        return self._fields[key]

    def keys(self):
        return self._fields.keys()

    def snapshot(self) -> dict:
        return {key: instrument.value
                for key, instrument in self._fields.items()}


class MetricsScope:
    """A registry handle that prefixes every name (``cboard.mn0.…``)."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self.registry = registry
        self.prefix = prefix

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str, description: str = "", unit: str = "",
                fn: Optional[Callable[[], Any]] = None) -> Counter:
        return self.registry.counter(self._full(name), description, unit, fn)

    def gauge(self, name: str, description: str = "", unit: str = "",
              fn: Optional[Callable[[], Any]] = None) -> Gauge:
        return self.registry.gauge(self._full(name), description, unit, fn)

    def histogram(self, name: str, description: str = "",
                  unit: str = "") -> Histogram:
        return self.registry.histogram(self._full(name), description, unit)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self.registry, self._full(prefix))

    def snapshot(self) -> dict:
        """All instruments under this prefix, keyed by their local name."""
        strip = len(self.prefix) + 1 if self.prefix else 0
        return {name[strip:]: value for name, value in
                self.registry.snapshot(prefix=self.prefix).items()}


class MetricsRegistry:
    """Cluster-wide instrument namespace plus opt-in timeseries sampling."""

    def __init__(self):
        self._instruments: dict[str, Instrument] = {}
        #: (t_ns, {name: numeric value}) tuples from periodic sampling.
        self.series: list[tuple[int, dict[str, float]]] = []
        self._sampling = False
        self.sample_interval_ns = 0

    # -- registration ----------------------------------------------------------

    def _register(self, instrument: Instrument) -> Instrument:
        if instrument.name in self._instruments:
            raise ValueError(
                f"instrument {instrument.name!r} is already registered")
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, description: str = "", unit: str = "",
                fn: Optional[Callable[[], Any]] = None) -> Counter:
        return self._register(Counter(name, description, unit, fn))

    def gauge(self, name: str, description: str = "", unit: str = "",
              fn: Optional[Callable[[], Any]] = None) -> Gauge:
        return self._register(Gauge(name, description, unit, fn))

    def histogram(self, name: str, description: str = "",
                  unit: str = "") -> Histogram:
        return self._register(Histogram(name, description, unit))

    def scope(self, prefix: str) -> MetricsScope:
        return MetricsScope(self, prefix)

    # -- queries -----------------------------------------------------------------

    def get(self, name: str) -> Instrument:
        return self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self, prefix: str = "") -> list[str]:
        if not prefix:
            return sorted(self._instruments)
        dotted = prefix + "."
        return sorted(name for name in self._instruments
                      if name == prefix or name.startswith(dotted))

    def instruments(self, prefix: str = "") -> list[Instrument]:
        return [self._instruments[name] for name in self.names(prefix)]

    def snapshot(self, prefix: str = "") -> dict:
        """{name: value} for every instrument under ``prefix``."""
        return {name: self._instruments[name].value
                for name in self.names(prefix)}

    # -- periodic timeseries sampling (opt-in) ------------------------------------

    def start_sampling(self, env, interval_ns: int,
                       prefix: str = "") -> None:
        """Sample numeric instruments every ``interval_ns`` of sim time.

        Strictly opt-in: adds one scheduled callback per interval and
        *reads* values only, so workload timestamps and every RNG stream
        are untouched.  Histograms are sampled as their running count.
        """
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        if self._sampling:
            raise ValueError("sampling is already running")
        self._sampling = True
        self.sample_interval_ns = interval_ns
        names = self.names(prefix)

        def sweep():
            if not self._sampling:
                return
            sample: dict[str, float] = {}
            for name in names:
                instrument = self._instruments.get(name)
                if instrument is None:
                    continue
                if isinstance(instrument, Histogram):
                    sample[name] = instrument.count
                    continue
                value = instrument.value
                if isinstance(value, bool):
                    sample[name] = int(value)
                elif isinstance(value, (int, float)):
                    sample[name] = value
            self.series.append((env.now, sample))
            env.schedule_callback(interval_ns, sweep)

        env.schedule_callback(interval_ns, sweep)

    def stop_sampling(self) -> None:
        self._sampling = False

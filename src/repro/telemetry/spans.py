"""Structured span tracing over simulated time.

A :class:`Tracer` records *spans* (named intervals with a start and end
timestamp) and *instants* (point events) on named *tracks* — one track
per node, board, or subsystem.  Components carry a ``tracer`` attribute
that is ``None`` by default; every hook site is guarded by a single
``is not None`` check, so an untraced run does no work beyond that test
and stays bit-identical to a tracer-less tree.

Recording never schedules events, never yields, and never draws from an
RNG stream: even a *traced* run keeps exactly the same simulated
timestamps as an untraced one.  The only cost is wall-clock time and
memory, both bounded by ``max_records``.

The span vocabulary the built-in instrumentation emits:

===========================  ==========  =====================================
name                         category    emitted by
===========================  ==========  =====================================
``request:<type>``           transport   CLib request issue -> complete/fail
``attempt:<type>``           transport   one (re)transmission -> ack/timeout
``mn:<type>``                cboard      MN handler: receive -> response
``mn_response`` (instant)    cboard      each response packet generated
``fastpath:<access>``        pipeline    one fast-path traversal (+breakdown)
``page_fault``               pipeline    bounded hardware fault resolution
``slowpath:<op>``            slowpath    ARM alloc/free handling
``arm_stall``                fault       slow-path stall window
``crashed``                  fault       board crash -> restart window
``fault:<kind>`` (instant)   fault       each injector application
``drop:<why>`` (instant)     net         link loss / down-drop / corruption
``board_down``/``board_up``  health      monitor belief transitions (instant)
===========================  ==========  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(slots=True)
class Span:
    """A named interval on a track; ``end_ns`` is None while open."""

    name: str
    category: str
    track: str
    start_ns: int
    end_ns: Optional[int] = None
    args: Optional[dict] = None
    seq: int = 0

    @property
    def open(self) -> bool:
        return self.end_ns is None

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns


@dataclass(slots=True)
class Instant:
    """A point event on a track."""

    name: str
    category: str
    track: str
    at_ns: int
    args: Optional[dict] = None
    seq: int = 0


class Tracer:
    """Bounded recorder of spans and instants against one environment."""

    def __init__(self, env, max_records: int = 1_000_000):
        if max_records <= 0:
            raise ValueError(
                f"max_records must be positive, got {max_records}")
        self.env = env
        self.max_records = max_records
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.dropped = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def _admit(self) -> bool:
        if len(self.spans) + len(self.instants) >= self.max_records:
            self.dropped += 1
            return False
        return True

    # -- recording -------------------------------------------------------------

    def begin(self, name: str, category: str, track: str,
              args: Optional[dict] = None,
              at_ns: Optional[int] = None) -> Optional[Span]:
        """Open a span; returns None (a no-op handle) when over capacity."""
        if not self._admit():
            return None
        self._seq += 1
        span = Span(name=name, category=category, track=track,
                    start_ns=self.env.now if at_ns is None else at_ns,
                    args=args, seq=self._seq)
        self.spans.append(span)
        return span

    def end(self, span: Optional[Span], at_ns: Optional[int] = None,
            **extra_args: Any) -> None:
        """Close a span from :meth:`begin`; tolerates the None handle."""
        if span is None:
            return
        span.end_ns = self.env.now if at_ns is None else at_ns
        if extra_args:
            if span.args is None:
                span.args = {}
            span.args.update(extra_args)

    def complete(self, name: str, category: str, track: str,
                 start_ns: int, end_ns: int,
                 args: Optional[dict] = None) -> Optional[Span]:
        """Record an already-finished interval in one call."""
        if not self._admit():
            return None
        self._seq += 1
        span = Span(name=name, category=category, track=track,
                    start_ns=start_ns, end_ns=end_ns, args=args,
                    seq=self._seq)
        self.spans.append(span)
        return span

    def instant(self, name: str, category: str, track: str,
                at_ns: Optional[int] = None,
                args: Optional[dict] = None) -> Optional[Instant]:
        if not self._admit():
            return None
        self._seq += 1
        event = Instant(name=name, category=category, track=track,
                        at_ns=self.env.now if at_ns is None else at_ns,
                        args=args, seq=self._seq)
        self.instants.append(event)
        return event

    # -- queries ----------------------------------------------------------------

    def find_spans(self, name_prefix: str = "",
                   category: Optional[str] = None,
                   track: Optional[str] = None) -> list[Span]:
        return [span for span in self.spans
                if span.name.startswith(name_prefix)
                and (category is None or span.category == category)
                and (track is None or span.track == track)]

    def find_instants(self, name_prefix: str = "",
                      category: Optional[str] = None,
                      track: Optional[str] = None) -> list[Instant]:
        return [event for event in self.instants
                if event.name.startswith(name_prefix)
                and (category is None or event.category == category)
                and (track is None or event.track == track)]

    def tracks(self) -> list[str]:
        return sorted({record.track for record in self.spans}
                      | {record.track for record in self.instants})

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.dropped = 0

    def summary(self) -> dict:
        """Per-span-name aggregate: count and total/mean duration (ns)."""
        out: dict[str, dict] = {}
        for span in self.spans:
            entry = out.setdefault(span.name, {"count": 0, "total_ns": 0,
                                               "open": 0})
            entry["count"] += 1
            if span.end_ns is None:
                entry["open"] += 1
            else:
                entry["total_ns"] += span.end_ns - span.start_ns
        for entry in out.values():
            closed = entry["count"] - entry["open"]
            entry["mean_ns"] = entry["total_ns"] / closed if closed else None
        return out

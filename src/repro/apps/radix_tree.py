"""Radix tree with a pointer-chasing offload (paper section 6, Figure 16).

The tree indexes byte-string keys.  Each level is a **linked list** of
sibling nodes (one per distinct byte at that depth); matching a byte means
walking the sibling list, and descending means following the child
pointer.  On Clio, the sibling walk runs *at the MN* through an extended
pointer-chasing API deployed in the FPGA: it compares a value at each
chased node and returns on match or null — one network round trip per
level.  On RDMA the client walks node by node: one round trip per *node*.

Node layout (32 bytes, all fields little-endian u64):

    +0   key byte of this node (low 8 bits used)
    +8   child pointer (VA of first node of the next level; 0 = leaf)
    +16  sibling pointer (VA of next node in this level's list; 0 = end)
    +24  value (payload for leaves; 0 otherwise)
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.rdma import RDMAMemoryNode
from repro.clib.client import ClioThread
from repro.core.extend import ExtendPath, OffloadContext

NODE_BYTES = 32

#: FPGA cycles per chase step (compare + pointer follow), beyond the reads.
CHASE_STEP_CYCLES = 4


def pack_node(key_byte: int, child: int, sibling: int, value: int) -> bytes:
    return (key_byte.to_bytes(8, "little") + child.to_bytes(8, "little")
            + sibling.to_bytes(8, "little") + value.to_bytes(8, "little"))


def unpack_node(blob: bytes) -> tuple[int, int, int, int]:
    if len(blob) != NODE_BYTES:
        raise ValueError(f"node blob must be {NODE_BYTES} bytes")
    return (int.from_bytes(blob[0:8], "little"),
            int.from_bytes(blob[8:16], "little"),
            int.from_bytes(blob[16:24], "little"),
            int.from_bytes(blob[24:32], "little"))


def chase_offload(ctx: OffloadContext, args, caller_pid: int):
    """Extended pointer-chasing API (deployed in FPGA at the MN).

    ``args`` = (start_va, wanted_byte).  Walks the sibling list from
    ``start_va`` *in the caller's RAS* (the tree was built by the client
    with ordinary rwrite), comparing each node's key byte; returns the
    matching node's (child_ptr, value) or (0, 0) when the list ends.
    """
    node_va, wanted = args
    while node_va != 0:
        blob = yield from ctx.read(node_va, NODE_BYTES, pid=caller_pid)
        key_byte, child, sibling, value = unpack_node(blob)
        yield from ctx._compute(CHASE_STEP_CYCLES)
        if key_byte == wanted:
            return child, value
        node_va = sibling
    return 0, 0


def register_chase_offload(extend_path: ExtendPath,
                           name: str = "radix-chase") -> None:
    """Deploy the pointer-chasing offload on a CBoard."""
    extend_path.register(name, chase_offload, on_fpga=True)


class _BumpAllocator:
    """CN-side bump allocator over one big remote allocation."""

    def __init__(self, base_va: int, capacity: int):
        self.base_va = base_va
        self.capacity = capacity
        self.used = NODE_BYTES   # VA base is reserved so 0 stays "null"

    def take(self) -> int:
        if self.used + NODE_BYTES > self.capacity:
            raise MemoryError("radix tree region exhausted")
        va = self.base_va + self.used
        self.used += NODE_BYTES
        return va


class ClioRadixTree:
    """Radix tree over Clio: inserts from the CN, searches via the offload."""

    def __init__(self, thread: ClioThread, offload_name: str = "radix-chase"):
        self.thread = thread
        self.offload_name = offload_name
        self._alloc: Optional[_BumpAllocator] = None
        self._root_head = 0   # VA of first node at depth 0
        self.key_count = 0

    def setup(self, capacity_nodes: int = 1 << 16):
        """Process-generator: allocate the node region."""
        size = capacity_nodes * NODE_BYTES
        base = yield from self.thread.ralloc(size)
        self._alloc = _BumpAllocator(base, size)

    # -- building --------------------------------------------------------------------

    def _read_node(self, va: int):
        blob = yield from self.thread.rread(va, NODE_BYTES)
        return unpack_node(blob)

    def _write_node(self, va: int, key_byte: int, child: int, sibling: int,
                    value: int):
        yield from self.thread.rwrite(
            va, pack_node(key_byte, child, sibling, value))

    def insert(self, key: bytes, value: int):
        """Process-generator: insert key -> value (value must be != 0)."""
        if self._alloc is None:
            raise RuntimeError("call setup() first")
        if value == 0:
            raise ValueError("value 0 is reserved for 'absent'")
        if not key:
            raise ValueError("empty keys unsupported")
        head_va = self._root_head
        parent_va = None          # node whose child pointer leads to head
        for depth, byte in enumerate(key):
            found_va = 0
            last_va = 0
            node_va = head_va
            while node_va != 0:
                key_byte, child, sibling, node_value = yield from self._read_node(node_va)
                if key_byte == byte:
                    found_va = node_va
                    break
                last_va = node_va
                node_va = sibling
            if found_va == 0:
                new_va = self._alloc.take()
                is_leaf = depth == len(key) - 1
                yield from self._write_node(
                    new_va, byte, 0, 0, value if is_leaf else 0)
                if last_va:
                    # Append to this level's sibling list.
                    k, c, _, v = yield from self._read_node(last_va)
                    yield from self._write_node(last_va, k, c, new_va, v)
                elif parent_va is not None:
                    k, _, s, v = yield from self._read_node(parent_va)
                    yield from self._write_node(parent_va, k, new_va, s, v)
                else:
                    self._root_head = new_va
                found_va = new_va
            key_byte, child, sibling, node_value = yield from self._read_node(found_va)
            if depth == len(key) - 1:
                if node_value != value:
                    yield from self._write_node(found_va, key_byte, child,
                                                sibling, value)
                self.key_count += 1
                return
            parent_va = found_va
            head_va = child

    # -- searching ----------------------------------------------------------------------

    def search(self, key: bytes):
        """Process-generator: offloaded search; returns value or None.

        One offload invocation (one RTT) per key byte — the Clio
        advantage Figure 16 measures.
        """
        head_va = self._root_head
        value = 0
        for depth, byte in enumerate(key):
            if head_va == 0:
                return None
            child, value = yield from self.thread.invoke_offload(
                self.offload_name, (head_va, byte))
            if child == 0 and value == 0:
                return None
            head_va = child
        return value if value != 0 else None


class RDMARadixTree:
    """The same tree over native RDMA: every node hop is a round trip."""

    def __init__(self, env, node: RDMAMemoryNode,
                 capacity_nodes: int = 1 << 16):
        self.env = env
        self.node = node
        self.qp = node.create_qp()
        self.capacity = capacity_nodes * NODE_BYTES
        self.region = None
        self._used = NODE_BYTES
        self._root_head = 0
        self.key_count = 0

    def setup(self):
        self.region = yield from self.node.register_mr(self.capacity,
                                                       pinned=True)

    def _take(self) -> int:
        if self._used + NODE_BYTES > self.capacity:
            raise MemoryError("radix tree region exhausted")
        offset = self._used
        self._used += NODE_BYTES
        return offset

    def _read_node(self, offset: int):
        blob, _ = yield from self.node.read(self.qp, self.region, offset,
                                            NODE_BYTES)
        return unpack_node(blob)

    def _write_node(self, offset: int, key_byte: int, child: int,
                    sibling: int, value: int):
        yield from self.node.write(self.qp, self.region, offset,
                                   pack_node(key_byte, child, sibling, value))

    def insert(self, key: bytes, value: int):
        if self.region is None:
            raise RuntimeError("call setup() first")
        if value == 0:
            raise ValueError("value 0 is reserved for 'absent'")
        head = self._root_head
        parent = None
        for depth, byte in enumerate(key):
            found = 0
            last = 0
            offset = head
            while offset != 0:
                key_byte, child, sibling, node_value = yield from self._read_node(offset)
                if key_byte == byte:
                    found = offset
                    break
                last = offset
                offset = sibling
            if found == 0:
                new_offset = self._take()
                is_leaf = depth == len(key) - 1
                yield from self._write_node(new_offset, byte, 0, 0,
                                            value if is_leaf else 0)
                if last:
                    k, c, _, v = yield from self._read_node(last)
                    yield from self._write_node(last, k, c, new_offset, v)
                elif parent is not None:
                    k, _, s, v = yield from self._read_node(parent)
                    yield from self._write_node(parent, k, new_offset, s, v)
                else:
                    self._root_head = new_offset
                found = new_offset
            key_byte, child, sibling, node_value = yield from self._read_node(found)
            if depth == len(key) - 1:
                if node_value != value:
                    yield from self._write_node(found, key_byte, child,
                                                sibling, value)
                self.key_count += 1
                return
            parent = found
            head = child

    def search(self, key: bytes):
        """Process-generator: client-side walk — one RTT per *node* visited."""
        head = self._root_head
        for byte in key:
            if head == 0:
                return None
            found = 0
            offset = head
            value = 0
            while offset != 0:
                key_byte, child, sibling, value = yield from self._read_node(offset)
                if key_byte == byte:
                    found = offset
                    break
                offset = sibling
            if found == 0:
                return None
            head = child
        return value if value != 0 else None

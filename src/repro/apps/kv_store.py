"""Clio-KV: a key-value store running at the MN as an offload (section 6).

The KV module has its *own* remote virtual address space: a chained hash
table (bucket-head array + linked entries) and the key-value payloads all
live in that RAS, accessed through the same virtual-memory API client
processes use.  Clients on any CN reach it through a key-value interface
(one OFFLOAD request per operation — one network round trip, which is why
Clio-KV beats the RTT-heavy Clover in Figure 17).

Consistency: writes (create/update/delete) serialize through per-bucket
locks — atomic writes with cross-bucket parallelism; reads run unlocked
against committed chain state — read committed.

Access-count optimizations (what the FPGA implementation does in RTL):
the chain walk reads an entry's header *and* its key in one DRAM access
(sized by the probe key — a length mismatch is rejected from the header
alone), so a get costs bucket-head + one access per chain step + one
value read.

Entry layout in RAS (little-endian):

    +0   key length  (u16)
    +2   value length (u16)
    +4   reserved     (u32)
    +8   next-entry VA (u64; 0 = end of chain)
    +16  key bytes, then value bytes
"""

from __future__ import annotations

from repro.clib.client import ClioThread
from repro.core.addr import jenkins_mix
from repro.core.extend import ExtendPath, OffloadContext, OffloadError
from repro.sim import Resource

ENTRY_HEADER = 16
#: FPGA cycles of hashing/compare logic per chain step.
STEP_CYCLES = 6


def _hash_bucket(key: bytes, buckets: int) -> int:
    """Mix every 8-byte chunk so keys with shared prefixes spread out."""
    digest = jenkins_mix(len(key))
    for offset in range(0, len(key), 8):
        chunk = int.from_bytes(key[offset:offset + 8].ljust(8, b"\0"),
                               "little")
        digest = jenkins_mix(digest ^ chunk)
    return digest % buckets


def _pack_entry(key: bytes, value: bytes, next_va: int) -> bytes:
    return (len(key).to_bytes(2, "little")
            + len(value).to_bytes(2, "little")
            + bytes(4)
            + next_va.to_bytes(8, "little")
            + key + value)


class _KVState:
    """Offload-module state: RAS layout roots + per-bucket write locks."""

    def __init__(self, buckets: int, capacity: int):
        self.buckets = buckets
        self.capacity = capacity
        self.heads_va = 0        # VA of the bucket-head array
        self.heap_va = 0         # VA of the entry heap
        self.heap_used = ENTRY_HEADER   # offset 0 reserved: 0 stays "null"
        self.init_lock: Resource | None = None
        self.bucket_locks: dict[int, Resource] = {}
        self.entries = 0

    def lock_for(self, env, bucket: int) -> Resource:
        lock = self.bucket_locks.get(bucket)
        if lock is None:
            lock = Resource(env, capacity=1)
            self.bucket_locks[bucket] = lock
        return lock


def register_kv_offload(extend_path: ExtendPath, name: str = "clio-kv",
                        buckets: int = 4096,
                        capacity: int = 64 << 20) -> None:
    """Deploy Clio-KV on a CBoard's extend path."""
    state = _KVState(buckets, capacity)
    state.init_lock = Resource(extend_path.env, capacity=1)

    def ensure_init(ctx: OffloadContext):
        """Idempotent, lock-guarded module initialization.

        heads_va is published *last*, so a concurrent invocation either
        sees the fully-initialized module or waits on the lock.
        """
        if state.heads_va:
            return
        token = state.init_lock.request()
        yield token
        try:
            if state.heads_va == 0:
                heads_va = yield from ctx.alloc(8 * state.buckets)
                state.heap_va = yield from ctx.alloc(state.capacity)
                state.heads_va = heads_va
        finally:
            state.init_lock.release(token)

    def read_head(ctx, bucket: int):
        head = yield from ctx.read_u64(state.heads_va + 8 * bucket)
        return head

    def find(ctx, key: bytes):
        """Walk the chain; one combined header+key read per step.

        Returns (entry_va, prev_va, val_len, next_va), all None/0 when
        the key is absent.
        """
        bucket = _hash_bucket(key, state.buckets)
        entry_va = yield from read_head(ctx, bucket)
        prev_va = 0
        while entry_va != 0:
            yield from ctx._compute(STEP_CYCLES)
            blob = yield from ctx.read(entry_va, ENTRY_HEADER + len(key))
            key_len = int.from_bytes(blob[0:2], "little")
            val_len = int.from_bytes(blob[2:4], "little")
            next_va = int.from_bytes(blob[8:16], "little")
            if key_len == len(key) and blob[ENTRY_HEADER:] == key:
                return entry_va, prev_va, val_len, next_va
            prev_va = entry_va
            entry_va = next_va
        return None, None, None, 0

    def take_heap(size: int) -> int:
        aligned = (size + 7) & ~7
        if state.heap_used + aligned > state.capacity:
            raise OffloadError("Clio-KV heap exhausted")
        va = state.heap_va + state.heap_used
        state.heap_used += aligned
        return va

    def kv_offload(ctx: OffloadContext, args):
        yield from ensure_init(ctx)
        op = args[0]

        if op == "get":
            _, key = args
            found_va, _, val_len, _ = yield from find(ctx, key)
            if found_va is None:
                return None
            value = yield from ctx.read(
                found_va + ENTRY_HEADER + len(key), val_len)
            return value

        # Mutations hold this key's bucket lock (atomic writes; buckets
        # mutate in parallel).
        bucket = _hash_bucket(args[1], state.buckets)
        lock = state.lock_for(ctx.env, bucket)
        token = lock.request()
        yield token
        try:
            if op == "put":
                _, key, value = args
                found_va, prev_va, val_len, next_va = yield from find(ctx, key)
                if found_va is not None and len(value) <= val_len:
                    # In-place update: new header + value, one write each.
                    header = (len(key).to_bytes(2, "little")
                              + len(value).to_bytes(2, "little"))
                    yield from ctx.write(found_va, header)
                    yield from ctx.write(
                        found_va + ENTRY_HEADER + len(key), value)
                    return "updated"
                if found_va is not None:
                    # Growing update: the old entry must leave the chain,
                    # or a later delete of the new entry would resurrect
                    # the stale value.
                    if prev_va == 0:
                        yield from ctx.write_u64(
                            state.heads_va + 8 * bucket, next_va)
                    else:
                        yield from ctx.write_u64(prev_va + 8, next_va)
                    state.entries -= 1
                head = yield from read_head(ctx, bucket)
                entry_va = take_heap(ENTRY_HEADER + len(key) + len(value))
                yield from ctx.write(entry_va, _pack_entry(key, value, head))
                yield from ctx.write_u64(state.heads_va + 8 * bucket,
                                         entry_va)
                state.entries += 1
                return "created"

            if op == "delete":
                _, key = args
                found_va, prev_va, _, next_va = yield from find(ctx, key)
                if found_va is None:
                    return False
                if prev_va == 0:
                    yield from ctx.write_u64(state.heads_va + 8 * bucket,
                                             next_va)
                else:
                    yield from ctx.write_u64(prev_va + 8, next_va)
                state.entries -= 1
                return True

            raise OffloadError(f"unknown Clio-KV op {op!r}")
        finally:
            lock.release(token)

    extend_path.register(name, kv_offload, on_fpga=True)


class ClioKV:
    """Client-side handle: a key-value interface over OFFLOAD requests."""

    def __init__(self, thread: ClioThread, name: str = "clio-kv"):
        self.thread = thread
        self.name = name

    def put(self, key: bytes, value: bytes):
        """Process-generator: create or update; returns 'created'/'updated'."""
        if not key:
            raise ValueError("empty keys unsupported")
        result = yield from self.thread.invoke_offload(
            self.name, ("put", bytes(key), bytes(value)))
        return result

    def get(self, key: bytes):
        """Process-generator: returns the value bytes or None."""
        value = yield from self.thread.invoke_offload(
            self.name, ("get", bytes(key)))
        return value

    def delete(self, key: bytes):
        """Process-generator: returns True when the key existed."""
        removed = yield from self.thread.invoke_offload(
            self.name, ("delete", bytes(key)))
        return removed

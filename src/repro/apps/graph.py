"""Graph processing on disaggregated memory (the paper's intro workload).

A compressed-sparse-row graph stored in one RAS: an offsets array and an
edges array.  Traversals read adjacency lists remotely; the working set
(frontier, visited) stays CN-local — the split the paper's motivation
assumes (big cold structure remote, hot scratch local).

Two access strategies, both over the public CLib API:

* ``bfs(..., asynchronous=False)`` — one synchronous rread per frontier
  vertex's adjacency list;
* ``bfs(..., asynchronous=True)`` — the whole frontier's lists fetched as
  a batch of async reads, overlapping their round trips (the async API's
  intended use).

Layout (little-endian u32):

    offsets: (num_vertices + 1) entries; edges of v are
             edges[offsets[v] : offsets[v+1]]
    edges:   destination vertex ids
"""

from __future__ import annotations

from typing import Optional

from repro.clib.client import ClioThread
from repro.sim.rng import RandomStream

WORD = 4


def random_graph(num_vertices: int, avg_degree: int,
                 rng: RandomStream) -> list[list[int]]:
    """A random directed graph as adjacency lists (deterministic per rng)."""
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    if avg_degree < 0:
        raise ValueError(f"avg_degree must be non-negative, got {avg_degree}")
    adjacency = []
    for vertex in range(num_vertices):
        degree = rng.uniform_int(0, 2 * avg_degree)
        neighbors = sorted({rng.uniform_int(0, num_vertices - 1)
                            for _ in range(degree)} - {vertex})
        adjacency.append(neighbors)
    return adjacency


def _pack_u32s(values) -> bytes:
    out = bytearray()
    for value in values:
        out += int(value).to_bytes(WORD, "little")
    return bytes(out)


def _unpack_u32s(blob: bytes) -> list[int]:
    return [int.from_bytes(blob[index:index + WORD], "little")
            for index in range(0, len(blob), WORD)]


class RemoteGraph:
    """A CSR graph resident in disaggregated memory."""

    def __init__(self, thread: ClioThread):
        self.thread = thread
        self.env = thread.env
        self.num_vertices = 0
        self.num_edges = 0
        self._offsets_va: Optional[int] = None
        self._edges_va: Optional[int] = None
        # The offsets array is tiny relative to edges; a CN-side copy is
        # the standard optimization (it is read-only after load).
        self._offsets: list[int] = []
        self.bytes_fetched = 0

    def load(self, adjacency: list[list[int]]):
        """Process-generator: upload a graph in CSR form."""
        self.num_vertices = len(adjacency)
        offsets = [0]
        edges: list[int] = []
        for neighbors in adjacency:
            edges.extend(neighbors)
            offsets.append(len(edges))
        self.num_edges = len(edges)
        self._offsets = offsets
        self._offsets_va = yield from self.thread.ralloc(
            max(WORD * len(offsets), WORD))
        self._edges_va = yield from self.thread.ralloc(
            max(WORD * max(len(edges), 1), WORD))
        yield from self.thread.rwrite(self._offsets_va, _pack_u32s(offsets))
        if edges:
            yield from self.thread.rwrite(self._edges_va, _pack_u32s(edges))

    # -- adjacency access ------------------------------------------------------------

    def _extent(self, vertex: int) -> tuple[int, int]:
        if not 0 <= vertex < self.num_vertices:
            raise ValueError(f"vertex {vertex} out of range")
        start = self._offsets[vertex]
        end = self._offsets[vertex + 1]
        return start, end

    def neighbors(self, vertex: int):
        """Process-generator: synchronously fetch one adjacency list."""
        start, end = self._extent(vertex)
        if start == end:
            return []
        blob = yield from self.thread.rread(
            self._edges_va + WORD * start, WORD * (end - start))
        self.bytes_fetched += len(blob)
        return _unpack_u32s(blob)

    def neighbors_batch(self, vertices: list[int]):
        """Process-generator: fetch many lists with overlapped async reads."""
        handles = []
        shapes = []
        for vertex in vertices:
            start, end = self._extent(vertex)
            if start == end:
                handles.append(None)
                shapes.append(0)
                continue
            handle = yield from self.thread.rread_async(
                self._edges_va + WORD * start, WORD * (end - start))
            handles.append(handle)
            shapes.append(end - start)
        results = []
        for handle, count in zip(handles, shapes):
            if handle is None:
                results.append([])
                continue
            (completion,) = yield from self.thread.rpoll([handle])
            blob = completion.result
            self.bytes_fetched += len(blob)
            results.append(_unpack_u32s(blob))
        return results

    # -- algorithms -------------------------------------------------------------------

    def bfs(self, source: int, asynchronous: bool = True):
        """Process-generator: BFS levels from ``source``.

        Returns a list ``level[v]`` with -1 for unreachable vertices.
        """
        levels = [-1] * self.num_vertices
        levels[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            if asynchronous:
                lists = yield from self.neighbors_batch(frontier)
            else:
                lists = []
                for vertex in frontier:
                    lists.append((yield from self.neighbors(vertex)))
            next_frontier = []
            for neighbors in lists:
                for neighbor in neighbors:
                    if levels[neighbor] == -1:
                        levels[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return levels

    def degree_histogram(self):
        """Degrees are derivable CN-locally from the cached offsets."""
        histogram: dict[int, int] = {}
        for vertex in range(self.num_vertices):
            start, end = self._extent(vertex)
            degree = end - start
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram


def reference_bfs(adjacency: list[list[int]], source: int) -> list[int]:
    """Plain local BFS, for verifying the remote traversal."""
    levels = [-1] * len(adjacency)
    levels[source] = 0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for vertex in frontier:
            for neighbor in adjacency[vertex]:
                if levels[neighbor] == -1:
                    levels[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return levels
